#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 gate (release build + tests).
# The workspace builds fully offline — all external dependencies are local
# path shims (see shims/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "CI OK"
