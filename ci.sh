#!/usr/bin/env bash
# Local CI: static analysis, formatting, lints, and the tier-1 gate
# (release build + tests). The workspace builds fully offline — all
# external dependencies are local path shims (see shims/README.md).
#
# Usage: ./ci.sh [stage]
#   stage: lint | fmt | clippy | tier1 | chaos | crash | obs | fleet |
#          ingest | columnar
#   (default: all, in order)
#   lint = the two-phase epc-lint audit: per-line rules D1-D6, then the
#   call-graph taint rules D7-D9 (transitive panic / wall-clock / entropy
#   reachability with witness chains), plus a --format json diff against
#   tests/golden/lint_report.json.
set -euo pipefail
cd "$(dirname "$0")"

stage="${1:-all}"
case "$stage" in
  all|lint|fmt|clippy|tier1|chaos|crash|obs|fleet|ingest|columnar) ;;
  *)
    echo "usage: $0 [lint|fmt|clippy|tier1|chaos|crash|obs|fleet|ingest|columnar]" >&2
    exit 2
    ;;
esac

want() { [ "$stage" = all ] || [ "$stage" = "$1" ]; }

# NUL-delimited + C locale: stable across filenames with spaces and
# collation settings, so the hashes compare artifact *content* only.
tree_hash() {
  (cd "$1" && LC_ALL=C find . -type f -print0 | sort -z | xargs -0 sha256sum | sha256sum)
}

if want lint; then
  echo "== epc-lint: two-phase audit (line rules D1-D6, graph rules D7-D9) =="
  cargo run -q --release -p epc-lint --offline

  echo "== epc-lint: json report vs checked-in expectation =="
  # The volatile counters (files_scanned/functions/call_edges) churn with
  # every unrelated file change; filter them from both sides so the diff
  # locks the diagnostics (must be none) and the exact reasoned allow set.
  lint_json="$(mktemp)"
  cargo run -q --release -p epc-lint --offline -- --format json > "$lint_json"
  filter_counts() {
    grep -vE '^  "(files_scanned|functions|call_edges)": [0-9]+,$' "$1"
  }
  if ! diff <(filter_counts tests/golden/lint_report.json) \
            <(filter_counts "$lint_json"); then
    echo "FAIL: lint --format json drifted from tests/golden/lint_report.json" >&2
    echo "      (regenerate with: cargo run -q --release -p epc-lint --offline -- --format json > tests/golden/lint_report.json)" >&2
    rm -f "$lint_json"
    exit 1
  fi
  rm -f "$lint_json"
fi

if want fmt; then
  echo "== cargo fmt --check =="
  cargo fmt --all -- --check
fi

if want clippy; then
  echo "== cargo clippy (deny warnings) =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

if want tier1; then
  echo "== tier-1: release build =="
  cargo build --release --offline

  echo "== tier-1: tests =="
  cargo test -q --offline
fi

if want chaos; then
  echo "== chaos: fault-injection suite =="
  cargo test -q --offline -p indice --test chaos

  echo "== chaos: CLI fault rates {0, 0.05, 0.2} =="
  # A zero-fault run must be byte-identical to the strict baseline, and
  # injected-fault runs must degrade (exit 3) — never fail (exit 1).
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  CHAOS_DIR="$(mktemp -d)"
  trap 'rm -rf "$CHAOS_DIR"' EXIT
  "$INDICE" generate --records 600 --seed 5 --out-dir "$CHAOS_DIR/data" >/dev/null

  run_args=(run
    --data "$CHAOS_DIR/data/epcs.csv"
    --streets "$CHAOS_DIR/data/street_map.txt"
    --regions "$CHAOS_DIR/data/regions.json"
    --stakeholder citizen)

  "$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/baseline" >/dev/null
  baseline_hash="$(tree_hash "$CHAOS_DIR/baseline")"

  "$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/rate0" \
    --fault-seed 7 --fault-rate 0 --geocode-fail-rate 0 >/dev/null
  rate0_hash="$(tree_hash "$CHAOS_DIR/rate0")"
  if [ "$baseline_hash" != "$rate0_hash" ]; then
    echo "FAIL: zero-fault artifacts differ from the baseline" >&2
    exit 1
  fi

  for rate in 0.05 0.2; do
    set +e
    "$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/rate$rate" \
      --fault-seed 7 --fault-rate "$rate" --geocode-fail-rate 0.1 >/dev/null
    code=$?
    set -e
    if [ "$code" -ne 3 ]; then
      echo "FAIL: fault rate $rate exited $code (expected 3 = degraded)" >&2
      exit 1
    fi
    if [ ! -f "$CHAOS_DIR/rate$rate/dashboard.html" ]; then
      echo "FAIL: fault rate $rate produced no dashboard" >&2
      exit 1
    fi
  done
fi

if want crash; then
  echo "== crash: durability suite (crash matrix, resume byte-identity) =="
  cargo test -q --offline -p indice --test durability

  echo "== crash: CLI kill/resume loop at three crash points =="
  # Kill the CLI at an injected crash point (exit 70), resume the run
  # directory, and require the result to be byte-identical — journal,
  # checkpoints, and artifacts — to an uninterrupted run's.
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  CRASH_DIR="$(mktemp -d)"
  trap 'rm -rf ${CHAOS_DIR:+"$CHAOS_DIR"} "$CRASH_DIR"' EXIT
  "$INDICE" generate --records 600 --seed 5 --out-dir "$CRASH_DIR/data" >/dev/null

  crash_args=(run
    --data "$CRASH_DIR/data/epcs.csv"
    --streets "$CRASH_DIR/data/street_map.txt"
    --regions "$CRASH_DIR/data/regions.json"
    --stakeholder citizen)

  "$INDICE" "${crash_args[@]}" --out-dir "$CRASH_DIR/baseline" >/dev/null
  baseline_hash="$(tree_hash "$CRASH_DIR/baseline")"

  # One crash point per stage, covering all three kinds: a clean commit
  # (after), no commit at all (before), and a torn checkpoint write whose
  # journal entry promises bytes the file no longer has (torn).
  for point in preprocess:after analytics:before dashboard:torn; do
    dir="$CRASH_DIR/run-${point//:/-}"
    set +e
    "$INDICE" "${crash_args[@]}" --out-dir "$dir" --crash-at "$point" \
      >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 70 ]; then
      echo "FAIL: --crash-at $point exited $code (expected 70)" >&2
      exit 1
    fi
    "$INDICE" "${crash_args[@]}" --resume "$dir" >/dev/null
    if [ "$(tree_hash "$dir")" != "$baseline_hash" ]; then
      echo "FAIL: resume after $point is not byte-identical to baseline" >&2
      exit 1
    fi
  done
fi

if want obs; then
  echo "== obs: metrics/trace unit + golden-trace suites =="
  cargo test -q --offline -p epc-obs
  cargo test -q --offline -p indice --test observability
  cargo test -q --offline -p indice-cli --test exit_codes

  # The golden logical trace is part of the reviewed artifact surface:
  # print its hash so a schema drift shows up in the CI log.
  echo "== obs: golden trace hash =="
  sha256sum tests/golden/observability_trace.jsonl

  echo "== obs: CLI double-run determinism (metrics, trace, bench) =="
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  OBS_DIR="$(mktemp -d)"
  trap 'rm -rf ${CHAOS_DIR:+"$CHAOS_DIR"} ${CRASH_DIR:+"$CRASH_DIR"} "$OBS_DIR"' EXIT
  "$INDICE" generate --records 600 --seed 5 --out-dir "$OBS_DIR/data" >/dev/null

  obs_args=(run
    --data "$OBS_DIR/data/epcs.csv"
    --streets "$OBS_DIR/data/street_map.txt"
    --regions "$OBS_DIR/data/regions.json"
    --stakeholder citizen)

  for i in 1 2; do
    "$INDICE" "${obs_args[@]}" --out-dir "$OBS_DIR/run$i" \
      --metrics-out "$OBS_DIR/metrics$i.json" \
      --trace-out "$OBS_DIR/trace$i.jsonl" >/dev/null
  done
  # Metrics carry no wall-clock fields: byte-identical across runs.
  if ! cmp -s "$OBS_DIR/metrics1.json" "$OBS_DIR/metrics2.json"; then
    echo "FAIL: metrics snapshots differ between identical runs" >&2
    exit 1
  fi
  # Traces are identical once wall-clock fields (wall_ms on every event,
  # span_ms on span ends) are normalised — the logical stream contract.
  normalise_trace() {
    sed -E 's/"(wall_ms|span_ms)": [0-9]+/"\1": 0/g' "$1"
  }
  if [ "$(normalise_trace "$OBS_DIR/trace1.jsonl")" != \
       "$(normalise_trace "$OBS_DIR/trace2.jsonl")" ]; then
    echo "FAIL: logical trace streams differ between identical runs" >&2
    exit 1
  fi

  for i in 1 2; do
    "$INDICE" bench --records 600 --seed 5 --out "$OBS_DIR/bench$i.json" \
      >/dev/null
  done
  # Everything but the wall-time-derived fields must reproduce exactly.
  normalise_bench() {
    sed -E 's/"(wall_ms|total_wall_ms)": [0-9]+/"\1": 0/g;
            s/"records_per_sec": [0-9.]+/"records_per_sec": 0/g' "$1"
  }
  if [ "$(normalise_bench "$OBS_DIR/bench1.json")" != \
       "$(normalise_bench "$OBS_DIR/bench2.json")" ]; then
    echo "FAIL: bench snapshots differ in deterministic fields" >&2
    exit 1
  fi
fi

if want fleet; then
  echo "== fleet: coordinator unit + chaos suites =="
  cargo test -q --offline -p epc-coord
  cargo test -q --offline -p indice --test fleet

  echo "== fleet: CLI kill/resume loop at two coordinator crash points =="
  # Kill the coordinator between shard commits (exit 70), resume the
  # fleet directory, and require the whole fleet tree — fleet journal,
  # per-city run dirs, merged metrics, dashboard — to be byte-identical
  # to an uninterrupted fleet's.
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  FLEET_DIR="$(mktemp -d)"
  trap 'rm -rf ${CHAOS_DIR:+"$CHAOS_DIR"} ${CRASH_DIR:+"$CRASH_DIR"} \
    ${OBS_DIR:+"$OBS_DIR"} "$FLEET_DIR"' EXIT

  fleet_args=(fleet run --cities 3 --records 400 --seed 5)

  "$INDICE" "${fleet_args[@]}" --out-dir "$FLEET_DIR/baseline" >/dev/null
  baseline_hash="$(tree_hash "$FLEET_DIR/baseline")"
  baseline_metrics="$FLEET_DIR/baseline/fleet.metrics.json"

  for point in 0:after 1:before; do
    dir="$FLEET_DIR/run-${point//:/-}"
    set +e
    "$INDICE" "${fleet_args[@]}" --out-dir "$dir" --crash-at-city "$point" \
      >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 70 ]; then
      echo "FAIL: --crash-at-city $point exited $code (expected 70)" >&2
      exit 1
    fi
    "$INDICE" "${fleet_args[@]}" --resume "$dir" >/dev/null
    if ! cmp -s "$dir/fleet.metrics.json" "$baseline_metrics"; then
      echo "FAIL: merged metrics after $point differ from baseline" >&2
      exit 1
    fi
    if [ "$(tree_hash "$dir")" != "$baseline_hash" ]; then
      echo "FAIL: resume after $point is not byte-identical to baseline" >&2
      exit 1
    fi
  done

  echo "== fleet: degraded fleet keeps surviving cities byte-identical =="
  set +e
  "$INDICE" "${fleet_args[@]}" --out-dir "$FLEET_DIR/degraded" \
    --kill-city 1 --kill-stage preprocess --kill-attempt all \
    >/dev/null 2>&1
  code=$?
  set -e
  if [ "$code" -ne 3 ]; then
    echo "FAIL: exhausted city exited $code (expected 3 = degraded)" >&2
    exit 1
  fi
  for city_dir in "$FLEET_DIR/baseline/cities/"*/; do
    city="$(basename "$city_dir")"
    [ "$city" = "01-milano" ] && continue
    if [ "$(tree_hash "$city_dir")" != \
         "$(tree_hash "$FLEET_DIR/degraded/cities/$city")" ]; then
      echo "FAIL: surviving city $city differs from fault-free baseline" >&2
      exit 1
    fi
  done
  if ! grep -q "city unavailable" "$FLEET_DIR/degraded/fleet_dashboard.html"; then
    echo "FAIL: degraded dashboard lacks the unavailable panel" >&2
    exit 1
  fi
fi

if want ingest; then
  echo "== ingest: generation-journaled micro-batch suite =="
  cargo test -q --offline -p indice --test ingest

  echo "== ingest: batched == one-shot equivalence gate =="
  # Fold the input in three micro-batches and require `current/` to be
  # byte-identical to a one-shot run over the concatenated CSV.
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  INGEST_DIR="$(mktemp -d)"
  trap 'rm -rf ${CHAOS_DIR:+"$CHAOS_DIR"} ${CRASH_DIR:+"$CRASH_DIR"} \
    ${OBS_DIR:+"$OBS_DIR"} ${FLEET_DIR:+"$FLEET_DIR"} "$INGEST_DIR"' EXIT
  "$INDICE" generate --records 900 --seed 5 --out-dir "$INGEST_DIR/data" \
    >/dev/null

  # Split the CSV into three batches (header repeated per batch file).
  # sed reads the file to the end, so pipefail never sees a SIGPIPE.
  csv="$INGEST_DIR/data/epcs.csv"
  total=$(($(wc -l < "$csv") - 1))
  third=$((total / 3))
  sed -n "1p; 2,$((third + 1))p" "$csv" > "$INGEST_DIR/b0.csv"
  sed -n "1p; $((third + 2)),$((2 * third + 1))p" "$csv" > "$INGEST_DIR/b1.csv"
  sed -n "1p; $((2 * third + 2)),\$p" "$csv" > "$INGEST_DIR/b2.csv"

  ingest_args=(ingest
    --append "$INGEST_DIR/b0.csv,$INGEST_DIR/b1.csv,$INGEST_DIR/b2.csv"
    --streets "$INGEST_DIR/data/street_map.txt"
    --regions "$INGEST_DIR/data/regions.json"
    --stakeholder citizen)

  "$INDICE" run \
    --data "$csv" \
    --streets "$INGEST_DIR/data/street_map.txt" \
    --regions "$INGEST_DIR/data/regions.json" \
    --stakeholder citizen --out-dir "$INGEST_DIR/oneshot" >/dev/null
  oneshot_hash="$(tree_hash "$INGEST_DIR/oneshot")"

  "$INDICE" "${ingest_args[@]}" --into "$INGEST_DIR/batched" >/dev/null
  if [ "$(tree_hash "$INGEST_DIR/batched/current")" != "$oneshot_hash" ]; then
    echo "FAIL: batched current/ is not byte-identical to the one-shot run" >&2
    exit 1
  fi
  batched_hash="$(tree_hash "$INGEST_DIR/batched")"

  echo "== ingest: CLI kill/resume loop at three batch-boundary points =="
  # Kill the ingest at an injected batch boundary (exit 70), resume the
  # run directory, and require the whole ingest tree — generation
  # manifest, sealed deltas, current/ — to be byte-identical to an
  # uninterrupted ingest's.
  for point in 1:before 1:after 1:torn; do
    dir="$INGEST_DIR/run-${point//:/-}"
    set +e
    "$INDICE" "${ingest_args[@]}" --into "$dir" --crash-at-batch "$point" \
      >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 70 ]; then
      echo "FAIL: --crash-at-batch $point exited $code (expected 70)" >&2
      exit 1
    fi
    "$INDICE" "${ingest_args[@]}" --resume "$dir" >/dev/null
    if [ "$(tree_hash "$dir")" != "$batched_hash" ]; then
      echo "FAIL: resume after $point is not byte-identical to baseline" >&2
      exit 1
    fi
  done
fi

if want columnar; then
  echo "== columnar: differential row-vs-column harness =="
  cargo test -q --offline -p indice --test columnar

  echo "== columnar: CLI double-run diff (row vs INDICE_ENGINE=columnar) =="
  # The engine selector is an execution knob, never an output knob: a
  # release-binary run under INDICE_ENGINE=columnar must produce a tree
  # byte-identical to the default row engine's on identical inputs.
  cargo build -q --release --offline -p indice-cli
  INDICE="$(pwd)/target/release/indice"
  COL_DIR="$(mktemp -d)"
  trap 'rm -rf ${CHAOS_DIR:+"$CHAOS_DIR"} ${CRASH_DIR:+"$CRASH_DIR"} \
    ${OBS_DIR:+"$OBS_DIR"} ${FLEET_DIR:+"$FLEET_DIR"} \
    ${INGEST_DIR:+"$INGEST_DIR"} "$COL_DIR"' EXIT
  "$INDICE" generate --records 600 --seed 5 --out-dir "$COL_DIR/data" >/dev/null

  col_args=(run
    --data "$COL_DIR/data/epcs.csv"
    --streets "$COL_DIR/data/street_map.txt"
    --regions "$COL_DIR/data/regions.json"
    --stakeholder citizen)

  "$INDICE" "${col_args[@]}" --out-dir "$COL_DIR/row" >/dev/null
  INDICE_ENGINE=columnar "$INDICE" "${col_args[@]}" --out-dir "$COL_DIR/columnar" \
    >/dev/null
  if [ "$(tree_hash "$COL_DIR/row")" != "$(tree_hash "$COL_DIR/columnar")" ]; then
    echo "FAIL: columnar-engine artifacts differ from the row engine's" >&2
    exit 1
  fi

  echo "== columnar: bench cross-engine equivalence gate =="
  # `indice bench --engines row,columnar` fails hard on any fingerprint
  # or artifact divergence between the engines.
  "$INDICE" bench --records 600 --seed 5 --engines row,columnar \
    --out "$COL_DIR/bench.json" >/dev/null
  grep -q '"engines_match": true' "$COL_DIR/bench.json" || {
    echo "FAIL: bench snapshot does not record matching engines" >&2
    exit 1
  }
fi

echo "CI OK ($stage)"
