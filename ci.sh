#!/usr/bin/env bash
# Local CI: formatting, lints, and the tier-1 gate (release build + tests).
# The workspace builds fully offline — all external dependencies are local
# path shims (see shims/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== chaos: fault-injection suite =="
cargo test -q --offline -p indice --test chaos

echo "== chaos: CLI fault rates {0, 0.05, 0.2} =="
# A zero-fault run must be byte-identical to the strict baseline, and
# injected-fault runs must degrade (exit 3) — never fail (exit 1).
INDICE="$(pwd)/target/release/indice"
CHAOS_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR"' EXIT
"$INDICE" generate --records 600 --seed 5 --out-dir "$CHAOS_DIR/data" >/dev/null

run_args=(run
  --data "$CHAOS_DIR/data/epcs.csv"
  --streets "$CHAOS_DIR/data/street_map.txt"
  --regions "$CHAOS_DIR/data/regions.json"
  --stakeholder citizen)

"$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/baseline" >/dev/null
baseline_hash="$(cd "$CHAOS_DIR/baseline" && find . -type f | sort | xargs sha256sum | sha256sum)"

"$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/rate0" \
  --fault-seed 7 --fault-rate 0 --geocode-fail-rate 0 >/dev/null
rate0_hash="$(cd "$CHAOS_DIR/rate0" && find . -type f | sort | xargs sha256sum | sha256sum)"
if [ "$baseline_hash" != "$rate0_hash" ]; then
  echo "FAIL: zero-fault artifacts differ from the baseline" >&2
  exit 1
fi

for rate in 0.05 0.2; do
  set +e
  "$INDICE" "${run_args[@]}" --out-dir "$CHAOS_DIR/rate$rate" \
    --fault-seed 7 --fault-rate "$rate" --geocode-fail-rate 0.1 >/dev/null
  code=$?
  set -e
  if [ "$code" -ne 3 ]; then
    echo "FAIL: fault rate $rate exited $code (expected 3 = degraded)" >&2
    exit 1
  fi
  if [ ! -f "$CHAOS_DIR/rate$rate/dashboard.html" ]; then
    echo "FAIL: fault rate $rate produced no dashboard" >&2
    exit 1
  fi
done

echo "CI OK"
