//! §2.2.2 — the association-rule experiment: rule counts and quality as
//! the support threshold sweeps (the "different granularity level"
//! inspection the paper mentions), plus Apriori runtime scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_mining::apriori::TransactionSet;
use epc_mining::rules::{mine_rules, RuleConfig};
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, SynthConfig};
use indice::config::footnote4_discretizers;

/// Builds the footnote-4 transactional encoding of `n` certificates.
fn transactions(n: usize) -> TransactionSet {
    let c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    let discretizers = footnote4_discretizers();
    let s = c.dataset.schema();
    let eph_id = s.require(wk::EPH).unwrap();
    let eph_values = c.dataset.numeric_values(eph_id);
    let q33 = epc_stats::quantile::quantile(&eph_values, 1.0 / 3.0).unwrap();
    let q67 = epc_stats::quantile::quantile(&eph_values, 2.0 / 3.0).unwrap();
    let eph_disc =
        epc_mining::discretize::Discretizer::with_auto_labels(wk::EPH, vec![q33, q67]).unwrap();

    let mut tset = TransactionSet::new();
    for row in 0..c.dataset.n_rows() {
        let mut items = Vec::new();
        for d in &discretizers {
            let id = s.require(&d.attribute).unwrap();
            if let Some(x) = c.dataset.num(row, id) {
                items.push(d.item(x));
            }
        }
        if let Some(y) = c.dataset.num(row, eph_id) {
            items.push(eph_disc.item(y));
        }
        tset.push_owned(&items);
    }
    tset
}

fn bench_rules(c: &mut Criterion) {
    let tset = transactions(25_000);

    eprintln!("\n== Rules vs minimum support (25 000 EPCs, footnote-4 items) ==");
    eprintln!(
        "{:>10} {:>8} {:>10} {:>10}",
        "min_supp", "rules", "max lift", "best rule"
    );
    for min_support in [0.02, 0.05, 0.10, 0.20, 0.30] {
        let cfg = RuleConfig {
            min_support,
            min_confidence: 0.6,
            min_lift: 1.1,
            max_len: 3,
        };
        let rules = mine_rules(&tset, &cfg);
        let best = rules.first();
        eprintln!(
            "{min_support:>10.2} {:>8} {:>10.2}  {}",
            rules.len(),
            best.map(|r| r.lift).unwrap_or(f64::NAN),
            best.map(|r| r.display()).unwrap_or_default()
        );
    }

    let mut group = c.benchmark_group("rules");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let t = transactions(n);
        group.bench_with_input(BenchmarkId::new("mine_supp_0.05", n), &t, |b, t| {
            b.iter(|| {
                mine_rules(
                    t,
                    &RuleConfig {
                        min_support: 0.05,
                        min_confidence: 0.6,
                        min_lift: 1.1,
                        max_len: 3,
                    },
                )
            })
        });
    }
    group.bench_function("mine_supp_0.02_25k", |b| {
        b.iter(|| {
            mine_rules(
                &tset,
                &RuleConfig {
                    min_support: 0.02,
                    min_confidence: 0.6,
                    min_lift: 1.1,
                    max_len: 3,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
