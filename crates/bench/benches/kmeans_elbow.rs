//! §2.2.2 — the K-selection experiment: the SSE-vs-K curve whose elbow
//! picks K ("the K value is chosen as the point where the marginal
//! decrease in the SSE curve is maximized"), plus K-means runtime scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_mining::elbow::{elbow_k, elbow_k_by_distance, sse_curve};
use epc_mining::kmeans::{KMeans, KMeansConfig};
use epc_mining::matrix::Matrix;
use epc_mining::normalize::MinMaxScaler;
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, SynthConfig};

fn feature_matrix(n: usize) -> Matrix {
    let c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    let s = c.dataset.schema();
    let ids: Vec<_> = wk::CASE_STUDY_FEATURES
        .iter()
        .map(|a| s.require(a).unwrap())
        .collect();
    let mut data = Vec::new();
    let mut rows = 0;
    for r in 0..c.dataset.n_rows() {
        let vals: Option<Vec<f64>> = ids.iter().map(|&id| c.dataset.num(r, id)).collect();
        if let Some(v) = vals {
            data.extend(v);
            rows += 1;
        }
    }
    let m = Matrix::from_vec(data, rows, ids.len());
    MinMaxScaler::fit_transform(&m).unwrap().1
}

fn bench_kmeans(c: &mut Criterion) {
    let scaled = feature_matrix(25_000);

    eprintln!("\n== SSE vs K (25 000 EPCs, 5 scaled features) ==");
    let base = KMeansConfig::default();
    let curve = sse_curve(&scaled, 2..=10, &base);
    eprintln!("{:>4} {:>12}", "K", "SSE");
    for (k, sse) in &curve {
        eprintln!("{k:>4} {sse:>12.2}");
    }
    eprintln!(
        "elbow (marginal-decrease criterion): K = {:?}; geometric criterion: K = {:?}",
        elbow_k(&curve),
        elbow_k_by_distance(&curve)
    );

    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let m = feature_matrix(n);
        group.bench_with_input(BenchmarkId::new("fit_k5", n), &m, |b, m| {
            b.iter(|| {
                KMeans::new(KMeansConfig {
                    k: 5,
                    ..KMeansConfig::default()
                })
                .fit(m)
                .unwrap()
            })
        });
    }
    group.bench_function("elbow_sweep_2_to_10_25k", |b| {
        b.iter(|| sse_curve(&scaled, 2..=10, &base))
    });
    group.finish();
}

criterion_group!(benches, bench_kmeans);
criterion_main!(benches);
