//! Figure 3 — the correlation plot matrix of the five case-study features.
//!
//! Prints the ρ matrix (the figure's content: all pairs weakly correlated
//! ⇒ the feature set is eligible for clustering), writes the grayscale SVG,
//! and benchmarks matrix computation + rendering at the 25 000-row scale.

use criterion::{criterion_group, criterion_main, Criterion};
use epc_model::wellknown as wk;
use epc_stats::correlation::correlation_matrix;
use epc_synth::{EpcGenerator, SynthConfig};
use epc_viz::corrplot::CorrelationPlot;

fn feature_columns(dataset: &epc_model::Dataset) -> (Vec<&'static str>, Vec<Vec<f64>>) {
    let names: Vec<&'static str> = wk::CASE_STUDY_FEATURES.to_vec();
    let columns: Vec<Vec<f64>> = names
        .iter()
        .map(|n| {
            let id = dataset.schema().require(n).unwrap();
            dataset
                .numeric_column(id)
                .iter()
                .map(|v| v.unwrap_or(f64::NAN))
                .collect()
        })
        .collect();
    (names, columns)
}

fn bench_fig3(c: &mut Criterion) {
    let collection = EpcGenerator::new(SynthConfig {
        n_records: 25_000,
        ..SynthConfig::default()
    })
    .generate();
    let (names, columns) = feature_columns(&collection.dataset);
    let refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    let matrix = correlation_matrix(&names, &refs);

    eprintln!("\n== Figure 3: Pearson correlation matrix (25 000 EPCs) ==");
    eprint!("{:>14}", "");
    for n in &matrix.names {
        eprint!("{n:>14}");
    }
    eprintln!();
    for i in 0..matrix.len() {
        eprint!("{:>14}", matrix.names[i]);
        for j in 0..matrix.len() {
            eprint!("{:>14.3}", matrix.get(i, j));
        }
        eprintln!();
    }
    let (i, j, rho) = matrix.max_abs_off_diagonal().unwrap();
    eprintln!(
        "strongest pair: {} / {} (rho = {rho:.3}); eligible (<0.8): {}",
        matrix.names[i],
        matrix.names[j],
        matrix.eligible_for_analytics(0.8)
    );

    let dir = std::path::Path::new("target/indice-artifacts/bench");
    std::fs::create_dir_all(dir).ok();
    std::fs::write(
        dir.join("fig3_correlation_matrix.svg"),
        CorrelationPlot::default().render(&matrix),
    )
    .ok();

    let mut group = c.benchmark_group("fig3_correlation");
    group.sample_size(20);
    group.bench_function("matrix_5x5_25k_rows", |b| {
        b.iter(|| correlation_matrix(&names, &refs))
    });
    group.bench_function("render_svg", |b| {
        b.iter(|| CorrelationPlot::default().render(&matrix))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
