//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. k-means++ vs random initialization (SSE quality and convergence);
//! 2. Levenshtein-only cleaning vs + geocoder fallback (coverage);
//! 3. bounded vs unbounded Levenshtein in the street scan (speed);
//! 4. marker-clustering cell-size sweep (aggregation behaviour);
//! 5. K-means vs agglomerative clustering (silhouette quality — the
//!    future-work comparison of §4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_geo::cleaning::{clean_addresses, AddressQuery, CleaningConfig};
use epc_geo::geocode::{QuotaGeocoder, SimulatedGeocoder};
use epc_geo::levenshtein::{levenshtein, levenshtein_bounded};
use epc_mining::kmeans::{KMeans, KMeansConfig, KMeansInit};
use epc_mining::matrix::Matrix;
use epc_mining::normalize::MinMaxScaler;
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use epc_viz::clustermarker::cluster_markers;
use epc_viz::scale::GeoProjection;

fn bench_ablations(c: &mut Criterion) {
    // --- 1. k-means init ablation ---
    let coll = EpcGenerator::new(SynthConfig {
        n_records: 10_000,
        ..SynthConfig::default()
    })
    .generate();
    let s = coll.dataset.schema();
    let ids: Vec<_> = wk::CASE_STUDY_FEATURES
        .iter()
        .map(|a| s.require(a).unwrap())
        .collect();
    let mut data = Vec::new();
    for r in 0..coll.dataset.n_rows() {
        for &id in &ids {
            data.push(coll.dataset.num(r, id).unwrap());
        }
    }
    let matrix = Matrix::from_vec(data, coll.dataset.n_rows(), ids.len());
    let (_, scaled) = MinMaxScaler::fit_transform(&matrix).unwrap();

    eprintln!("\n== Ablation 1: k-means init (K = 5, 10 000 points, 5 seeds) ==");
    eprintln!(
        "{:<12} {:>12} {:>12} {:>8}",
        "init", "mean SSE", "worst SSE", "iters"
    );
    for (name, init) in [
        ("random", KMeansInit::Random),
        ("kmeans++", KMeansInit::KMeansPlusPlus),
    ] {
        let mut sses = Vec::new();
        let mut iters = 0usize;
        for seed in 0..5u64 {
            let m = KMeans::new(KMeansConfig {
                k: 5,
                init,
                seed,
                ..KMeansConfig::default()
            })
            .fit(&scaled)
            .unwrap();
            sses.push(m.sse);
            iters += m.n_iter;
        }
        let mean = sses.iter().sum::<f64>() / sses.len() as f64;
        let worst = sses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        eprintln!(
            "{name:<12} {mean:>12.2} {worst:>12.2} {:>8.1}",
            iters as f64 / 5.0
        );
    }

    // --- 2. geocoder ablation ---
    let mut noisy = EpcGenerator::new(SynthConfig {
        n_records: 10_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(
        &mut noisy,
        &NoiseConfig {
            typo_rate: 0.35,
            ..NoiseConfig::default()
        },
    );
    let ns = noisy.dataset.schema();
    let addr = ns.require(wk::ADDRESS).unwrap();
    let hn = ns.require(wk::HOUSE_NUMBER).unwrap();
    let queries: Vec<AddressQuery> = (0..noisy.dataset.n_rows())
        .map(|row| AddressQuery {
            id: row,
            address: epc_geo::address::Address {
                street: noisy.dataset.cat(row, addr).unwrap_or("").to_owned(),
                house_number: noisy.dataset.cat(row, hn).map(str::to_owned),
                zip: None,
            },
            point: None,
        })
        .collect();
    let strict = CleaningConfig {
        phi: 0.92,
        ..CleaningConfig::default()
    };
    let (_, without) = clean_addresses(&queries, &noisy.city.street_map, None, &strict);
    let geocoder = QuotaGeocoder::new(
        SimulatedGeocoder::new(noisy.city.street_map.clone(), 0.55, 0.02),
        100_000,
    );
    let (_, with) = clean_addresses(&queries, &noisy.city.street_map, Some(&geocoder), &strict);
    eprintln!("\n== Ablation 2: geocoder fallback (phi = 0.92, 10 000 noisy addresses) ==");
    eprintln!(
        "without geocoder: {} resolved, {} unresolved",
        without.by_reference, without.unresolved
    );
    eprintln!(
        "with geocoder:    {} resolved (+{} via geocoder), {} unresolved",
        with.by_reference + with.by_geocoder,
        with.by_geocoder,
        with.unresolved
    );

    // --- 4. marker-clustering cell-size sweep ---
    let pts: Vec<(epc_geo::point::GeoPoint, Option<f64>)> = {
        let lat = s.require(wk::LATITUDE).unwrap();
        let lon = s.require(wk::LONGITUDE).unwrap();
        let eph = s.require(wk::EPH).unwrap();
        (0..coll.dataset.n_rows())
            .map(|r| {
                (
                    epc_geo::point::GeoPoint {
                        lat: coll.dataset.num(r, lat).unwrap(),
                        lon: coll.dataset.num(r, lon).unwrap(),
                    },
                    coll.dataset.num(r, eph),
                )
            })
            .collect()
    };
    let bbox =
        epc_geo::bbox::BoundingBox::from_points(&pts.iter().map(|(p, _)| *p).collect::<Vec<_>>())
            .unwrap();
    let proj = GeoProjection::fit(bbox, 760.0, 560.0, 12.0);
    eprintln!("\n== Ablation 4: marker-cluster cell size (10 000 points) ==");
    eprintln!("{:>10} {:>9} {:>12}", "cell px", "markers", "max marker");
    for cell in [14.0, 36.0, 64.0, 120.0, 240.0] {
        let markers = cluster_markers(&pts, &proj, cell);
        eprintln!(
            "{cell:>10.0} {:>9} {:>12}",
            markers.len(),
            markers.iter().map(|m| m.count).max().unwrap_or(0)
        );
    }

    // --- 5. K-means vs hierarchical, judged by silhouette ---
    {
        use epc_mining::hierarchical::{hierarchical_clusters, Linkage};
        use epc_mining::silhouette::silhouette_score;
        // Subsample: agglomerative is O(n³).
        let sub_rows: Vec<Vec<f64>> = (0..scaled.n_rows())
            .step_by(scaled.n_rows() / 600)
            .map(|i| scaled.row(i).to_vec())
            .collect();
        let sub = Matrix::from_rows(&sub_rows);
        eprintln!(
            "\n== Ablation 5: clustering algorithms (silhouette, {} points, K = 4) ==",
            sub.n_rows()
        );
        let km = KMeans::new(KMeansConfig {
            k: 4,
            ..KMeansConfig::default()
        })
        .fit(&sub)
        .unwrap();
        let km_sil = silhouette_score(&sub, &km.assignments).unwrap();
        eprintln!("{:<22} silhouette {:.3}", "k-means++", km_sil);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let labels = hierarchical_clusters(&sub, 4, linkage).unwrap();
            let sil = silhouette_score(&sub, &labels).unwrap();
            eprintln!(
                "{:<22} silhouette {:.3}",
                format!("agglomerative {linkage:?}"),
                sil
            );
        }
    }

    // --- 3. Levenshtein micro-benchmarks ---
    let mut group = c.benchmark_group("ablations");
    let a = "corso vittorio emanuele ii";
    let b = "via madonna di campagna";
    group.bench_function("levenshtein_unbounded", |bch| {
        bch.iter(|| levenshtein(std::hint::black_box(a), std::hint::black_box(b)))
    });
    group.bench_function("levenshtein_bounded_3", |bch| {
        bch.iter(|| levenshtein_bounded(std::hint::black_box(a), std::hint::black_box(b), 3))
    });
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("marker_clustering", 10_000usize),
        &pts,
        |bch, pts| bch.iter(|| cluster_markers(pts, &proj, 64.0)),
    );
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
