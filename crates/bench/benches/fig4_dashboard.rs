//! Figure 4 — the district-level public-administration dashboard: the
//! K-means cluster-marker map, the EPH frequency distributions (overall and
//! per cluster), and the association-rule table.
//!
//! Prints the dashboard's content summary (clusters found, per-cluster EPH
//! means, top rules), writes the HTML page, and benchmarks stage-3
//! assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use epc_query::Stakeholder;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::analytics::analyze;
use indice::config::IndiceConfig;
use indice::dashboard::build_dashboard;

fn bench_fig4(c: &mut Criterion) {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 25_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut collection, &NoiseConfig::none());
    let config = IndiceConfig::default();
    let analytics = analyze(&collection.dataset, &config).expect("analytics runs");

    eprintln!("\n== Figure 4: dashboard content (PA, district level) ==");
    eprintln!(
        "K = {} (elbow over {:?})",
        analytics.chosen_k, analytics.sse_curve
    );
    eprintln!("{:<8} {:>7} {:>10}", "cluster", "size", "mean EPH");
    for s in &analytics.cluster_summaries {
        eprintln!(
            "{:<8} {:>7} {:>10.1}",
            s.cluster,
            s.size,
            s.mean_response.unwrap_or(f64::NAN)
        );
    }
    eprintln!("top rules:");
    for r in analytics.rules.iter().take(5) {
        eprintln!(
            "  {:<60} conf {:.2} lift {:.2}",
            r.display(),
            r.confidence,
            r.lift
        );
    }

    let out = build_dashboard(
        &collection.dataset,
        &collection.city.hierarchy,
        &analytics,
        Stakeholder::PublicAdministration,
        12,
    )
    .expect("dashboard builds");
    let dir = std::path::Path::new("target/indice-artifacts/bench");
    std::fs::create_dir_all(dir).ok();
    std::fs::write(dir.join("fig4_dashboard.html"), out.dashboard.render_html()).ok();
    eprintln!(
        "dashboard with {} panels written to {}/fig4_dashboard.html",
        out.dashboard.n_panels(),
        dir.display()
    );

    let mut group = c.benchmark_group("fig4_dashboard");
    group.sample_size(10);
    group.bench_function("build_panels_25k", |b| {
        b.iter(|| {
            build_dashboard(
                &collection.dataset,
                &collection.city.hierarchy,
                &analytics,
                Stakeholder::PublicAdministration,
                12,
            )
            .unwrap()
        })
    });
    group.bench_function("render_html", |b| b.iter(|| out.dashboard.render_html()));
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
