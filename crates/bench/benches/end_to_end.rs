//! The dataset-scale experiment: the full three-stage pipeline at the
//! paper's 25 000-certificate scale (and below, for the scaling trend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_query::Stakeholder;
use epc_runtime::RuntimeConfig;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::config::IndiceConfig;
use indice::engine::Indice;

fn engine(n: usize) -> Indice {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut c, &NoiseConfig::default());
    Indice::from_collection(c, IndiceConfig::default())
}

fn bench_end_to_end(c: &mut Criterion) {
    // One full run at paper scale, with its headline numbers: serial
    // reference first, then the same pipeline on 4 threads. The staged
    // executor guarantees identical outputs; the reports show where the
    // wall time goes per block.
    let mut big = engine(25_000);
    big.set_runtime(RuntimeConfig::sequential());
    let (out, serial_report) = big
        .run_detailed(Stakeholder::PublicAdministration)
        .expect("pipeline");
    big.set_runtime(RuntimeConfig::new(4));
    let (_, parallel_report) = big
        .run_detailed(Stakeholder::PublicAdministration)
        .expect("pipeline");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("\n== End-to-end (25 000 EPCs, PA stakeholder) ==");
    eprintln!("-- threads = 1 --\n{serial_report}");
    eprintln!("-- threads = 4 --\n{parallel_report}");
    eprintln!(
        "speedup at 4 threads: {:.2}x ({cores} hardware core(s) available; \
         outputs are identical either way)",
        serial_report.total_wall().as_secs_f64() / parallel_report.total_wall().as_secs_f64()
    );
    eprintln!(
        "selected E.1.1: {}; resolved addresses: {}/{}; outliers removed: {}",
        out.preprocess.cleaning.total,
        out.preprocess.cleaning.by_reference + out.preprocess.cleaning.by_geocoder,
        out.preprocess.cleaning.total,
        out.preprocess.removed_rows.len(),
    );
    eprintln!(
        "K = {}, rules = {}, dashboard panels = {}",
        out.analytics.chosen_k,
        out.analytics.rules.len(),
        out.dashboard.n_panels()
    );

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for n in [2_000usize, 5_000] {
        let e = engine(n);
        group.bench_with_input(BenchmarkId::new("full_pipeline", n), &e, |b, e| {
            b.iter(|| e.run(Stakeholder::PublicAdministration).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
