//! Figure 2 — the four-map zoom series: choropleth + scatter at fine zoom,
//! cluster-marker maps at district and city zoom.
//!
//! Regenerates the figure's content (written to
//! `target/indice-artifacts/bench/fig2_*`), reports the aggregation
//! behaviour per zoom level (the qualitative shape of the figure: the same
//! certificates collapse into fewer, larger markers as the view zooms
//! out), and benchmarks the rendering cost of each map type.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_model::{wellknown as wk, Granularity};
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use epc_viz::clustermarker::ClusterMarkerMap;
use indice::dashboard::figure2_maps;

fn setup(n: usize) -> epc_synth::epcgen::SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut c, &NoiseConfig::none());
    c
}

fn report_zoom_series(c: &epc_synth::epcgen::SyntheticCollection) {
    let s = c.dataset.schema();
    let lat = s.require(wk::LATITUDE).unwrap();
    let lon = s.require(wk::LONGITUDE).unwrap();
    let uw = s.require(wk::U_WINDOWS).unwrap();
    eprintln!(
        "\n== Figure 2: marker aggregation per zoom level ({} certificates) ==",
        c.dataset.n_rows()
    );
    eprintln!(
        "{:<16} {:>9} {:>12} {:>14}",
        "zoom level", "markers", "max marker", "mean Uw range"
    );
    for level in Granularity::ALL {
        let mut map = ClusterMarkerMap::new("fig2", "Uw", level);
        for r in 0..c.dataset.n_rows() {
            if let (Some(a), Some(b)) = (c.dataset.num(r, lat), c.dataset.num(r, lon)) {
                map.add_point(
                    epc_geo::point::GeoPoint { lat: a, lon: b },
                    c.dataset.num(r, uw),
                );
            }
        }
        let markers = map.markers();
        let max = markers.iter().map(|m| m.count).max().unwrap_or(0);
        let means: Vec<f64> = markers.iter().filter_map(|m| m.mean_value).collect();
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        eprintln!(
            "{:<16} {:>9} {:>12} {:>7.2}-{:.2}",
            level.to_string(),
            markers.len(),
            max,
            lo,
            hi
        );
    }
}

fn bench_fig2(c: &mut Criterion) {
    let collection = setup(25_000);
    report_zoom_series(&collection);

    // Persist the actual figure artifacts once.
    let maps = figure2_maps(
        &collection.dataset,
        &collection.city.hierarchy,
        wk::U_WINDOWS,
    )
    .expect("maps render");
    let dir = std::path::Path::new("target/indice-artifacts/bench");
    std::fs::create_dir_all(dir).ok();
    for (name, svg) in &maps {
        std::fs::write(dir.join(name), svg).ok();
    }
    eprintln!("figure 2 SVGs written to {}", dir.display());

    let mut group = c.benchmark_group("fig2_maps");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let coll = setup(n);
        group.bench_with_input(BenchmarkId::new("four_map_series", n), &coll, |b, coll| {
            b.iter(|| figure2_maps(&coll.dataset, &coll.city.hierarchy, wk::U_WINDOWS).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
