//! §2.1.1 — the geospatial-cleaning experiment: street-reconstruction
//! accuracy vs the similarity threshold φ (a table the paper implies but
//! could not compute without ground truth), plus cleaning throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_geo::address::Address;
use epc_geo::cleaning::{clean_addresses, AddressQuery, CleaningConfig};
use epc_geo::point::GeoPoint;
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};

fn noisy(n: usize) -> epc_synth::epcgen::SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(
        &mut c,
        &NoiseConfig {
            typo_rate: 0.25,
            abbreviation_rate: 0.15,
            ..NoiseConfig::default()
        },
    );
    c
}

fn queries_of(c: &epc_synth::epcgen::SyntheticCollection) -> Vec<AddressQuery> {
    let s = c.dataset.schema();
    let addr = s.require(wk::ADDRESS).unwrap();
    let hn = s.require(wk::HOUSE_NUMBER).unwrap();
    let zip = s.require(wk::ZIP_CODE).unwrap();
    let lat = s.require(wk::LATITUDE).unwrap();
    let lon = s.require(wk::LONGITUDE).unwrap();
    (0..c.dataset.n_rows())
        .map(|row| AddressQuery {
            id: row,
            address: Address {
                street: c.dataset.cat(row, addr).unwrap_or("").to_owned(),
                house_number: c.dataset.cat(row, hn).map(str::to_owned),
                zip: c.dataset.cat(row, zip).map(str::to_owned),
            },
            point: match (c.dataset.num(row, lat), c.dataset.num(row, lon)) {
                (Some(a), Some(b)) => Some(GeoPoint { lat: a, lon: b }),
                _ => None,
            },
        })
        .collect()
}

fn bench_cleaning(c: &mut Criterion) {
    let collection = noisy(25_000);
    let queries = queries_of(&collection);

    eprintln!("\n== Cleaning accuracy vs phi (25 000 noisy addresses, reference map only) ==");
    eprintln!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "phi", "by-ref", "unresolved", "street-acc", "zip-acc"
    );
    for phi in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let cfg = CleaningConfig {
            phi,
            ..CleaningConfig::default()
        };
        let (cleaned, report) = clean_addresses(&queries, &collection.city.street_map, None, &cfg);
        let street_ok = cleaned
            .iter()
            .filter(|x| x.address.street == collection.truth.streets[x.id])
            .count();
        let zip_ok = cleaned
            .iter()
            .filter(|x| x.address.zip.as_deref() == Some(collection.truth.zips[x.id].as_str()))
            .count();
        eprintln!(
            "{phi:>6.2} {:>10} {:>12} {:>11.1}% {:>11.1}%",
            report.by_reference,
            report.unresolved,
            street_ok as f64 / queries.len() as f64 * 100.0,
            zip_ok as f64 / queries.len() as f64 * 100.0,
        );
    }

    let mut group = c.benchmark_group("cleaning");
    group.sample_size(10);
    for n in [2_000usize, 10_000, 25_000] {
        let coll = noisy(n);
        let qs = queries_of(&coll);
        group.bench_with_input(BenchmarkId::new("reference_only", n), &qs, |b, qs| {
            b.iter(|| clean_addresses(qs, &coll.city.street_map, None, &CleaningConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cleaning);
criterion_main!(benches);
