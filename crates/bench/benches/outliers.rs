//! §2.1.2 — the outlier-detection experiment: precision/recall of the
//! three univariate methods (boxplot, gESD, MAD) and the DBSCAN
//! multivariate detector against injected ground-truth outliers, plus
//! runtime scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epc_mining::dbscan::dbscan;
use epc_mining::kdistance::estimate_dbscan_params;
use epc_mining::matrix::Matrix;
use epc_mining::normalize::MinMaxScaler;
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::outliers::UnivariateMethod;
use std::collections::BTreeSet;

fn collection_with_outliers(n: usize) -> epc_synth::epcgen::SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: n,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(
        &mut c,
        &NoiseConfig {
            univariate_outlier_rate: 0.02,
            multivariate_outlier_rate: 0.005,
            ..NoiseConfig::none()
        },
    );
    c
}

fn pr(flagged: &BTreeSet<usize>, truth: &BTreeSet<usize>) -> (f64, f64) {
    let tp = flagged.intersection(truth).count() as f64;
    (
        tp / flagged.len().max(1) as f64,
        tp / truth.len().max(1) as f64,
    )
}

fn bench_outliers(c: &mut Criterion) {
    let collection = collection_with_outliers(25_000);
    let truth: BTreeSet<usize> = collection.truth.injected_outliers.iter().copied().collect();
    eprintln!(
        "\n== Outlier detection vs {} injected outliers (25 000 EPCs) ==",
        truth.len()
    );
    eprintln!(
        "{:<22} {:>9} {:>10} {:>8}",
        "method", "flagged", "precision", "recall"
    );

    // Univariate union over the three corruption targets (Uw, Uo, EPH).
    let s = collection.dataset.schema();
    let attrs = [wk::U_WINDOWS, wk::U_OPAQUE, wk::EPH];
    let methods = [
        UnivariateMethod::default_boxplot(),
        UnivariateMethod::default_gesd_for(collection.dataset.n_rows()),
        UnivariateMethod::default_mad(),
    ];
    for method in &methods {
        let mut flagged = BTreeSet::new();
        for attr in attrs {
            let id = s.require(attr).unwrap();
            let (values, rows) = collection.dataset.numeric_with_rows(id);
            flagged.extend(method.detect(&values).into_iter().map(|i| rows[i]));
        }
        let (p, r) = pr(&flagged, &truth);
        eprintln!(
            "{:<22} {:>9} {:>9.2} {:>8.2}",
            format!("univariate {}", method.name()),
            flagged.len(),
            p,
            r
        );
    }

    // Multivariate DBSCAN over the five case-study features.
    let ids: Vec<_> = wk::CASE_STUDY_FEATURES
        .iter()
        .map(|a| s.require(a).unwrap())
        .collect();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for r in 0..collection.dataset.n_rows() {
        let vals: Option<Vec<f64>> = ids
            .iter()
            .map(|&id| collection.dataset.num(r, id))
            .collect();
        if let Some(v) = vals {
            rows.push(r);
            data.extend(v);
        }
    }
    let matrix = Matrix::from_vec(data, rows.len(), ids.len());
    let (_, scaled) = MinMaxScaler::fit_transform(&matrix).unwrap();
    let sample_rows: Vec<Vec<f64>> = (0..rows.len())
        .step_by((rows.len() / 1_500).max(1))
        .map(|i| scaled.row(i).to_vec())
        .collect();
    let params = estimate_dbscan_params(&Matrix::from_rows(&sample_rows), &[4, 5, 6, 8], 0.15)
        .expect("params estimated");
    let result = dbscan(&scaled, &params);
    let flagged: BTreeSet<usize> = result
        .noise_indices()
        .into_iter()
        .map(|i| rows[i])
        .collect();
    let (p, r) = pr(&flagged, &truth);
    eprintln!(
        "{:<22} {:>9} {:>9.2} {:>8.2}   (eps {:.3}, minPts {})",
        "multivariate DBSCAN",
        flagged.len(),
        p,
        r,
        params.eps,
        params.min_points
    );

    // --- Runtime scaling ---
    let mut group = c.benchmark_group("outliers");
    group.sample_size(10);
    for n in [5_000usize, 25_000] {
        let coll = collection_with_outliers(n);
        let id = coll.dataset.schema().require(wk::U_WINDOWS).unwrap();
        let (values, _) = coll.dataset.numeric_with_rows(id);
        for method in &methods {
            group.bench_with_input(
                BenchmarkId::new(format!("univariate_{}", method.name()), n),
                &values,
                |b, values| b.iter(|| method.detect(values)),
            );
        }
    }
    // DBSCAN at a size where O(n²) stays tractable for repetition.
    let sub_rows: Vec<Vec<f64>> = (0..scaled.n_rows())
        .step_by(5)
        .map(|i| scaled.row(i).to_vec())
        .collect();
    let sub = Matrix::from_rows(&sub_rows);
    group.bench_function("dbscan_5k_points_5d", |b| b.iter(|| dbscan(&sub, &params)));
    group.finish();
}

criterion_group!(benches, bench_outliers);
criterion_main!(benches);
