//! # epc-ingest
//!
//! Crash-safe incremental ingest for the INDICE pipeline: a run directory
//! becomes a sequence of sealed **generations**, one per ingested
//! micro-batch, committed by an append-fsync'd line in
//! `generations.manifest.jsonl` (the same append-then-fsync commit-point
//! discipline as `epc-journal`'s run manifest — the manifest line *is* the
//! commit; everything it references must already be durable).
//!
//! Layout of an ingest run directory:
//!
//! ```text
//! out/
//!   generations.manifest.jsonl   one GenerationEntry JSON line per batch
//!   gens/gen-00000/              sealed per-generation checkpoint deltas
//!   gens/gen-00001/
//!   current/                     cumulative artifacts (a durable run dir)
//! ```
//!
//! Sealed generations are immutable; `current/` is rebuilt (last-write-wins,
//! deterministic bytes) after each batch, so re-processing a batch after a
//! crash rewrites identical content. Entries form a hash chain — each
//! records the chain hash of its parent — so a resuming ingest can prove
//! the sealed prefix it is folding is exactly the one that was committed.
//!
//! This crate holds the *bookkeeping*: the generation grammar, manifest
//! I/O, chain validation, and directory layout. The pipeline-aware runner
//! (cleaning deltas, mergeable analytics, dashboard regeneration) lives in
//! `indice::generations`.

mod generation;
mod manifest;

pub use generation::{
    gen_dir, gen_dir_name, validate_chain, GenerationEntry, GenerationOutcome, CURRENT_DIR,
    GENESIS, GENS_DIR,
};
pub use manifest::{write_delta, GenerationManifest, LoadedGenerations, GENERATIONS_FILE};
