//! The append-only generation manifest (`generations.manifest.jsonl`).
//!
//! Same commit-point discipline as `epc-journal`'s run manifest: one JSON
//! line per sealed generation, appended and fsync'd *after* the
//! generation's checkpoint deltas and the rebuilt `current/` artifacts are
//! durable. Loading tolerates a torn tail and reports it instead of
//! swallowing it.

use crate::generation::{validate_chain, GenerationEntry};
use epc_journal::{write_atomic, write_atomic_path};
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the generation manifest inside an ingest run directory.
pub const GENERATIONS_FILE: &str = "generations.manifest.jsonl";

/// What [`GenerationManifest::load`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedGenerations {
    /// The valid entry prefix (up to the first unparsable line).
    pub entries: Vec<GenerationEntry>,
    /// `true` when trailing bytes failed to parse — a torn append was
    /// discarded to recover `entries`.
    pub recovered_torn_tail: bool,
}

/// Handle to an ingest run directory's generation manifest.
#[derive(Debug, Clone)]
pub struct GenerationManifest {
    dir: PathBuf,
}

impl GenerationManifest {
    /// The manifest of `run_dir` (the file itself may not exist yet).
    pub fn at(run_dir: &Path) -> Self {
        GenerationManifest {
            dir: run_dir.to_path_buf(),
        }
    }

    /// Full path of the manifest file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(GENERATIONS_FILE)
    }

    /// Loads all parsable entries. A missing file is an empty manifest;
    /// the first unparsable line truncates the result (torn tail) and
    /// sets [`LoadedGenerations::recovered_torn_tail`].
    pub fn load(&self) -> io::Result<LoadedGenerations> {
        let text = match std::fs::read_to_string(self.path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(LoadedGenerations {
                    entries: Vec::new(),
                    recovered_torn_tail: false,
                })
            }
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        let mut recovered_torn_tail = false;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<GenerationEntry>(line) {
                Ok(entry) => entries.push(entry),
                Err(_) => {
                    recovered_torn_tail = true;
                    break;
                }
            }
        }
        Ok(LoadedGenerations {
            entries,
            recovered_torn_tail,
        })
    }

    /// Appends one entry (one JSON line) and fsyncs — the generation's
    /// commit point. The entry's checkpoints and the rebuilt cumulative
    /// artifacts must already be durable when this is called.
    pub fn append(&self, entry: &GenerationEntry) -> io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path())?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
        drop(f);
        // Durably record the file's existence in its directory (first
        // append creates it). write_atomic_path's parent-sync helper is
        // private, so sync the directory by opening it directly.
        let d = std::fs::File::open(&self.dir)?;
        d.sync_all()
    }

    /// Atomically replaces the manifest with exactly `entries` — used
    /// when resume validation rejects a suffix and the ingest re-seals
    /// from there.
    pub fn rewrite(&self, entries: &[GenerationEntry]) -> io::Result<()> {
        let mut text = String::new();
        for entry in entries {
            let line = serde_json::to_string(entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            text.push_str(&line);
            text.push('\n');
        }
        write_atomic(&self.dir, GENERATIONS_FILE, text.as_bytes())?;
        Ok(())
    }

    /// Loads the manifest and validates the sealed prefix's hash chain,
    /// returning the entries plus the chain tip the next generation must
    /// record as its parent. Chain violations are `InvalidData` errors —
    /// a tampered manifest must never be silently folded.
    pub fn load_validated(&self) -> io::Result<(LoadedGenerations, String)> {
        let loaded = self.load()?;
        let tip = validate_chain(&loaded.entries)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
        Ok((loaded, tip))
    }
}

/// Writes `contents` to `path` with the crate's atomic discipline —
/// re-exported convenience so runner code checkpointing generation deltas
/// under `gens/gen-%05d/` does not need to depend on `epc-journal`
/// directly.
pub fn write_delta(path: &Path, contents: &[u8]) -> io::Result<epc_journal::ArtifactRecord> {
    write_atomic_path(path, contents)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generation::{GenerationOutcome, GENESIS};
    use std::collections::BTreeMap;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "epc-ingest-manifest-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(seq: usize, parent: &str) -> GenerationEntry {
        GenerationEntry {
            seq,
            batch: format!("b{seq}.csv"),
            batch_hash: format!("bh{seq}"),
            config_fingerprint: "cfg".into(),
            cumulative_input_hash: format!("cum{seq}"),
            parent: parent.to_owned(),
            outcome: GenerationOutcome::Complete,
            reasons: Vec::new(),
            recompute: "exact".into(),
            records_in: 10,
            records_kept: 9,
            quarantined: 1,
            faults: BTreeMap::new(),
            artifacts_written: 2,
            artifacts_carried: 0,
            checkpoints: Vec::new(),
            current: Vec::new(),
        }
    }

    fn seal(m: &GenerationManifest, n: usize) -> Vec<GenerationEntry> {
        let mut parent = GENESIS.to_owned();
        let mut out = Vec::new();
        for seq in 0..n {
            let e = entry(seq, &parent);
            m.append(&e).unwrap();
            parent = e.chain_hash();
            out.push(e);
        }
        out
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir();
        let m = GenerationManifest::at(&dir);
        let loaded = m.load().unwrap();
        assert!(loaded.entries.is_empty());
        assert!(!loaded.recovered_torn_tail);
        let sealed = seal(&m, 2);
        let loaded = m.load().unwrap();
        assert_eq!(loaded.entries, sealed);
        assert!(!loaded.recovered_torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let dir = temp_dir();
        let m = GenerationManifest::at(&dir);
        let sealed = seal(&m, 2);
        let text = fs::read_to_string(m.path()).unwrap();
        fs::write(m.path(), &text[..text.len() - 25]).unwrap();
        let loaded = m.load().unwrap();
        assert_eq!(loaded.entries, sealed[..1]);
        assert!(loaded.recovered_torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_validated_returns_the_chain_tip() {
        let dir = temp_dir();
        let m = GenerationManifest::at(&dir);
        let (loaded, tip) = m.load_validated().unwrap();
        assert!(loaded.entries.is_empty());
        assert_eq!(tip, GENESIS);
        let sealed = seal(&m, 3);
        let (loaded, tip) = m.load_validated().unwrap();
        assert_eq!(loaded.entries.len(), 3);
        assert_eq!(tip, sealed[2].chain_hash());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_validated_rejects_a_tampered_prefix() {
        let dir = temp_dir();
        let m = GenerationManifest::at(&dir);
        let mut sealed = seal(&m, 3);
        sealed[1].records_kept = 999; // tamper, then rewrite the file
        m.rewrite(&sealed).unwrap();
        let err = m.load_validated().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("hash chain"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_truncates_to_prefix_and_manifest_bytes_are_deterministic() {
        let dir_a = temp_dir();
        let dir_b = temp_dir();
        let ma = GenerationManifest::at(&dir_a);
        let mb = GenerationManifest::at(&dir_b);
        let sealed = seal(&ma, 3);
        seal(&mb, 3);
        ma.rewrite(&sealed[..2]).unwrap();
        mb.rewrite(&sealed[..2]).unwrap();
        assert_eq!(
            fs::read(ma.path()).unwrap(),
            fs::read(mb.path()).unwrap(),
            "resumed and uninterrupted manifests are byte-identical"
        );
        assert_eq!(ma.load().unwrap().entries, sealed[..2]);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn write_delta_creates_parents_and_verifies() {
        let dir = temp_dir();
        let path = dir.join("gens/gen-00000/clean.delta.json");
        let rec = write_delta(&path, b"{\"x\":1}").unwrap();
        assert_eq!(rec.bytes, 7);
        let bytes = rec.read_verified(&dir.join("gens/gen-00000")).unwrap();
        assert_eq!(bytes, b"{\"x\":1}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
