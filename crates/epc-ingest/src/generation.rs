//! The generation grammar: what one sealed micro-batch records.

use epc_journal::{hash_hex, ArtifactRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Directory (relative to the run dir) holding sealed generation deltas.
pub const GENS_DIR: &str = "gens";

/// Directory (relative to the run dir) holding the cumulative artifacts —
/// a durable run directory equivalent to a one-shot run over every sealed
/// batch concatenated.
pub const CURRENT_DIR: &str = "current";

/// The chain-hash sentinel of the first generation (no parent).
pub const GENESIS: &str = "genesis";

/// How a generation's batch ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenerationOutcome {
    /// Every stage produced its product; the batch is fully folded in.
    Complete,
    /// A degradable stage was skipped (supervisor policy); cumulative
    /// artifacts cover what could be computed.
    Degraded,
    /// The batch was poisoned (nothing survived quarantine): its records
    /// contribute nothing, sealed generations and `current/` are
    /// untouched, and the entry only records the abandonment.
    Abandoned,
}

impl GenerationOutcome {
    /// The CLI exit code for a run whose *worst* generation had this
    /// outcome (mirrors `RunOutcome`: 0 complete, 3 degraded, 1 failed).
    pub fn exit_code(&self) -> u8 {
        match self {
            GenerationOutcome::Complete => 0,
            GenerationOutcome::Degraded => 3,
            GenerationOutcome::Abandoned => 1,
        }
    }

    /// Stable lowercase label (`complete` / `degraded` / `abandoned`).
    pub fn as_str(&self) -> &'static str {
        match self {
            GenerationOutcome::Complete => "complete",
            GenerationOutcome::Degraded => "degraded",
            GenerationOutcome::Abandoned => "abandoned",
        }
    }
}

/// The directory name of generation `seq` (`gen-00042`).
pub fn gen_dir_name(seq: usize) -> String {
    format!("gen-{seq:05}")
}

/// The directory of generation `seq`, relative to the run dir
/// (`gens/gen-00042`).
pub fn gen_dir(seq: usize) -> PathBuf {
    PathBuf::from(GENS_DIR).join(gen_dir_name(seq))
}

/// One sealed generation: everything a resuming ingest needs to decide
/// whether the batch can be skipped, to fold its deltas, and to prove the
/// sealed prefix is exactly what was committed.
///
/// Like `epc-journal`'s `StageEntry`, an entry is a pure function of the
/// run's inputs and configuration — no timestamps, no host names — so the
/// manifest of a resumed ingest is byte-identical to one that never
/// crashed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationEntry {
    /// Zero-based position in the batch sequence.
    pub seq: usize,
    /// Batch label (the input file's name, not its path).
    pub batch: String,
    /// Hash of the batch's input records (CSV bytes of the parsed batch).
    pub batch_hash: String,
    /// Fingerprint of the effective configuration and stakeholder; a
    /// mismatch invalidates the whole sealed prefix.
    pub config_fingerprint: String,
    /// Hash over the *cumulative* input (all batches up to and including
    /// this one) — what a one-shot run over the concatenation would see.
    pub cumulative_input_hash: String,
    /// Chain hash of the parent entry ([`GENESIS`] for `seq` 0). Forms a
    /// hash chain over the manifest, so a tampered or mixed-up prefix is
    /// detected before its deltas are folded.
    pub parent: String,
    /// How the batch ended up.
    pub outcome: GenerationOutcome,
    /// Degradation/abandonment reasons (deterministic order).
    pub reasons: Vec<String>,
    /// Recompute mode that sealed this generation (`exact` or `warm`).
    pub recompute: String,
    /// Records entering the batch (pre-validation).
    pub records_in: usize,
    /// Records from this batch surviving cleaning + outlier removal.
    pub records_kept: usize,
    /// Records this batch quarantined.
    pub quarantined: usize,
    /// Fault histogram of the quarantined records.
    pub faults: BTreeMap<String, usize>,
    /// Cumulative artifacts rewritten for this generation.
    pub artifacts_written: usize,
    /// Cumulative artifacts byte-identical to the previous generation and
    /// carried without rewriting.
    pub artifacts_carried: usize,
    /// Checkpoint files sealing this generation's delta state,
    /// hash-validated on resume. Paths are relative to the run directory.
    pub checkpoints: Vec<ArtifactRecord>,
    /// The full cumulative artifact set under `current/` as of this
    /// generation (paths relative to `current/`). The next generation's
    /// `artifacts_written` / `artifacts_carried` counters are computed
    /// against *this recorded list*, never against the disk state, so a
    /// crashed-and-resumed manifest stays byte-identical to an
    /// uninterrupted one.
    pub current: Vec<ArtifactRecord>,
}

impl GenerationEntry {
    /// The chain hash of this entry: SHA-256 over its serialized JSON
    /// (which includes `parent`, so the hash covers the whole prefix).
    pub fn chain_hash(&self) -> String {
        // Serialization of a plain struct cannot fail; fall back to a
        // sentinel that can never equal a real hex digest.
        match serde_json::to_string(self) {
            Ok(json) => hash_hex(json.as_bytes()),
            Err(_) => "unserializable".to_owned(),
        }
    }

    /// This generation's delta directory, relative to the run dir.
    pub fn dir(&self) -> PathBuf {
        gen_dir(self.seq)
    }
}

/// Validates that `entries` form a well-formed sealed prefix: contiguous
/// `seq` from 0, a consistent config fingerprint, and an intact parent
/// hash chain. Returns the chain hash of the last entry ([`GENESIS`] when
/// empty), i.e. the `parent` the next generation must record.
pub fn validate_chain(entries: &[GenerationEntry]) -> Result<String, String> {
    let mut parent = GENESIS.to_owned();
    for (i, entry) in entries.iter().enumerate() {
        if entry.seq != i {
            return Err(format!(
                "generation manifest out of order: entry {i} has seq {}",
                entry.seq
            ));
        }
        if entry.parent != parent {
            return Err(format!(
                "generation {} breaks the hash chain: parent {} != expected {}",
                entry.seq, entry.parent, parent
            ));
        }
        if i > 0 && entry.config_fingerprint != entries[0].config_fingerprint {
            return Err(format!(
                "generation {} was sealed under a different configuration",
                entry.seq
            ));
        }
        parent = entry.chain_hash();
    }
    Ok(parent)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn entry(seq: usize, parent: &str) -> GenerationEntry {
        GenerationEntry {
            seq,
            batch: format!("batch-{seq}.csv"),
            batch_hash: format!("bh{seq}"),
            config_fingerprint: "cfg".into(),
            cumulative_input_hash: format!("cum{seq}"),
            parent: parent.to_owned(),
            outcome: GenerationOutcome::Complete,
            reasons: Vec::new(),
            recompute: "exact".into(),
            records_in: 100,
            records_kept: 95,
            quarantined: 5,
            faults: BTreeMap::from([("non_finite".to_owned(), 5usize)]),
            artifacts_written: 3,
            artifacts_carried: 1,
            checkpoints: vec![ArtifactRecord {
                file: format!("gens/gen-{seq:05}/clean.delta.json"),
                sha256: "00".into(),
                bytes: 2,
            }],
            current: vec![ArtifactRecord {
                file: "dashboard.html".into(),
                sha256: "11".into(),
                bytes: 4,
            }],
        }
    }

    /// A well-formed chain: each entry's parent is the previous chain hash.
    fn chain(n: usize) -> Vec<GenerationEntry> {
        let mut entries: Vec<GenerationEntry> = Vec::new();
        let mut parent = GENESIS.to_owned();
        for seq in 0..n {
            let e = entry(seq, &parent);
            parent = e.chain_hash();
            entries.push(e);
        }
        entries
    }

    #[test]
    fn outcome_exit_codes_match_run_outcome_policy() {
        assert_eq!(GenerationOutcome::Complete.exit_code(), 0);
        assert_eq!(GenerationOutcome::Degraded.exit_code(), 3);
        assert_eq!(GenerationOutcome::Abandoned.exit_code(), 1);
        assert_eq!(GenerationOutcome::Abandoned.as_str(), "abandoned");
    }

    #[test]
    fn gen_dir_is_zero_padded_and_sortable() {
        assert_eq!(gen_dir_name(0), "gen-00000");
        assert_eq!(gen_dir_name(42), "gen-00042");
        assert_eq!(gen_dir(7), PathBuf::from("gens/gen-00007"));
        let mut names: Vec<String> = [3usize, 11, 0, 100]
            .iter()
            .map(|&s| gen_dir_name(s))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec!["gen-00000", "gen-00003", "gen-00011", "gen-00100"]
        );
    }

    #[test]
    fn chain_hash_is_deterministic_and_parent_sensitive() {
        let a = entry(0, GENESIS);
        let b = entry(0, GENESIS);
        assert_eq!(a.chain_hash(), b.chain_hash());
        let c = entry(0, "different-parent");
        assert_ne!(a.chain_hash(), c.chain_hash());
        let mut d = entry(0, GENESIS);
        d.records_kept += 1;
        assert_ne!(a.chain_hash(), d.chain_hash(), "hash covers the payload");
    }

    #[test]
    fn validate_chain_accepts_well_formed_prefixes() {
        for n in 0..4 {
            let entries = chain(n);
            let tip = validate_chain(&entries).unwrap();
            if n == 0 {
                assert_eq!(tip, GENESIS);
            } else {
                assert_eq!(tip, entries.last().unwrap().chain_hash());
            }
        }
    }

    #[test]
    fn validate_chain_rejects_tampering() {
        // Broken seq.
        let mut entries = chain(3);
        entries[1].seq = 5;
        assert!(validate_chain(&entries)
            .unwrap_err()
            .contains("out of order"));

        // Tampered payload: entry 1's recorded chain no longer matches
        // entry 2's parent.
        let mut entries = chain(3);
        entries[1].records_kept = 9999;
        assert!(validate_chain(&entries)
            .unwrap_err()
            .contains("breaks the hash chain"));

        // Config drift.
        let mut entries = chain(3);
        // Rebuild the chain with a divergent fingerprint so the hashes
        // line up but the fingerprint check still fires.
        entries[2].config_fingerprint = "other".into();
        let parent = entries[1].chain_hash();
        entries[2].parent = parent;
        assert!(validate_chain(&entries)
            .unwrap_err()
            .contains("different configuration"));
    }

    #[test]
    fn entry_round_trips_through_json() {
        let entries = chain(2);
        for e in &entries {
            let json = serde_json::to_string(e).unwrap();
            let back: GenerationEntry = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e);
        }
    }
}
