//! DBSCAN (Ester et al. 1996) — INDICE's multivariate outlier detector
//! (§2.1.2): points that no dense cluster reaches are labelled noise and
//! removed before analytics.

use crate::matrix::{euclidean, Matrix};
use std::collections::VecDeque;

/// Per-point DBSCAN label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbscanLabel {
    /// Noise: a multivariate outlier in INDICE's pipeline.
    Noise,
    /// Member of the cluster with this id (0-based).
    Cluster(usize),
}

impl DbscanLabel {
    /// `true` for [`DbscanLabel::Noise`].
    pub fn is_noise(&self) -> bool {
        matches!(self, DbscanLabel::Noise)
    }
}

/// DBSCAN parameters (the paper estimates them from the k-distance graph —
/// see [`crate::kdistance`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanConfig {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_points: usize,
}

/// Result of a DBSCAN run.
#[derive(Debug, Clone, PartialEq)]
pub struct DbscanResult {
    /// Per-point labels.
    pub labels: Vec<DbscanLabel>,
    /// Number of clusters found.
    pub n_clusters: usize,
    /// ε-neighbourhood scans performed (one per point — observability).
    pub region_queries: usize,
    /// Total neighbour links found across all region queries (self links
    /// included); `links / queries` is the mean neighbourhood size.
    pub neighbour_links: usize,
}

impl DbscanResult {
    /// Indices labelled noise (the multivariate outliers), ascending.
    pub fn noise_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_noise())
            .map(|(i, _)| i)
            .collect()
    }

    /// Sizes of the clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters];
        for l in &self.labels {
            if let DbscanLabel::Cluster(c) = l {
                sizes[*c] += 1;
            }
        }
        sizes
    }
}

/// Runs DBSCAN over the rows of `data`.
///
/// Classic region-query formulation: a point is *core* when at least
/// `min_points` points (itself included) lie within `eps`; clusters grow by
/// density reachability from core points; border points join the first
/// cluster that reaches them; everything else is noise.
pub fn dbscan(data: &Matrix, config: &DbscanConfig) -> DbscanResult {
    dbscan_with_runtime(data, config, &epc_runtime::RuntimeConfig::sequential())
}

/// [`dbscan`] with an explicit execution runtime.
///
/// The ε-neighbourhood region queries — the O(n²) bulk of the algorithm,
/// and the sequential version issues one per point anyway — are
/// precomputed data-parallel; the density-reachability expansion then
/// walks the precomputed lists in the exact order of the sequential
/// algorithm, so labels and cluster ids are identical for any thread
/// budget.
pub fn dbscan_with_runtime(
    data: &Matrix,
    config: &DbscanConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> DbscanResult {
    let n = data.n_rows();
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;

    let points: Vec<usize> = (0..n).collect();
    let neighbours: Vec<Vec<usize>> =
        epc_runtime::par_map(runtime, &points, |&p| region_query(data, p, config.eps));
    let neighbour_links = neighbours.iter().map(Vec::len).sum();

    let mut label = vec![UNVISITED; n];
    let mut n_clusters = 0usize;

    for p in 0..n {
        if label[p] != UNVISITED {
            continue;
        }
        if neighbours[p].len() < config.min_points {
            label[p] = NOISE;
            continue;
        }
        // Start a new cluster and expand it.
        let cluster = n_clusters;
        n_clusters += 1;
        label[p] = cluster;
        let mut queue: VecDeque<usize> = neighbours[p].iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            if label[q] == NOISE {
                label[q] = cluster; // noise becomes a border point
                continue;
            }
            if label[q] != UNVISITED {
                continue;
            }
            label[q] = cluster;
            if neighbours[q].len() >= config.min_points {
                queue.extend(neighbours[q].iter().copied());
            }
        }
    }

    let labels = label
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                DbscanLabel::Noise
            } else {
                DbscanLabel::Cluster(l)
            }
        })
        .collect();
    DbscanResult {
        labels,
        n_clusters,
        region_queries: n,
        neighbour_links,
    }
}

/// Indices within `eps` of point `p` (including `p` itself).
fn region_query(data: &Matrix, p: usize, eps: f64) -> Vec<usize> {
    let row = data.row(p);
    (0..data.n_rows())
        .filter(|&q| euclidean(row, data.row(q)) <= eps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense blobs plus isolated far-away points.
    fn blobs_with_noise() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        for i in 0..40 {
            let dx = ((i * 13) % 20) as f64 / 40.0;
            let dy = ((i * 7) % 20) as f64 / 40.0;
            rows.push(vec![0.0 + dx, 0.0 + dy]);
        }
        for i in 0..40 {
            let dx = ((i * 11) % 20) as f64 / 40.0;
            let dy = ((i * 19) % 20) as f64 / 40.0;
            rows.push(vec![10.0 + dx, 10.0 + dy]);
        }
        let noise_idx = vec![80, 81, 82];
        rows.push(vec![50.0, 50.0]);
        rows.push(vec![-50.0, 30.0]);
        rows.push(vec![30.0, -60.0]);
        (Matrix::from_rows(&rows), noise_idx)
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let (data, noise_idx) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 1.0,
                min_points: 4,
            },
        );
        assert_eq!(res.n_clusters, 2);
        assert_eq!(res.noise_indices(), noise_idx);
        assert_eq!(res.cluster_sizes(), vec![40, 40]);
    }

    #[test]
    fn same_blob_same_cluster() {
        let (data, _) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 1.0,
                min_points: 4,
            },
        );
        let first = res.labels[0];
        for i in 0..40 {
            assert_eq!(res.labels[i], first);
        }
        assert_ne!(res.labels[40], first, "blobs must be distinct clusters");
    }

    #[test]
    fn tiny_eps_makes_everything_noise() {
        let (data, _) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 1e-9,
                min_points: 4,
            },
        );
        assert_eq!(res.n_clusters, 0);
        assert_eq!(res.noise_indices().len(), data.n_rows());
    }

    #[test]
    fn huge_eps_makes_one_cluster() {
        let (data, _) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 1e6,
                min_points: 4,
            },
        );
        assert_eq!(res.n_clusters, 1);
        assert!(res.noise_indices().is_empty());
    }

    #[test]
    fn min_points_one_clusters_every_point() {
        // Every point is its own core; no noise possible.
        let (data, _) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 0.5,
                min_points: 1,
            },
        );
        assert!(res.noise_indices().is_empty());
        assert!(res.n_clusters >= 2);
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core line plus one border point reachable from the core
        // but itself not core.
        let mut rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        rows.push(vec![1.3, 0.0]); // within eps of the last core point only
        let data = Matrix::from_rows(&rows);
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 0.45,
                min_points: 4,
            },
        );
        assert_eq!(res.n_clusters, 1);
        assert!(
            !res.labels[10].is_noise(),
            "border point must belong to the cluster"
        );
    }

    #[test]
    fn empty_input() {
        let res = dbscan(
            &Matrix::zeros(0, 2),
            &DbscanConfig {
                eps: 1.0,
                min_points: 3,
            },
        );
        assert_eq!(res.n_clusters, 0);
        assert!(res.labels.is_empty());
    }

    #[test]
    fn scan_stats_are_recorded() {
        let (data, _) = blobs_with_noise();
        let res = dbscan(
            &data,
            &DbscanConfig {
                eps: 1.0,
                min_points: 4,
            },
        );
        assert_eq!(res.region_queries, data.n_rows());
        // Every point is within eps of itself, and neighbourhood
        // membership is symmetric, so links ≥ n and links is even-summed
        // consistently across thread budgets (checked by the equality
        // assertions in `parallel_run_matches_sequential`).
        assert!(res.neighbour_links >= data.n_rows());
    }

    #[test]
    fn deterministic() {
        let (data, _) = blobs_with_noise();
        let cfg = DbscanConfig {
            eps: 1.0,
            min_points: 4,
        };
        assert_eq!(dbscan(&data, &cfg), dbscan(&data, &cfg));
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let (data, _) = blobs_with_noise();
        let cfg = DbscanConfig {
            eps: 1.0,
            min_points: 4,
        };
        let seq = dbscan(&data, &cfg);
        for threads in [2usize, 8] {
            let par = dbscan_with_runtime(&data, &cfg, &epc_runtime::RuntimeConfig::new(threads));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }
}
