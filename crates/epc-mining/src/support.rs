//! Mergeable per-region support counts for incremental rule mining.
//!
//! Association-rule support is a pure frequency: `support(X) = count(X) /
//! n_transactions`. Counts over disjoint record batches are exactly
//! additive, so a [`SupportLedger`] accumulated per sealed generation can
//! be merged with earlier generations' ledgers in any order and reproduce
//! the counts a one-shot pass over the concatenated data would produce —
//! **provided the item labels are data-independent** (the footnote-4 fixed
//! discretization bins, not CART splits re-estimated on each batch).
//!
//! Everything is keyed by item *name* (`"u_windows=High"`), not dictionary
//! id: interning order differs between a chunked and a one-shot run, and
//! names are the representation-stable identity.

use crate::apriori::TransactionSet;
use std::collections::BTreeMap;

/// Support counts for one region: transaction total plus per-item counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionSupport {
    /// Number of transactions observed for the region.
    pub transactions: u64,
    /// Occurrences per item name (each transaction counts an item once).
    pub items: BTreeMap<String, u64>,
}

impl RegionSupport {
    /// Relative support of `item` (0 when no transactions were seen).
    pub fn support(&self, item: &str) -> f64 {
        if self.transactions == 0 {
            return 0.0;
        }
        *self.items.get(item).unwrap_or(&0) as f64 / self.transactions as f64
    }
}

/// Per-region item-support counts, exactly additive across batches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupportLedger {
    regions: BTreeMap<String, RegionSupport>,
}

impl SupportLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SupportLedger::default()
    }

    /// Records one transaction of item names under `region`. Duplicate
    /// items within a transaction collapse (set semantics, matching
    /// [`TransactionSet::push`]).
    pub fn record(&mut self, region: &str, items: &[&str]) {
        let entry = self.regions.entry(region.to_owned()).or_default();
        entry.transactions += 1;
        let mut seen: Vec<&str> = items.to_vec();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *entry.items.entry(item.to_owned()).or_insert(0) += 1;
        }
    }

    /// Records every transaction of `set` under `region`, resolving item
    /// ids back to names through the set's own dictionary.
    pub fn record_transactions(&mut self, region: &str, set: &TransactionSet) {
        for t in set.transactions() {
            let names: Vec<&str> = t.iter().filter_map(|&id| set.dict.name(id)).collect();
            self.record(region, &names);
        }
    }

    /// Builds a ledger from one region's transaction set.
    pub fn from_transactions(region: &str, set: &TransactionSet) -> Self {
        let mut ledger = SupportLedger::new();
        ledger.record_transactions(region, set);
        ledger
    }

    /// Adds `other`'s counts into `self`. Addition is commutative and
    /// associative, so merging sealed generations in any order yields the
    /// same ledger.
    pub fn merge(&mut self, other: &SupportLedger) {
        for (region, rs) in &other.regions {
            let entry = self.regions.entry(region.clone()).or_default();
            entry.transactions += rs.transactions;
            for (item, count) in &rs.items {
                *entry.items.entry(item.clone()).or_insert(0) += count;
            }
        }
    }

    /// The per-region counts, ordered by region name.
    pub fn regions(&self) -> &BTreeMap<String, RegionSupport> {
        &self.regions
    }

    /// Counts for one region, if any transactions were recorded.
    pub fn region(&self, region: &str) -> Option<&RegionSupport> {
        self.regions.get(region)
    }

    /// Total transactions across all regions.
    pub fn total_transactions(&self) -> u64 {
        self.regions.values().map(|r| r.transactions).sum()
    }

    /// `true` when no transactions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_transactions() -> Vec<(&'static str, Vec<&'static str>)> {
        vec![
            ("north", vec!["heat=High", "win=Low"]),
            ("north", vec!["heat=High", "win=High"]),
            ("north", vec!["heat=Low"]),
            ("south", vec!["heat=High", "win=Low", "heat=High"]), // dup collapses
            ("south", vec!["win=Low"]),
        ]
    }

    fn ledger_of(rows: &[(&str, Vec<&str>)]) -> SupportLedger {
        let mut l = SupportLedger::new();
        for (region, items) in rows {
            l.record(region, items);
        }
        l
    }

    #[test]
    fn counts_and_supports_are_per_region() {
        let l = ledger_of(&sample_transactions());
        let north = l.region("north").unwrap();
        assert_eq!(north.transactions, 3);
        assert_eq!(north.items["heat=High"], 2);
        assert!((north.support("heat=High") - 2.0 / 3.0).abs() < 1e-15);
        let south = l.region("south").unwrap();
        assert_eq!(south.transactions, 2);
        assert_eq!(south.items["heat=High"], 1, "duplicates collapse");
        assert_eq!(south.support("missing"), 0.0);
        assert_eq!(l.total_transactions(), 5);
    }

    #[test]
    fn chunked_merge_equals_one_shot() {
        let rows = sample_transactions();
        let one = ledger_of(&rows);
        for split in 1..rows.len() {
            let mut merged = ledger_of(&rows[..split]);
            merged.merge(&ledger_of(&rows[split..]));
            assert_eq!(merged, one, "split at {split}");
        }
    }

    #[test]
    fn merge_is_order_invariant() {
        let rows = sample_transactions();
        let parts: Vec<SupportLedger> = rows.chunks(2).map(ledger_of).collect();
        let fold = |order: &[usize]| {
            let mut acc = SupportLedger::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let baseline = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), baseline, "order {order:?}");
        }
        assert_eq!(baseline, ledger_of(&rows));
    }

    #[test]
    fn merging_empty_is_identity() {
        let l = ledger_of(&sample_transactions());
        let mut with_empty = l.clone();
        with_empty.merge(&SupportLedger::new());
        assert_eq!(with_empty, l);
        let mut from_empty = SupportLedger::new();
        from_empty.merge(&l);
        assert_eq!(from_empty, l);
        assert!(SupportLedger::new().is_empty());
    }

    #[test]
    fn from_transactions_matches_apriori_item_counts() {
        let mut set = TransactionSet::new();
        set.push(&["a=1", "b=2"]);
        set.push(&["a=1"]);
        set.push(&["b=2", "c=3"]);
        let ledger = SupportLedger::from_transactions("r", &set);
        let r = ledger.region("r").unwrap();
        assert_eq!(r.transactions, 3);
        assert_eq!(r.items["a=1"], 2);
        assert_eq!(r.items["b=2"], 2);
        assert_eq!(r.items["c=3"], 1);
        // Interning order does not matter: a set built in a different
        // insertion order produces the identical ledger.
        let mut reordered = TransactionSet::new();
        reordered.push(&["b=2", "c=3"]);
        reordered.push(&["a=1"]);
        reordered.push(&["b=2", "a=1"]);
        let mut again = SupportLedger::from_transactions("r", &reordered);
        assert_eq!(again.region("r").unwrap().items, r.items);
        again.merge(&ledger);
        assert_eq!(again.region("r").unwrap().transactions, 6);
    }
}
