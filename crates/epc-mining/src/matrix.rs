//! A dense row-major feature matrix (points × features) with the Euclidean
//! metric the paper's clustering uses ("to measure the similarity between
//! EPCs, the Euclidean distance is computed", §2.2.2).

/// Dense row-major matrix of `f64` features.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    n_rows: usize,
    n_cols: usize,
}

impl Matrix {
    /// Builds a matrix from row-major data; `data.len()` must equal
    /// `n_rows * n_cols`.
    pub fn from_vec(data: Vec<f64>, n_rows: usize, n_cols: usize) -> Self {
        assert_eq!(
            data.len(),
            n_rows * n_cols,
            "matrix data length must be rows × cols"
        );
        Matrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// Builds a matrix from a slice of rows (all rows must share a length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            n_rows,
            n_cols,
        }
    }

    /// An all-zero matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Matrix {
            data: vec![0.0; n_rows * n_cols],
            n_rows,
            n_cols,
        }
    }

    /// Number of rows (points).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (features).
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_cols + j]
    }

    /// Sets element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n_cols + j] = v;
    }

    /// Column `j` as an owned vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.n_rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterates rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_cols.max(1))
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Squared Euclidean distance between two equally sized slices.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equally sized slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_index() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rows × cols")]
    fn bad_length_panics() {
        let _ = Matrix::from_vec(vec![1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mutation() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 7.0);
    }

    #[test]
    fn rows_iterator() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let rows: Vec<&[f64]> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::zeros(0, 3);
        assert!(m.is_empty());
        assert_eq!(m.rows().count(), 0);
    }
}
