//! Silhouette coefficient — a cluster-cohesion quality index complementing
//! the paper's SSE: useful to validate the elbow-chosen K and to compare
//! K-means with the hierarchical alternative of the future-work section.

use crate::matrix::{euclidean, Matrix};

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// `s(i) = (b(i) − a(i)) / max(a(i), b(i))` with `a` the mean intra-cluster
/// distance and `b` the mean distance to the nearest other cluster.
/// Singleton clusters contribute `s = 0` (the scikit-learn convention).
/// Returns `None` when fewer than 2 clusters are populated or labels don't
/// match the matrix.
pub fn silhouette_score(data: &Matrix, labels: &[usize]) -> Option<f64> {
    let n = data.n_rows();
    if n == 0 || labels.len() != n {
        return None;
    }
    let k = labels.iter().copied().max()? + 1;
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return None;
    }

    let mut total = 0.0;
    for i in 0..n {
        // Mean distance from i to each cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += euclidean(data.row(i), data.row(j));
            }
        }
        let own = labels[i];
        if sizes[own] <= 1 {
            continue; // silhouette of a singleton is 0
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(sep: f64) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, (cx, cy)) in [(0.0, 0.0), (sep, 0.0)].iter().enumerate() {
            for i in 0..15 {
                rows.push(vec![
                    cx + ((i * 13) % 10) as f64 / 10.0,
                    cy + ((i * 7) % 10) as f64 / 10.0,
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (m, labels) = blobs(20.0);
        let s = silhouette_score(&m, &labels).unwrap();
        assert!(s > 0.9, "got {s}");
    }

    #[test]
    fn overlapping_blobs_score_low() {
        let (m, labels) = blobs(0.5);
        let s = silhouette_score(&m, &labels).unwrap();
        assert!(s < 0.4, "got {s}");
    }

    #[test]
    fn separation_increases_score_monotonically() {
        let mut prev = -1.0;
        for sep in [1.0, 3.0, 8.0, 20.0] {
            let (m, labels) = blobs(sep);
            let s = silhouette_score(&m, &labels).unwrap();
            assert!(s >= prev, "sep {sep}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn shuffled_labels_score_much_worse() {
        let (m, labels) = blobs(20.0);
        // Alternate assignments regardless of geometry: each "cluster"
        // straddles both blobs — a terrible fit.
        let wrong: Vec<usize> = (0..labels.len()).map(|i| i % 2).collect();
        let s = silhouette_score(&m, &wrong).unwrap();
        let good = silhouette_score(&m, &labels).unwrap();
        assert!(s < 0.1, "mixed labels should score near zero, got {s}");
        assert!(good > s + 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        let (m, labels) = blobs(5.0);
        assert_eq!(silhouette_score(&m, &labels[..10]), None, "length mismatch");
        let one_cluster = vec![0usize; m.n_rows()];
        assert_eq!(silhouette_score(&m, &one_cluster), None);
        assert_eq!(silhouette_score(&Matrix::zeros(0, 2), &[]), None);
    }

    #[test]
    fn singletons_are_neutral() {
        let m = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]);
        let labels = vec![0, 0, 1]; // cluster 1 is a singleton
        let s = silhouette_score(&m, &labels).unwrap();
        // Two points contribute ~1, the singleton 0 → mean ≈ 2/3.
        assert!(s > 0.6 && s < 0.7, "got {s}");
    }
}
