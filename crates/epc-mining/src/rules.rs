//! Association-rule generation with the four quality indices of §2.2.2:
//! support, confidence, lift, and conviction.
//!
//! "To select only a subset of interesting rules, constraints on various
//! goodness measures are used … Default thresholds are set by INDICE
//! however the end-user could change the default values."

use crate::apriori::{Apriori, AprioriTrace, FrequentItemset, ItemDictionary, TransactionSet};
use std::collections::BTreeMap;

/// An association rule `A → B` with its quality indices.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Antecedent item names, sorted.
    pub antecedent: Vec<String>,
    /// Consequent item names, sorted.
    pub consequent: Vec<String>,
    /// Relative support of `A ∪ B`.
    pub support: f64,
    /// Confidence `P(B | A)`.
    pub confidence: f64,
    /// Lift `confidence / P(B)` (1 = independence).
    pub lift: f64,
    /// Conviction `(1 − P(B)) / (1 − confidence)`;
    /// `f64::INFINITY` for exact rules (confidence 1).
    pub conviction: f64,
}

impl AssociationRule {
    /// Renders the rule in the `A → B` notation used by the dashboards.
    pub fn display(&self) -> String {
        format!(
            "{} => {}",
            self.antecedent.join(" & "),
            self.consequent.join(" & ")
        )
    }
}

/// Thresholds on the rule quality indices (INDICE's defaults; every value
/// can be overridden by the end user).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleConfig {
    /// Minimum relative support of the rule (and of the itemsets mined).
    pub min_support: f64,
    /// Minimum confidence.
    pub min_confidence: f64,
    /// Minimum lift (1.0 keeps only positively correlated rules).
    pub min_lift: f64,
    /// Maximum antecedent + consequent size.
    pub max_len: usize,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            min_support: 0.05,
            min_confidence: 0.6,
            min_lift: 1.0,
            max_len: 4,
        }
    }
}

/// Mines association rules from a transaction set: Apriori for frequent
/// itemsets, then rule generation over every non-trivial split of each
/// itemset, filtered by the thresholds in `config` and sorted by lift
/// (descending), then confidence, then support.
pub fn mine_rules(data: &TransactionSet, config: &RuleConfig) -> Vec<AssociationRule> {
    mine_rules_with_runtime(data, config, &epc_runtime::RuntimeConfig::sequential())
}

/// [`mine_rules`] with an explicit execution runtime (forwarded to the
/// Apriori support-counting pass; rule generation itself is cheap and runs
/// sequentially).
pub fn mine_rules_with_runtime(
    data: &TransactionSet,
    config: &RuleConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Vec<AssociationRule> {
    mine_rules_traced_with_runtime(data, config, runtime).0
}

/// [`mine_rules_with_runtime`], additionally returning the Apriori
/// per-level [`AprioriTrace`] for observability. The rules are exactly
/// what the untraced call produces.
pub fn mine_rules_traced_with_runtime(
    data: &TransactionSet,
    config: &RuleConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> (Vec<AssociationRule>, AprioriTrace) {
    let (frequent, trace) = Apriori {
        min_support: config.min_support,
        max_len: config.max_len,
    }
    .mine_traced_with_runtime(data, runtime);
    let rules = rules_from_frequent(&frequent, &data.dict, data.len(), config);
    (rules, trace)
}

/// Generates rules from pre-mined frequent itemsets.
pub fn rules_from_frequent(
    frequent: &[FrequentItemset],
    dict: &ItemDictionary,
    n_transactions: usize,
    config: &RuleConfig,
) -> Vec<AssociationRule> {
    if n_transactions == 0 {
        return Vec::new();
    }
    let counts: BTreeMap<&[u32], usize> = frequent
        .iter()
        .map(|f| (f.items.as_slice(), f.count))
        .collect();
    let n = n_transactions as f64;
    let mut rules = Vec::new();

    for f in frequent.iter().filter(|f| f.items.len() >= 2) {
        let whole = f.count as f64;
        // Every non-empty proper subset as antecedent.
        let k = f.items.len();
        for mask in 1..((1u32 << k) - 1) {
            let mut ante = Vec::new();
            let mut cons = Vec::new();
            for (j, &item) in f.items.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    ante.push(item);
                } else {
                    cons.push(item);
                }
            }
            let Some(&ante_count) = counts.get(ante.as_slice()) else {
                continue; // subset of a frequent set is frequent; defensive
            };
            let Some(&cons_count) = counts.get(cons.as_slice()) else {
                continue;
            };
            let support = whole / n;
            let confidence = whole / ante_count as f64;
            let p_cons = cons_count as f64 / n;
            let lift = confidence / p_cons;
            let conviction = if confidence >= 1.0 {
                f64::INFINITY
            } else {
                (1.0 - p_cons) / (1.0 - confidence)
            };
            if confidence >= config.min_confidence && lift >= config.min_lift {
                rules.push(AssociationRule {
                    antecedent: dict.resolve(&ante),
                    consequent: dict.resolve(&cons),
                    support,
                    confidence,
                    lift,
                    conviction,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.lift
            .partial_cmp(&a.lift)
            .unwrap()
            .then(b.confidence.partial_cmp(&a.confidence).unwrap())
            .then(b.support.partial_cmp(&a.support).unwrap())
            .then(a.antecedent.cmp(&b.antecedent))
    });
    rules
}

/// Keeps the `k` best rules (the "top-k rules that satisfy all constraints"
/// displayed in the tabular visualization of §2.3).
pub fn top_k(rules: &[AssociationRule], k: usize) -> Vec<AssociationRule> {
    rules.iter().take(k).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> TransactionSet {
        let mut t = TransactionSet::new();
        t.push(&["bread", "milk"]);
        t.push(&["bread", "diapers", "beer", "eggs"]);
        t.push(&["milk", "diapers", "beer", "cola"]);
        t.push(&["bread", "milk", "diapers", "beer"]);
        t.push(&["bread", "milk", "diapers", "cola"]);
        t
    }

    fn get<'a>(
        rules: &'a [AssociationRule],
        ante: &[&str],
        cons: &[&str],
    ) -> Option<&'a AssociationRule> {
        rules.iter().find(|r| {
            r.antecedent.iter().map(String::as_str).collect::<Vec<_>>() == ante
                && r.consequent.iter().map(String::as_str).collect::<Vec<_>>() == cons
        })
    }

    #[test]
    fn beer_to_diapers_textbook_rule() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.4,
                min_confidence: 0.8,
                min_lift: 0.0,
                max_len: 2,
            },
        );
        let r = get(&rules, &["beer"], &["diapers"]).expect("rule must exist");
        // supp({beer, diapers}) = 3/5; conf = 3/3 = 1; lift = 1 / (4/5) = 1.25
        assert!((r.support - 0.6).abs() < 1e-12);
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!((r.lift - 1.25).abs() < 1e-12);
        assert_eq!(
            r.conviction,
            f64::INFINITY,
            "exact rule has infinite conviction"
        );
    }

    #[test]
    fn diapers_to_beer_has_lower_confidence() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.4,
                min_confidence: 0.5,
                min_lift: 0.0,
                max_len: 2,
            },
        );
        let r = get(&rules, &["diapers"], &["beer"]).unwrap();
        // conf = 3/4 = 0.75; lift = 0.75 / 0.6 = 1.25;
        // conviction = (1 − 0.6)/(1 − 0.75) = 1.6
        assert!((r.confidence - 0.75).abs() < 1e-12);
        assert!((r.lift - 1.25).abs() < 1e-12);
        assert!((r.conviction - 1.6).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        let strict = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.4,
                min_confidence: 0.9,
                min_lift: 0.0,
                max_len: 2,
            },
        );
        assert!(get(&strict, &["diapers"], &["beer"]).is_none());
        assert!(get(&strict, &["beer"], &["diapers"]).is_some());
    }

    #[test]
    fn lift_threshold_removes_negative_correlations() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.2,
                min_confidence: 0.0,
                min_lift: 1.0,
                max_len: 2,
            },
        );
        for r in &rules {
            assert!(r.lift >= 1.0, "rule {} has lift {}", r.display(), r.lift);
        }
    }

    #[test]
    fn rules_are_sorted_by_lift_then_confidence() {
        let rules = mine_rules(&market(), &RuleConfig::default());
        for w in rules.windows(2) {
            assert!(
                w[0].lift > w[1].lift
                    || (w[0].lift == w[1].lift && w[0].confidence >= w[1].confidence)
            );
        }
    }

    #[test]
    fn multi_item_antecedents_appear() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.3,
                min_confidence: 0.5,
                min_lift: 0.0,
                max_len: 3,
            },
        );
        assert!(
            rules.iter().any(|r| r.antecedent.len() == 2),
            "3-itemsets must generate 2-item antecedents"
        );
    }

    #[test]
    fn top_k_truncates() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.2,
                min_confidence: 0.1,
                min_lift: 0.0,
                max_len: 3,
            },
        );
        assert!(rules.len() > 3);
        let t = top_k(&rules, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], rules[0]);
    }

    #[test]
    fn display_renders_arrow_notation() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.4,
                min_confidence: 0.8,
                min_lift: 0.0,
                max_len: 2,
            },
        );
        let r = get(&rules, &["beer"], &["diapers"]).unwrap();
        assert_eq!(r.display(), "beer => diapers");
    }

    #[test]
    fn empty_data_yields_no_rules() {
        let rules = mine_rules(&TransactionSet::new(), &RuleConfig::default());
        assert!(rules.is_empty());
    }

    #[test]
    fn support_of_rule_equals_support_of_union() {
        let rules = mine_rules(
            &market(),
            &RuleConfig {
                min_support: 0.3,
                min_confidence: 0.0,
                min_lift: 0.0,
                max_len: 3,
            },
        );
        for r in &rules {
            // support ≤ confidence always; equality iff antecedent support
            // equals union support.
            assert!(r.support <= r.confidence + 1e-12);
            assert!(r.support > 0.0 && r.support <= 1.0);
            assert!(r.confidence > 0.0 && r.confidence <= 1.0);
        }
    }
}
