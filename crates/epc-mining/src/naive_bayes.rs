//! Gaussian naive Bayes — the *supervised* technique of the paper's
//! future-work section (§4): INDICE's energy scientists "explore and
//! characterize through supervised and unsupervised techniques groups of
//! buildings". The canonical INDICE use: predict the EPC class of an
//! uncertified building from its thermo-physical attributes.

use crate::matrix::Matrix;
use std::collections::BTreeMap;

/// A fitted Gaussian naive Bayes classifier over string labels.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    classes: Vec<String>,
    /// Log prior per class.
    log_priors: Vec<f64>,
    /// Per class, per feature: (mean, variance).
    params: Vec<Vec<(f64, f64)>>,
}

/// Variance floor avoiding singular likelihoods on near-constant features.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fits the classifier on `data` rows with one label per row.
    /// Returns `None` when inputs are empty/mismatched or any class has
    /// fewer than 2 samples (variance undefined).
    pub fn fit(data: &Matrix, labels: &[&str]) -> Option<Self> {
        let n = data.n_rows();
        if n == 0 || labels.len() != n {
            return None;
        }
        let d = data.n_cols();
        let mut by_class: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, &l) in labels.iter().enumerate() {
            by_class.entry(l).or_default().push(i);
        }
        // BTreeMap keys iterate sorted, so the class order is already the
        // lexicographic order the model exposes.
        let classes: Vec<String> = by_class.keys().map(|s| s.to_string()).collect();
        let mut log_priors = Vec::with_capacity(classes.len());
        let mut params = Vec::with_capacity(classes.len());
        for class in &classes {
            let rows = &by_class[class.as_str()];
            if rows.len() < 2 {
                return None;
            }
            log_priors.push((rows.len() as f64 / n as f64).ln());
            let mut class_params = Vec::with_capacity(d);
            for j in 0..d {
                let values: Vec<f64> = rows.iter().map(|&r| data.get(r, j)).collect();
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let var =
                    values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64;
                class_params.push((mean, var.max(VAR_FLOOR)));
            }
            params.push(class_params);
        }
        Some(GaussianNb {
            classes,
            log_priors,
            params,
        })
    }

    /// The classes known to the model, sorted.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Log joint `log P(class) + Σ log N(x_j; μ, σ²)` per class.
    pub fn log_joint(&self, x: &[f64]) -> Vec<f64> {
        self.classes
            .iter()
            .enumerate()
            .map(|(c, _)| {
                let mut lj = self.log_priors[c];
                for (j, &(mean, var)) in self.params[c].iter().enumerate() {
                    let diff = x[j] - mean;
                    lj += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                }
                lj
            })
            .collect()
    }

    /// Predicts the most probable class.
    pub fn predict(&self, x: &[f64]) -> &str {
        let lj = self.log_joint(x);
        let best = lj
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite log joint"))
            .map(|(i, _)| i)
            .expect("at least one class");
        &self.classes[best]
    }

    /// Accuracy over a labelled evaluation set.
    pub fn accuracy(&self, data: &Matrix, labels: &[&str]) -> f64 {
        if data.n_rows() == 0 {
            return 0.0;
        }
        let correct = (0..data.n_rows())
            .filter(|&i| self.predict(data.row(i)) == labels[i])
            .count();
        correct as f64 / data.n_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish classes in 2-D.
    fn toy() -> (Matrix, Vec<&'static str>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let jitter = ((i * 31) % 20) as f64 / 20.0 - 0.5;
            rows.push(vec![0.0 + jitter, 0.0 + jitter / 2.0]);
            labels.push("low");
            rows.push(vec![5.0 + jitter, 5.0 - jitter / 2.0]);
            labels.push("high");
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separable_classes_are_learned_perfectly() {
        let (m, labels) = toy();
        let nb = GaussianNb::fit(&m, &labels).unwrap();
        assert_eq!(nb.accuracy(&m, &labels), 1.0);
        assert_eq!(nb.predict(&[0.1, 0.0]), "low");
        assert_eq!(nb.predict(&[5.2, 4.9]), "high");
        assert_eq!(nb.classes(), &["high".to_string(), "low".to_string()]);
    }

    #[test]
    fn priors_break_ties_in_ambiguous_regions() {
        // 90% of points are "common": a midpoint sample should lean there.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            rows.push(vec![((i % 10) as f64 - 5.0) * 0.4]);
            labels.push("common");
        }
        for i in 0..10 {
            rows.push(vec![((i % 10) as f64 - 5.0) * 0.4]);
            labels.push("rare");
        }
        let m = Matrix::from_rows(&rows);
        let nb = GaussianNb::fit(&m, &labels).unwrap();
        // Identical likelihoods → the prior decides.
        assert_eq!(nb.predict(&[0.0]), "common");
    }

    #[test]
    fn log_joint_orders_like_distance() {
        let (m, labels) = toy();
        let nb = GaussianNb::fit(&m, &labels).unwrap();
        let lj = nb.log_joint(&[0.0, 0.0]);
        let low_idx = nb.classes().iter().position(|c| c == "low").unwrap();
        let high_idx = 1 - low_idx;
        assert!(lj[low_idx] > lj[high_idx]);
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let rows = vec![
            vec![1.0, 7.0],
            vec![1.2, 7.0],
            vec![5.0, 7.0],
            vec![5.1, 7.0],
        ];
        let m = Matrix::from_rows(&rows);
        let nb = GaussianNb::fit(&m, &["a", "a", "b", "b"]).unwrap();
        let p = nb.predict(&[1.1, 7.0]);
        assert_eq!(p, "a");
        assert!(nb.log_joint(&[1.1, 7.0]).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn invalid_inputs() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(GaussianNb::fit(&m, &["a"]).is_none(), "length mismatch");
        assert!(
            GaussianNb::fit(&m, &["a", "b"]).is_none(),
            "singleton classes"
        );
        assert!(GaussianNb::fit(&Matrix::zeros(0, 1), &[]).is_none());
    }

    #[test]
    fn accuracy_on_held_out_split() {
        let (m, labels) = toy();
        // Stratified split: pairs (low, high) alternate, so taking blocks
        // of 2 rows alternately keeps both classes in both splits.
        let train_idx: Vec<usize> = (0..m.n_rows()).filter(|i| (i / 2) % 2 == 0).collect();
        let test_idx: Vec<usize> = (0..m.n_rows()).filter(|i| (i / 2) % 2 == 1).collect();
        let train_rows: Vec<Vec<f64>> = train_idx.iter().map(|&i| m.row(i).to_vec()).collect();
        let train_labels: Vec<&str> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_rows: Vec<Vec<f64>> = test_idx.iter().map(|&i| m.row(i).to_vec()).collect();
        let test_labels: Vec<&str> = test_idx.iter().map(|&i| labels[i]).collect();
        let nb = GaussianNb::fit(&Matrix::from_rows(&train_rows), &train_labels).unwrap();
        let acc = nb.accuracy(&Matrix::from_rows(&test_rows), &test_labels);
        assert!(acc > 0.95, "held-out accuracy {acc}");
    }
}
