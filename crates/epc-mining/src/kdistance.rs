//! The k-distance-graph heuristic that estimates DBSCAN's parameters
//! (§2.1.2).
//!
//! "To properly specify these input parameters INDICE plots the k-distance
//! graph and automatically estimates a good value for each parameter. …
//! INDICE runs several times the k-distance plot for different values of
//! minPoints, and selects minPoints when the curve stabilises, and Epsilon
//! as the elbow point of the stable curve."

use crate::dbscan::DbscanConfig;
use crate::matrix::{euclidean, Matrix};

/// The k-distance curve: for every point, the distance to its k-th nearest
/// neighbour, sorted descending (the conventional presentation).
pub fn k_distance_curve(data: &Matrix, k: usize) -> Vec<f64> {
    let n = data.n_rows();
    if n == 0 || k == 0 || k >= n {
        return Vec::new();
    }
    let mut curve = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        for j in 0..n {
            if i != j {
                dists.push(euclidean(data.row(i), data.row(j)));
            }
        }
        // k-th nearest neighbour via partial selection.
        let kth = k - 1;
        dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        curve.push(dists[kth]);
    }
    curve.sort_by(|a, b| b.partial_cmp(a).expect("NaN distance"));
    curve
}

/// The elbow of a descending k-distance curve: the point of maximum
/// perpendicular distance from the chord joining the endpoints. Returns the
/// curve *value* at the elbow (the ε estimate); `None` for curves shorter
/// than 3.
pub fn curve_elbow_value(curve: &[f64]) -> Option<f64> {
    if curve.len() < 3 {
        return None;
    }
    let n = curve.len();
    let (x0, y0) = (0.0, curve[0]);
    let (x1, y1) = ((n - 1) as f64, curve[n - 1]);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return Some(curve[n / 2]);
    }
    let mut best = (1usize, -1.0f64);
    for (i, &y) in curve.iter().enumerate().skip(1).take(n - 2) {
        let d = (dy * (i as f64 - x0) - dx * (y - y0)).abs() / norm;
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(curve[best.0])
}

/// Measures how different two k-distance curves are: mean absolute
/// difference at matching (relative) positions, normalized by the mean
/// curve magnitude. Small values mean the curve has "stabilised".
pub fn curve_difference(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let n = a.len().min(b.len());
    let mut diff = 0.0;
    let mut scale = 0.0;
    for i in 0..n {
        // Sample both at the same relative position.
        let ia = i * a.len() / n;
        let ib = i * b.len() / n;
        diff += (a[ia] - b[ib]).abs();
        scale += a[ia].abs().max(b[ib].abs());
    }
    if scale == 0.0 {
        0.0
    } else {
        diff / scale
    }
}

/// Automatically estimates `(minPoints, eps)` the way §2.1.2 describes:
/// scans `min_points_candidates` in order, computes the k-distance curve
/// for each, and stops at the first candidate whose curve differs from the
/// previous one by less than `stability_tol` (the "curve stabilises"
/// criterion); ε is the elbow of that stable curve.
///
/// Falls back to the last candidate when no stabilisation occurs. Returns
/// `None` when the data is too small for any candidate.
pub fn estimate_dbscan_params(
    data: &Matrix,
    min_points_candidates: &[usize],
    stability_tol: f64,
) -> Option<DbscanConfig> {
    let mut prev: Option<(usize, Vec<f64>)> = None;
    for &mp in min_points_candidates {
        // The curve uses k = minPoints − 1 neighbours (the point itself
        // counts toward minPoints).
        let k = mp.saturating_sub(1).max(1);
        let curve = k_distance_curve(data, k);
        if curve.len() < 3 {
            continue;
        }
        if let Some((prev_mp, prev_curve)) = &prev {
            if curve_difference(prev_curve, &curve) < stability_tol {
                let eps = curve_elbow_value(prev_curve)?;
                return Some(DbscanConfig {
                    eps,
                    min_points: *prev_mp,
                });
            }
        }
        prev = Some((mp, curve));
    }
    let (mp, curve) = prev?;
    Some(DbscanConfig {
        eps: curve_elbow_value(&curve)?,
        min_points: mp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    fn blobs_with_noise() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..50 {
            rows.push(vec![
                ((i * 13) % 25) as f64 / 25.0,
                ((i * 7) % 25) as f64 / 25.0,
            ]);
        }
        for i in 0..50 {
            rows.push(vec![
                8.0 + ((i * 11) % 25) as f64 / 25.0,
                8.0 + ((i * 19) % 25) as f64 / 25.0,
            ]);
        }
        rows.push(vec![40.0, 40.0]);
        rows.push(vec![-40.0, 25.0]);
        Matrix::from_rows(&rows)
    }

    #[test]
    fn curve_is_descending() {
        let data = blobs_with_noise();
        let curve = k_distance_curve(&data, 4);
        assert_eq!(curve.len(), data.n_rows());
        for w in curve.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn noise_points_dominate_the_curve_head() {
        let data = blobs_with_noise();
        let curve = k_distance_curve(&data, 4);
        // The isolated points have k-distances an order of magnitude above
        // everyone else.
        assert!(curve[0] > 10.0 * curve[5]);
    }

    #[test]
    fn invalid_inputs_give_empty_curve() {
        let data = blobs_with_noise();
        assert!(k_distance_curve(&data, 0).is_empty());
        assert!(k_distance_curve(&data, data.n_rows()).is_empty());
        assert!(k_distance_curve(&Matrix::zeros(0, 2), 3).is_empty());
    }

    #[test]
    fn elbow_value_separates_noise_from_cluster_scale() {
        let data = blobs_with_noise();
        let curve = k_distance_curve(&data, 4);
        let eps = curve_elbow_value(&curve).unwrap();
        // ε must be far below the noise distances and at or above the
        // in-cluster scale.
        assert!(eps < curve[0] / 5.0, "eps {eps} vs max {}", curve[0]);
        assert!(eps > 0.0);
    }

    #[test]
    fn estimated_params_make_dbscan_flag_the_noise() {
        let data = blobs_with_noise();
        let cfg = estimate_dbscan_params(&data, &[3, 4, 5, 6], 0.15).unwrap();
        let res = dbscan(&data, &cfg);
        let noise = res.noise_indices();
        assert!(
            noise.contains(&100) && noise.contains(&101),
            "isolated points must be noise: cfg {cfg:?}, noise {noise:?}"
        );
        // And the bulk of the blobs must survive.
        assert!(noise.len() <= 10, "too much flagged: {}", noise.len());
    }

    #[test]
    fn curve_difference_properties() {
        let a = vec![5.0, 4.0, 3.0];
        assert_eq!(curve_difference(&a, &a), 0.0);
        let b = vec![10.0, 8.0, 6.0];
        assert!(curve_difference(&a, &b) > 0.3);
        assert!(curve_difference(&[], &a).is_infinite());
    }

    #[test]
    fn stabilisation_picks_an_early_candidate() {
        // With a smooth dataset, consecutive minPoints curves are close, so
        // the scan should stop before the last candidate.
        let data = blobs_with_noise();
        let cfg = estimate_dbscan_params(&data, &[3, 4, 5, 6, 7, 8], 0.5).unwrap();
        assert!(cfg.min_points <= 5, "got {:?}", cfg);
    }

    #[test]
    fn too_small_data() {
        let tiny = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert!(estimate_dbscan_params(&tiny, &[4, 5], 0.1).is_none());
    }
}
