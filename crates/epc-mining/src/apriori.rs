//! Apriori frequent-itemset mining (Agrawal et al. 1993) — the engine
//! behind INDICE's association-rule discovery (§2.2.2).

use std::collections::{BTreeMap, BTreeSet};

/// A sorted, duplicate-free set of item ids.
pub type Itemset = Vec<u32>;

/// Interns item strings (`"u_windows=High"`) to dense ids.
#[derive(Debug, Clone, Default)]
pub struct ItemDictionary {
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
}

impl ItemDictionary {
    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// The name of an item id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// The id of an item name, if interned.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no items are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Resolves an itemset to names (unknown ids are skipped).
    pub fn resolve(&self, itemset: &[u32]) -> Vec<String> {
        itemset
            .iter()
            .filter_map(|&id| self.name(id).map(str::to_owned))
            .collect()
    }
}

/// A transactional dataset of categorical items.
#[derive(Debug, Clone, Default)]
pub struct TransactionSet {
    /// The item dictionary shared by all transactions.
    pub dict: ItemDictionary,
    transactions: Vec<Itemset>,
}

impl TransactionSet {
    /// An empty transaction set.
    pub fn new() -> Self {
        TransactionSet::default()
    }

    /// Adds a transaction from item names (duplicates collapse).
    pub fn push(&mut self, items: &[&str]) {
        let mut t: Itemset = items.iter().map(|s| self.dict.intern(s)).collect();
        t.sort_unstable();
        t.dedup();
        self.transactions.push(t);
    }

    /// Adds a transaction of owned strings.
    pub fn push_owned(&mut self, items: &[String]) {
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        self.push(&refs);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` when there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions (sorted, deduplicated item ids).
    pub fn transactions(&self) -> &[Itemset] {
        &self.transactions
    }
}

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted.
    pub items: Itemset,
    /// Number of transactions containing the itemset.
    pub count: usize,
}

impl FrequentItemset {
    /// Relative support given the total transaction count.
    pub fn support(&self, n_transactions: usize) -> f64 {
        self.count as f64 / n_transactions.max(1) as f64
    }
}

/// Per-lattice-level counts captured by [`Apriori::mine_traced_with_runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AprioriLevelStats {
    /// Itemset size at this level (1 = single items).
    pub level: usize,
    /// Candidates generated for the level (level 1: distinct items seen).
    pub candidates: usize,
    /// Candidates discarded for missing the minimum support count.
    pub pruned: usize,
    /// Candidates surviving as frequent itemsets.
    pub frequent: usize,
}

/// Level-by-level mining diagnostics; a pure function of the input data
/// and miner parameters, so safe to trace deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AprioriTrace {
    /// One entry per lattice level actually explored, in level order.
    pub levels: Vec<AprioriLevelStats>,
}

/// The Apriori miner.
#[derive(Debug, Clone)]
pub struct Apriori {
    /// Minimum relative support in `(0, 1]`.
    pub min_support: f64,
    /// Maximum itemset size mined (bounds the lattice walk; rules of the
    /// dashboards rarely need more than 4 items).
    pub max_len: usize,
}

impl Default for Apriori {
    fn default() -> Self {
        Apriori {
            min_support: 0.05,
            max_len: 4,
        }
    }
}

/// Transactions folded per chunk when counting candidate supports in
/// parallel. Fixed (independent of the thread budget) so the reduction
/// tree — and hence the counts — never depends on how many workers ran.
const SUPPORT_COUNT_CHUNK: usize = 512;

impl Apriori {
    /// Mines all frequent itemsets of `data` (sizes 1..=`max_len`).
    pub fn mine(&self, data: &TransactionSet) -> Vec<FrequentItemset> {
        self.mine_with_runtime(data, &epc_runtime::RuntimeConfig::sequential())
    }

    /// [`Apriori::mine`] with an explicit execution runtime.
    ///
    /// Candidate-support counting — the pass over every transaction per
    /// lattice level — runs as a chunked parallel reduction merging integer
    /// count vectors, which is exact regardless of the thread budget.
    pub fn mine_with_runtime(
        &self,
        data: &TransactionSet,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> Vec<FrequentItemset> {
        self.mine_traced_with_runtime(data, runtime).0
    }

    /// [`Apriori::mine_with_runtime`], additionally returning per-level
    /// candidate/pruned/frequent counts for observability. The frequent
    /// itemsets are exactly what the untraced mine produces.
    pub fn mine_traced_with_runtime(
        &self,
        data: &TransactionSet,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> (Vec<FrequentItemset>, AprioriTrace) {
        let mut trace = AprioriTrace::default();
        let n = data.len();
        if n == 0 || self.min_support <= 0.0 {
            return (Vec::new(), trace);
        }
        let min_count = (self.min_support * n as f64).ceil().max(1.0) as usize;

        // L1: frequent single items. Ordered map: iteration feeds the
        // frequent-set output, so hash order must never reach it (D3).
        let mut item_counts: BTreeMap<u32, usize> = BTreeMap::new();
        for t in data.transactions() {
            for &i in t {
                *item_counts.entry(i).or_insert(0) += 1;
            }
        }
        let n_items = item_counts.len();
        let mut current: Vec<FrequentItemset> = item_counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(i, count)| FrequentItemset {
                items: vec![i],
                count,
            })
            .collect();
        current.sort_by(|a, b| a.items.cmp(&b.items));
        trace.levels.push(AprioriLevelStats {
            level: 1,
            candidates: n_items,
            pruned: n_items - current.len(),
            frequent: current.len(),
        });

        let mut all = current.clone();
        let mut k = 1usize;
        while !current.is_empty() && k < self.max_len {
            k += 1;
            let candidates = generate_candidates(&current);
            if candidates.is_empty() {
                break;
            }
            let n_candidates = candidates.len();
            // Count candidate supports with one (chunk-parallel) pass over
            // the transactions.
            let counts = epc_runtime::par_reduce(
                runtime,
                data.transactions(),
                SUPPORT_COUNT_CHUNK,
                || vec![0usize; candidates.len()],
                |mut acc, t| {
                    if t.len() >= k {
                        for (ci, c) in candidates.iter().enumerate() {
                            if is_subset(c, t) {
                                acc[ci] += 1;
                            }
                        }
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            current = candidates
                .into_iter()
                .zip(counts)
                .filter(|&(_, c)| c >= min_count)
                .map(|(items, count)| FrequentItemset { items, count })
                .collect();
            current.sort_by(|a, b| a.items.cmp(&b.items));
            trace.levels.push(AprioriLevelStats {
                level: k,
                candidates: n_candidates,
                pruned: n_candidates - current.len(),
                frequent: current.len(),
            });
            all.extend(current.iter().cloned());
        }
        (all, trace)
    }
}

/// Apriori-gen: joins k-itemsets sharing their first k−1 items and prunes
/// candidates with an infrequent (k)-subset.
fn generate_candidates(frequent: &[FrequentItemset]) -> Vec<Itemset> {
    let frequent_set: BTreeSet<&[u32]> = frequent.iter().map(|f| f.items.as_slice()).collect();
    let mut out = Vec::new();
    for (i, a) in frequent.iter().enumerate() {
        for b in &frequent[i + 1..] {
            let k = a.items.len();
            // Join condition: identical prefix of length k−1.
            if a.items[..k - 1] != b.items[..k - 1] {
                // Sorted order means once prefixes diverge, later b's
                // prefixes diverge too.
                break;
            }
            let mut candidate = a.items.clone();
            candidate.push(b.items[k - 1]);
            debug_assert!(candidate.windows(2).all(|w| w[0] < w[1]));
            // Prune: every k-subset must be frequent.
            let all_subsets_frequent = (0..candidate.len()).all(|skip| {
                let sub: Vec<u32> = candidate
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != skip)
                    .map(|(_, &v)| v)
                    .collect();
                frequent_set.contains(sub.as_slice())
            });
            if all_subsets_frequent {
                out.push(candidate);
            }
        }
    }
    out
}

/// `true` when sorted `needle` ⊆ sorted `haystack` (merge scan).
pub fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut hi = 0;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic market-basket example.
    fn market() -> TransactionSet {
        let mut t = TransactionSet::new();
        t.push(&["bread", "milk"]);
        t.push(&["bread", "diapers", "beer", "eggs"]);
        t.push(&["milk", "diapers", "beer", "cola"]);
        t.push(&["bread", "milk", "diapers", "beer"]);
        t.push(&["bread", "milk", "diapers", "cola"]);
        t
    }

    fn find<'a>(
        all: &'a [FrequentItemset],
        dict: &ItemDictionary,
        names: &[&str],
    ) -> Option<&'a FrequentItemset> {
        let mut ids: Vec<u32> = names.iter().map(|n| dict.id(n).unwrap()).collect();
        ids.sort_unstable();
        all.iter().find(|f| f.items == ids)
    }

    #[test]
    fn singleton_supports_match_hand_counts() {
        let data = market();
        let all = Apriori {
            min_support: 0.2,
            max_len: 3,
        }
        .mine(&data);
        assert_eq!(find(&all, &data.dict, &["bread"]).unwrap().count, 4);
        assert_eq!(find(&all, &data.dict, &["milk"]).unwrap().count, 4);
        assert_eq!(find(&all, &data.dict, &["diapers"]).unwrap().count, 4);
        assert_eq!(find(&all, &data.dict, &["beer"]).unwrap().count, 3);
        assert_eq!(find(&all, &data.dict, &["cola"]).unwrap().count, 2);
        // At 20% (min count 1) even eggs survives.
        assert_eq!(find(&all, &data.dict, &["eggs"]).unwrap().count, 1);
    }

    #[test]
    fn eggs_is_pruned_at_40_percent() {
        let data = market();
        let all = Apriori {
            min_support: 0.4,
            max_len: 3,
        }
        .mine(&data);
        assert!(find(&all, &data.dict, &["eggs"]).is_none());
        // cola appears in 2/5 = 40% of transactions, exactly at threshold.
        assert_eq!(find(&all, &data.dict, &["cola"]).unwrap().count, 2);
    }

    #[test]
    fn pair_supports() {
        let data = market();
        let all = Apriori {
            min_support: 0.4,
            max_len: 3,
        }
        .mine(&data);
        assert_eq!(
            find(&all, &data.dict, &["beer", "diapers"]).unwrap().count,
            3
        );
        assert_eq!(find(&all, &data.dict, &["bread", "milk"]).unwrap().count, 3);
        assert_eq!(
            find(&all, &data.dict, &["milk", "diapers"]).unwrap().count,
            3
        );
    }

    #[test]
    fn triple_is_found_at_low_support() {
        let data = market();
        let all = Apriori {
            min_support: 0.3,
            max_len: 3,
        }
        .mine(&data);
        let t = find(&all, &data.dict, &["bread", "milk", "diapers"]).unwrap();
        assert_eq!(t.count, 2);
        assert!((t.support(data.len()) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn support_is_antimonotone() {
        // Every frequent itemset's subsets must be at least as frequent.
        let data = market();
        let all = Apriori {
            min_support: 0.2,
            max_len: 4,
        }
        .mine(&data);
        let by_items: BTreeMap<&[u32], usize> =
            all.iter().map(|f| (f.items.as_slice(), f.count)).collect();
        for f in &all {
            if f.items.len() < 2 {
                continue;
            }
            for skip in 0..f.items.len() {
                let sub: Vec<u32> = f
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != skip)
                    .map(|(_, &v)| v)
                    .collect();
                let sub_count = by_items
                    .get(sub.as_slice())
                    .unwrap_or_else(|| panic!("subset of frequent set missing: {sub:?}"));
                assert!(*sub_count >= f.count);
            }
        }
    }

    #[test]
    fn parallel_mine_matches_sequential() {
        // Enough transactions to span several counting chunks.
        let mut data = TransactionSet::new();
        let pool = ["a", "b", "c", "d", "e", "f"];
        for i in 0..1500usize {
            let items: Vec<&str> = pool
                .iter()
                .enumerate()
                .filter(|&(j, _)| (i * 7 + j * 13) % (j + 2) == 0)
                .map(|(_, &s)| s)
                .collect();
            data.push(&items);
        }
        let miner = Apriori {
            min_support: 0.05,
            max_len: 4,
        };
        let seq = miner.mine(&data);
        for threads in [2usize, 8] {
            let par = miner.mine_with_runtime(&data, &epc_runtime::RuntimeConfig::new(threads));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn traced_mine_matches_untraced_and_counts_conserve() {
        let data = market();
        let miner = Apriori {
            min_support: 0.4,
            max_len: 3,
        };
        let plain = miner.mine(&data);
        let (traced, trace) =
            miner.mine_traced_with_runtime(&data, &epc_runtime::RuntimeConfig::sequential());
        assert_eq!(traced, plain);
        assert!(!trace.levels.is_empty());
        assert_eq!(trace.levels[0].level, 1);
        assert_eq!(trace.levels[0].candidates, 6, "six distinct items");
        for (i, level) in trace.levels.iter().enumerate() {
            assert_eq!(level.level, i + 1, "levels are dense");
            assert_eq!(level.candidates, level.pruned + level.frequent);
        }
        let total_frequent: usize = trace.levels.iter().map(|l| l.frequent).sum();
        assert_eq!(total_frequent, plain.len());
    }

    #[test]
    fn max_len_bounds_itemset_size() {
        let data = market();
        let all = Apriori {
            min_support: 0.2,
            max_len: 2,
        }
        .mine(&data);
        assert!(all.iter().all(|f| f.items.len() <= 2));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = TransactionSet::new();
        assert!(Apriori::default().mine(&empty).is_empty());
        let data = market();
        assert!(Apriori {
            min_support: 0.0,
            max_len: 3
        }
        .mine(&data)
        .is_empty());
        let all = Apriori {
            min_support: 1.1,
            max_len: 3,
        }
        .mine(&data);
        assert!(all.is_empty(), "support > 1 can never be reached");
    }

    #[test]
    fn duplicates_in_transaction_collapse() {
        let mut t = TransactionSet::new();
        t.push(&["a", "a", "b"]);
        assert_eq!(t.transactions()[0].len(), 2);
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2], &[2]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn dictionary_round_trip() {
        let mut d = ItemDictionary::default();
        let a = d.intern("x=Low");
        let b = d.intern("y=High");
        assert_eq!(d.intern("x=Low"), a, "re-intern returns same id");
        assert_eq!(d.name(a), Some("x=Low"));
        assert_eq!(d.id("y=High"), Some(b));
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(&[b, a]), vec!["y=High", "x=Low"]);
    }
}
