//! K-means clustering (§2.2.2).
//!
//! "The partitional K-means cluster algorithm is exploited by INDICE to
//! identify groups of EPCs characterized by similar properties. … First, the
//! algorithm chooses randomly K initial centroids. Then, each point is
//! assigned to the closest centroid and the centroids are recalculated. The
//! previous steps are repeated until the centroids no longer change."
//!
//! Besides the paper's random initialization, k-means++ seeding is provided
//! (the ablation benchmark compares the two). Quality is measured with the
//! SSE index the paper uses for its elbow-based K selection.

use crate::matrix::{sq_euclidean, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansInit {
    /// Uniformly random distinct points (the paper's description).
    Random,
    /// k-means++ (Arthur & Vassilvitskii 2007) — D² weighting.
    KMeansPlusPlus,
}

/// K-means configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters K (defined a-priori, per the paper).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    /// Convergence tolerance on total centroid movement (squared).
    pub tol: f64,
    /// Initialization strategy.
    pub init: KMeansInit,
    /// RNG seed — runs are fully deterministic.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iter: 300,
            tol: 1e-9,
            init: KMeansInit::KMeansPlusPlus,
            seed: 42,
        }
    }
}

/// A fitted K-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    /// Final centroids (k × d).
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared errors: Σ‖x − c(x)‖² — the paper's quality index.
    pub sse: f64,
    /// Lloyd iterations performed.
    pub n_iter: usize,
    /// `true` when centroids stopped moving before `max_iter`.
    pub converged: bool,
}

impl KMeansModel {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.n_rows()
    }

    /// Cluster sizes (cardinalities shown inside cluster-markers).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Row indices belonging to cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Predicts the cluster of a new point.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest_centroid(point, &self.centroids).0
    }
}

/// Per-round diagnostics captured by [`KMeans::fit_traced`].
///
/// The inertia sequence is accumulated sequentially in row order from
/// per-point distances the parallel assignment step already computes, so
/// it is bitwise identical for any thread budget — observability never
/// perturbs the fit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KMeansFitTrace {
    /// Total within-cluster squared distance (inertia) measured by each
    /// Lloyd assignment round, against that round's incoming centroids.
    pub round_inertia: Vec<f64>,
}

/// The K-means estimator.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Creates an estimator with `config`.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    /// Fits the model. Returns `None` when `k == 0`, the matrix is empty,
    /// or there are fewer points than clusters.
    pub fn fit(&self, data: &Matrix) -> Option<KMeansModel> {
        self.fit_with_runtime(data, &epc_runtime::RuntimeConfig::sequential())
    }

    /// [`KMeans::fit`] with an explicit execution runtime.
    ///
    /// The Lloyd *assignment* step (nearest centroid per point — the O(nkd)
    /// hot loop) runs data-parallel; the centroid update and the SSE
    /// accumulation stay sequential in row order, so the fitted model is
    /// bitwise identical for any thread budget.
    pub fn fit_with_runtime(
        &self,
        data: &Matrix,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> Option<KMeansModel> {
        self.fit_traced(data, runtime).map(|(model, _)| model)
    }

    /// [`KMeans::fit_with_runtime`], additionally returning the per-round
    /// [`KMeansFitTrace`] for observability. The fitted model is exactly
    /// what the untraced fit produces.
    pub fn fit_traced(
        &self,
        data: &Matrix,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> Option<(KMeansModel, KMeansFitTrace)> {
        let k = self.config.k;
        let n = data.n_rows();
        if k == 0 || n == 0 || n < k {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let centroids = match self.config.init {
            KMeansInit::Random => init_random(data, k, &mut rng),
            KMeansInit::KMeansPlusPlus => init_plusplus(data, k, &mut rng),
        };
        Some(self.lloyd(data, centroids, runtime))
    }

    /// Warm-start fit: runs the same Lloyd loop as [`KMeans::fit_traced`]
    /// but seeds it with `initial` centroids instead of the configured
    /// (seeded) initialization. `k` is taken from `initial.n_rows()`; the
    /// configured `k`, `init`, and `seed` are ignored. Returns `None` when
    /// `initial` is empty, its width differs from `data`'s, or there are
    /// fewer points than centroids.
    ///
    /// Warm-starting from a previous generation's converged centroids lets
    /// incremental ingest resume clustering cheaply; the result is an
    /// ε-equivalent (not bitwise-identical) model unless the data is
    /// unchanged, in which case Lloyd is a fixed point and one round
    /// reproduces the converged model exactly.
    pub fn fit_traced_from(
        &self,
        data: &Matrix,
        initial: &Matrix,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> Option<(KMeansModel, KMeansFitTrace)> {
        let k = initial.n_rows();
        let n = data.n_rows();
        if k == 0 || n == 0 || n < k || initial.n_cols() != data.n_cols() {
            return None;
        }
        Some(self.lloyd(data, initial.clone(), runtime))
    }

    /// Lloyd iteration shared by cold ([`KMeans::fit_traced`]) and warm
    /// ([`KMeans::fit_traced_from`]) starts. `centroids` must already be
    /// k × d with `k ≤ data.n_rows()`.
    fn lloyd(
        &self,
        data: &Matrix,
        mut centroids: Matrix,
        runtime: &epc_runtime::RuntimeConfig,
    ) -> (KMeansModel, KMeansFitTrace) {
        let k = centroids.n_rows();
        let n = data.n_rows();
        let rows_idx: Vec<usize> = (0..n).collect();
        let mut assignments = vec![0usize; n];
        let mut n_iter = 0;
        let mut converged = false;
        let mut trace = KMeansFitTrace::default();

        for iter in 0..self.config.max_iter {
            n_iter = iter + 1;
            // Assignment step (parallel; pure per row). The distances ride
            // along for the round-inertia trace, folded sequentially below.
            let assigned = epc_runtime::par_map(runtime, &rows_idx, |&i| {
                nearest_centroid(data.row(i), &centroids)
            });
            let mut round_inertia = 0.0;
            for (i, &(c, d2)) in assigned.iter().enumerate() {
                assignments[i] = c;
                round_inertia += d2;
            }
            trace.round_inertia.push(round_inertia);
            // Update step.
            let mut new_centroids = Matrix::zeros(k, data.n_cols());
            let mut counts = vec![0usize; k];
            for (i, row) in data.rows().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                let target = new_centroids.row_mut(c);
                for (t, &x) in target.iter_mut().zip(row) {
                    *t += x;
                }
            }
            #[allow(clippy::needless_range_loop)] // counts and centroids are indexed jointly
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: reseed at the point farthest from its
                    // centroid (standard fix keeping K clusters alive).
                    let far = farthest_point(data, &centroids, &assignments);
                    let row: Vec<f64> = data.row(far).to_vec();
                    new_centroids.row_mut(c).copy_from_slice(&row);
                } else {
                    let inv = 1.0 / counts[c] as f64;
                    for t in new_centroids.row_mut(c) {
                        *t *= inv;
                    }
                }
            }
            // Convergence: total squared centroid movement.
            let moved: f64 = (0..k)
                .map(|c| sq_euclidean(centroids.row(c), new_centroids.row(c)))
                .sum();
            centroids = new_centroids;
            if moved <= self.config.tol {
                converged = true;
                break;
            }
        }
        // Final assignment against final centroids (parallel), then the
        // SSE accumulated sequentially in row order for bitwise stability.
        let finals = epc_runtime::par_map(runtime, &rows_idx, |&i| {
            nearest_centroid(data.row(i), &centroids)
        });
        let mut sse = 0.0;
        for (i, (c, d2)) in finals.into_iter().enumerate() {
            assignments[i] = c;
            sse += d2;
        }
        (
            KMeansModel {
                centroids,
                assignments,
                sse,
                n_iter,
                converged,
            },
            trace,
        )
    }
}

fn nearest_centroid(point: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, row) in centroids.rows().enumerate() {
        let d2 = sq_euclidean(point, row);
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

fn farthest_point(data: &Matrix, centroids: &Matrix, assignments: &[usize]) -> usize {
    let mut best = (0usize, -1.0);
    for (i, row) in data.rows().enumerate() {
        let d2 = sq_euclidean(row, centroids.row(assignments[i]));
        if d2 > best.1 {
            best = (i, d2);
        }
    }
    best.0
}

fn init_random(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let mut idx: Vec<usize> = (0..data.n_rows()).collect();
    idx.shuffle(rng);
    let mut c = Matrix::zeros(k, data.n_cols());
    for (slot, &i) in idx.iter().take(k).enumerate() {
        c.row_mut(slot).copy_from_slice(data.row(i));
    }
    c
}

fn init_plusplus(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = data.n_rows();
    let mut centroids = Matrix::zeros(k, data.n_cols());
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut d2: Vec<f64> = data
        .rows()
        .map(|r| sq_euclidean(r, centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n) // all points identical to chosen centroids
        } else {
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                draw -= w;
                if draw <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(next));
        for (i, row) in data.rows().enumerate() {
            let d = sq_euclidean(row, centroids.row(c));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 30 points each (deterministic).
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                let dx = (((i * 31 + ci * 7) % 100) as f64 / 100.0 - 0.5) * 1.0;
                let dy = (((i * 17 + ci * 13) % 100) as f64 / 100.0 - 0.5) * 1.0;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let model = KMeans::new(KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        })
        .fit(&blobs())
        .unwrap();
        assert!(model.converged);
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![30, 30, 30], "each blob is one cluster");
        // Points in the same blob share an assignment.
        for blob in 0..3 {
            let a0 = model.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(model.assignments[blob * 30 + i], a0);
            }
        }
    }

    #[test]
    fn every_point_assigned_to_nearest_centroid() {
        let data = blobs();
        let model = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&data)
        .unwrap();
        for (i, row) in data.rows().enumerate() {
            let assigned = model.assignments[i];
            let d_assigned = sq_euclidean(row, model.centroids.row(assigned));
            for c in 0..model.k() {
                let d = sq_euclidean(row, model.centroids.row(c));
                assert!(d_assigned <= d + 1e-12);
            }
        }
    }

    #[test]
    fn sse_decreases_with_k() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let m = KMeans::new(KMeansConfig {
                k,
                seed: 7,
                ..Default::default()
            })
            .fit(&data)
            .unwrap();
            assert!(
                m.sse <= prev + 1e-9,
                "SSE must not increase with k: k={k}, sse={}, prev={prev}",
                m.sse
            );
            prev = m.sse;
        }
    }

    #[test]
    fn k_equals_one_gives_global_centroid() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![4.0]]);
        let m = KMeans::new(KMeansConfig {
            k: 1,
            ..Default::default()
        })
        .fit(&data)
        .unwrap();
        assert!((m.centroids.get(0, 0) - 2.0).abs() < 1e-12);
        // SSE = 4 + 0 + 4
        assert!((m.sse - 8.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let data = Matrix::from_rows(&[vec![0.0, 1.0], vec![5.0, 5.0], vec![9.0, 2.0]]);
        let m = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&data)
        .unwrap();
        assert!(m.sse < 1e-18);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 123,
            ..Default::default()
        };
        let a = KMeans::new(cfg.clone()).fit(&data).unwrap();
        let b = KMeans::new(cfg).fit(&data).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.sse, b.sse);
    }

    #[test]
    fn parallel_fit_is_bitwise_identical_to_sequential() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 11,
            ..Default::default()
        };
        let seq = KMeans::new(cfg.clone()).fit(&data).unwrap();
        for threads in [2usize, 4, 8] {
            let par = KMeans::new(cfg.clone())
                .fit_with_runtime(&data, &epc_runtime::RuntimeConfig::new(threads))
                .unwrap();
            assert_eq!(par.assignments, seq.assignments, "threads = {threads}");
            assert_eq!(par.sse.to_bits(), seq.sse.to_bits(), "threads = {threads}");
            assert_eq!(par.centroids, seq.centroids, "threads = {threads}");
            assert_eq!(par.n_iter, seq.n_iter, "threads = {threads}");
        }
    }

    #[test]
    fn traced_fit_matches_untraced_and_inertia_is_monotone() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 11,
            ..Default::default()
        };
        let plain = KMeans::new(cfg.clone()).fit(&data).unwrap();
        for threads in [1usize, 2, 8] {
            let rt = epc_runtime::RuntimeConfig::new(threads);
            let (model, trace) = KMeans::new(cfg.clone()).fit_traced(&data, &rt).unwrap();
            assert_eq!(model, plain, "threads = {threads}");
            assert_eq!(trace.round_inertia.len(), model.n_iter);
            for pair in trace.round_inertia.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-9, "Lloyd inertia is monotone");
            }
            // The final model SSE can only improve on the last round.
            assert!(model.sse <= trace.round_inertia[model.n_iter - 1] + 1e-9);
        }
    }

    #[test]
    fn invalid_inputs_yield_none() {
        let data = blobs();
        assert!(KMeans::new(KMeansConfig {
            k: 0,
            ..Default::default()
        })
        .fit(&data)
        .is_none());
        assert!(KMeans::new(KMeansConfig {
            k: 100,
            ..Default::default()
        })
        .fit(&Matrix::from_rows(&[vec![1.0]]))
        .is_none());
        assert!(KMeans::new(KMeansConfig::default())
            .fit(&Matrix::zeros(0, 2))
            .is_none());
    }

    #[test]
    fn random_init_also_works() {
        let m = KMeans::new(KMeansConfig {
            k: 3,
            init: KMeansInit::Random,
            seed: 5,
            ..Default::default()
        })
        .fit(&blobs())
        .unwrap();
        let mut sizes = m.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![30, 30, 30]);
    }

    #[test]
    fn predict_maps_to_containing_blob() {
        let m = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&blobs())
        .unwrap();
        let c = m.predict(&[10.0, 10.0]);
        assert_eq!(c, m.assignments[30], "near blob 1's points");
    }

    #[test]
    fn members_of_partitions_rows() {
        let m = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&blobs())
        .unwrap();
        let total: usize = (0..3).map(|c| m.members_of(c).len()).sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn warm_start_from_converged_centroids_is_a_fixed_point() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let rt = epc_runtime::RuntimeConfig::sequential();
        let (cold, _) = KMeans::new(cfg.clone()).fit_traced(&data, &rt).unwrap();
        assert!(cold.converged);
        let (warm, trace) = KMeans::new(cfg)
            .fit_traced_from(&data, &cold.centroids, &rt)
            .unwrap();
        // Lloyd from a converged solution over the same data moves nothing:
        // the very first round re-derives identical centroids.
        assert!(warm.converged);
        assert_eq!(warm.n_iter, 1);
        assert_eq!(warm.centroids, cold.centroids);
        assert_eq!(warm.assignments, cold.assignments);
        assert_eq!(warm.sse.to_bits(), cold.sse.to_bits());
        assert_eq!(trace.round_inertia.len(), 1);
    }

    #[test]
    fn warm_start_from_perturbed_centroids_reconverges_nearby() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let rt = epc_runtime::RuntimeConfig::sequential();
        let (cold, _) = KMeans::new(cfg.clone()).fit_traced(&data, &rt).unwrap();
        let mut nudged = cold.centroids.clone();
        for c in 0..nudged.n_rows() {
            for t in nudged.row_mut(c) {
                *t += 0.25;
            }
        }
        let (warm, _) = KMeans::new(cfg)
            .fit_traced_from(&data, &nudged, &rt)
            .unwrap();
        assert!(warm.converged);
        // Well-separated blobs: the perturbation stays within each basin,
        // so the warm fit lands back on the cold optimum.
        assert_eq!(warm.assignments, cold.assignments);
        assert!((warm.sse - cold.sse).abs() <= 1e-9 * cold.sse.max(1.0));
    }

    #[test]
    fn warm_start_ignores_configured_k_and_uses_initial_rows() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 5, // deliberately wrong; initial centroids carry k = 2
            ..Default::default()
        };
        let initial = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 10.0]]);
        let rt = epc_runtime::RuntimeConfig::sequential();
        let (warm, _) = KMeans::new(cfg)
            .fit_traced_from(&data, &initial, &rt)
            .unwrap();
        assert_eq!(warm.k(), 2);
        assert!(warm.converged);
    }

    #[test]
    fn warm_start_rejects_shape_mismatches() {
        let data = blobs();
        let km = KMeans::new(KMeansConfig::default());
        let rt = epc_runtime::RuntimeConfig::sequential();
        // Empty initial centroids.
        assert!(km
            .fit_traced_from(&data, &Matrix::zeros(0, 2), &rt)
            .is_none());
        // Width mismatch.
        assert!(km
            .fit_traced_from(&data, &Matrix::zeros(3, 5), &rt)
            .is_none());
        // More centroids than points.
        let tiny = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(km
            .fit_traced_from(&tiny, &Matrix::zeros(2, 2), &rt)
            .is_none());
    }

    #[test]
    fn duplicate_points_do_not_crash_plusplus() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 20]);
        let m = KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        })
        .fit(&data);
        // All identical: model exists, SSE 0.
        let m = m.unwrap();
        assert!(m.sse < 1e-18);
    }
}
