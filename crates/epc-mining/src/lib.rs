//! # epc-mining
//!
//! Analytics substrate for the INDICE reproduction — the algorithms §2 of
//! the paper delegates to scikit-learn, implemented from scratch:
//!
//! * [`matrix`] — a dense row-major feature matrix with Euclidean metrics;
//! * [`normalize`] — min-max and z-score feature scaling applied before
//!   clustering;
//! * [`kmeans`] — the K-means algorithm (random and k-means++ init, Lloyd
//!   iterations, SSE quality index) of §2.2.2;
//! * [`elbow`] — automatic K selection: "the K value is chosen as the point
//!   where the marginal decrease in the SSE curve is maximized";
//! * [`mod@dbscan`] — DBSCAN for multivariate outlier detection (§2.1.2);
//! * [`kdistance`] — the k-distance-graph heuristic that estimates DBSCAN's
//!   `eps` and `minPoints` parameters;
//! * [`cart`] — a single-feature CART regression tree whose splits become
//!   discretization bins (§2.2.2, footnote 4);
//! * [`discretize`] — binning of continuous attributes into labelled
//!   categories for rule mining;
//! * [`apriori`] — frequent-itemset mining (Apriori);
//! * [`rules`] — association-rule generation with the four quality indices
//!   the paper uses: support, confidence, lift, conviction;
//! * [`support`] — mergeable per-region support counts, so incremental
//!   ingest can fold sealed generations' frequencies without re-scanning.
//!
//! The future-work section of the paper (§4) plans "other analytics
//! techniques (both supervised and unsupervised)"; this crate ships two:
//!
//! * [`hierarchical`] — agglomerative clustering (single / complete /
//!   average linkage) with dendrogram cutting;
//! * [`naive_bayes`] — a Gaussian naive Bayes classifier (e.g. predicting
//!   the EPC class of an uncertified building);
//! * [`silhouette`] — the silhouette quality index used to compare them.

pub mod apriori;
pub mod cart;
pub mod columnar;
pub mod dbscan;
pub mod discretize;
pub mod elbow;
pub mod hierarchical;
pub mod kdistance;
pub mod kmeans;
pub mod matrix;
pub mod naive_bayes;
pub mod normalize;
pub mod rules;
pub mod silhouette;
pub mod support;

pub use apriori::{Apriori, ItemDictionary, Itemset, TransactionSet};
pub use cart::{CartConfig, RegressionTree};
pub use columnar::feature_matrix;
pub use dbscan::{dbscan, DbscanConfig, DbscanLabel, DbscanResult};
pub use discretize::Discretizer;
pub use elbow::{elbow_k, sse_curve};
pub use hierarchical::{agglomerative, hierarchical_clusters, Dendrogram, Linkage};
pub use kmeans::{KMeans, KMeansConfig, KMeansInit, KMeansModel};
pub use matrix::Matrix;
pub use naive_bayes::GaussianNb;
pub use normalize::{MinMaxScaler, ZScoreScaler};
pub use rules::{AssociationRule, RuleConfig};
pub use silhouette::silhouette_score;
pub use support::{RegionSupport, SupportLedger};
