//! A single-feature CART regression tree (Breiman), used by INDICE's
//! discretization step (§2.2.2): "creating a decision CART for each
//! variable, using as response variable the annual primary energy demand
//! normalized on the floor area. The tree splits are used as bins in the
//! discretization process."

/// CART configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CartConfig {
    /// Maximum tree depth (depth 0 = a single leaf).
    pub max_depth: usize,
    /// Minimum samples required in a node to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Minimum SSE improvement a split must achieve (absolute).
    pub min_impurity_decrease: f64,
}

impl Default for CartConfig {
    fn default() -> Self {
        CartConfig {
            max_depth: 2, // depth 2 → up to 4 leaves → up to 3 split bins
            min_samples_split: 20,
            min_samples_leaf: 10,
            min_impurity_decrease: 1e-12,
        }
    }
}

/// A fitted regression tree over one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prediction: f64,
        n: usize,
    },
    Split {
        /// `x ≤ threshold` goes left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl RegressionTree {
    /// Fits a tree of `y` on the single feature `x`. Returns `None` when
    /// the inputs are empty or of different lengths.
    pub fn fit(x: &[f64], y: &[f64], config: &CartConfig) -> Option<Self> {
        if x.is_empty() || x.len() != y.len() {
            return None;
        }
        // Sort (x, y) jointly by x once; nodes work on index ranges.
        let mut order: Vec<usize> = (0..x.len()).collect();
        order.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("NaN feature value"));
        let xs: Vec<f64> = order.iter().map(|&i| x[i]).collect();
        let ys: Vec<f64> = order.iter().map(|&i| y[i]).collect();

        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.build(&xs, &ys, 0, xs.len(), 0, config);
        Some(tree)
    }

    /// Builds the subtree over `xs[lo..hi]`, returning its node index.
    fn build(
        &mut self,
        xs: &[f64],
        ys: &[f64],
        lo: usize,
        hi: usize,
        depth: usize,
        config: &CartConfig,
    ) -> usize {
        let n = hi - lo;
        let mean = ys[lo..hi].iter().sum::<f64>() / n as f64;
        let make_leaf = |this: &mut Self| {
            this.nodes.push(Node::Leaf {
                prediction: mean,
                n,
            });
            this.nodes.len() - 1
        };
        if depth >= config.max_depth || n < config.min_samples_split {
            return make_leaf(self);
        }
        match best_split(&xs[lo..hi], &ys[lo..hi], config) {
            None => make_leaf(self),
            Some((offset, threshold)) => {
                // Reserve this node's slot before children are built.
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    prediction: mean,
                    n,
                });
                let left = self.build(xs, ys, lo, lo + offset, depth + 1, config);
                let right = self.build(xs, ys, lo + offset, hi, depth + 1, config);
                self.nodes[idx] = Node::Split {
                    threshold,
                    left,
                    right,
                };
                idx
            }
        }
    }

    /// Predicts the response for a feature value.
    pub fn predict(&self, x: f64) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prediction, .. } => return *prediction,
                Node::Split {
                    threshold,
                    left,
                    right,
                } => {
                    i = if x <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// All split thresholds, ascending — the discretization bin edges of
    /// footnote 4.
    pub fn split_thresholds(&self) -> Vec<f64> {
        let mut t: Vec<f64> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { threshold, .. } => Some(*threshold),
                _ => None,
            })
            .collect();
        t.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t.dedup();
        t
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

/// Finds the best split of the (x-sorted) range: returns
/// `(offset, threshold)` where `offset` is the size of the left child, or
/// `None` when no admissible split improves impurity.
fn best_split(xs: &[f64], ys: &[f64], config: &CartConfig) -> Option<(usize, f64)> {
    let n = xs.len();
    if n < 2 * config.min_samples_leaf {
        return None;
    }
    // Prefix sums of y and y² for O(1) SSE of any prefix/suffix.
    let mut sum = 0.0;
    let mut sum2 = 0.0;
    let mut prefix_sum = Vec::with_capacity(n + 1);
    let mut prefix_sum2 = Vec::with_capacity(n + 1);
    prefix_sum.push(0.0);
    prefix_sum2.push(0.0);
    for &y in ys {
        sum += y;
        sum2 += y * y;
        prefix_sum.push(sum);
        prefix_sum2.push(sum2);
    }
    let total_sse = sum2 - sum * sum / n as f64;

    let sse = |a: usize, b: usize| -> f64 {
        // SSE of ys[a..b]
        let s = prefix_sum[b] - prefix_sum[a];
        let s2 = prefix_sum2[b] - prefix_sum2[a];
        let m = (b - a) as f64;
        (s2 - s * s / m).max(0.0)
    };

    let mut best: Option<(usize, f64, f64)> = None; // (offset, threshold, sse)
    for i in config.min_samples_leaf..=(n - config.min_samples_leaf) {
        // Only split between distinct x values.
        if i == n || xs[i - 1] == xs[i] {
            continue;
        }
        let candidate = sse(0, i) + sse(i, n);
        if best.map(|(_, _, b)| candidate < b).unwrap_or(true) {
            let threshold = (xs[i - 1] + xs[i]) / 2.0;
            best = Some((i, threshold, candidate));
        }
    }
    let (offset, threshold, best_sse) = best?;
    if total_sse - best_sse < config.min_impurity_decrease {
        return None;
    }
    Some((offset, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A step function: y = 0 for x < 5, y = 10 for x ≥ 5.
    fn step_data() -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 5.0 { 0.0 } else { 10.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn single_step_is_found() {
        let (x, y) = step_data();
        let cfg = CartConfig {
            max_depth: 1,
            min_samples_split: 4,
            min_samples_leaf: 2,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg).unwrap();
        let t = tree.split_thresholds();
        assert_eq!(t.len(), 1);
        assert!((t[0] - 4.95).abs() < 0.1, "threshold ≈ 5, got {}", t[0]);
        assert_eq!(tree.n_leaves(), 2);
        assert!(tree.predict(1.0) < 1e-9);
        assert!((tree.predict(9.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn three_level_staircase_gives_two_or_three_splits() {
        let x: Vec<f64> = (0..300).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                if v < 10.0 {
                    1.0
                } else if v < 20.0 {
                    5.0
                } else {
                    9.0
                }
            })
            .collect();
        let tree = RegressionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        let t = tree.split_thresholds();
        assert!(t.len() >= 2, "{t:?}");
        assert!(t.iter().any(|&v| (v - 10.0).abs() < 0.5), "{t:?}");
        assert!(t.iter().any(|&v| (v - 20.0).abs() < 0.5), "{t:?}");
    }

    #[test]
    fn constant_response_grows_no_splits() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = vec![3.0; 100];
        let tree = RegressionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        assert!(tree.split_thresholds().is_empty());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(42.0), 3.0);
    }

    #[test]
    fn constant_feature_cannot_split() {
        let x = vec![1.0; 50];
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let tree = RegressionTree::fit(&x, &y, &CartConfig::default()).unwrap();
        assert!(tree.split_thresholds().is_empty());
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = step_data();
        let cfg = CartConfig {
            max_depth: 5,
            min_samples_split: 2,
            min_samples_leaf: 30,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg).unwrap();
        // With 100 points and ≥30 per leaf, at most 3 leaves.
        assert!(tree.n_leaves() <= 3);
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let (x, y) = step_data();
        let cfg = CartConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict(0.0) - mean).abs() < 1e-12);
    }

    #[test]
    fn prediction_is_piecewise_constant_mean() {
        let (x, y) = step_data();
        let cfg = CartConfig {
            max_depth: 1,
            min_samples_split: 4,
            min_samples_leaf: 2,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg).unwrap();
        // Predictions at many points are one of the two leaf means.
        for &v in &x {
            let p = tree.predict(v);
            assert!(p.abs() < 1e-9 || (p - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_inputs() {
        assert!(RegressionTree::fit(&[], &[], &CartConfig::default()).is_none());
        assert!(RegressionTree::fit(&[1.0], &[1.0, 2.0], &CartConfig::default()).is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let x = vec![9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0, 0.0];
        let y: Vec<f64> = x.iter().map(|&v| if v < 4.5 { 0.0 } else { 1.0 }).collect();
        let cfg = CartConfig {
            max_depth: 1,
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &cfg).unwrap();
        let t = tree.split_thresholds();
        assert_eq!(t.len(), 1);
        assert!((t[0] - 4.5).abs() < 1e-9);
    }
}
