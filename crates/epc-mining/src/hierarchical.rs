//! Agglomerative hierarchical clustering — one of the "other analytics
//! techniques (both supervised and unsupervised)" the paper's future-work
//! section (§4) plans to integrate into INDICE.
//!
//! Classic bottom-up agglomeration with selectable linkage, implemented
//! over a condensed distance matrix with Lance–Williams updates — `O(n³)`
//! worst case, fine for the cluster-level analyses INDICE runs on feature
//! samples.

use crate::matrix::{euclidean, Matrix};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id (see [`Dendrogram`] id scheme).
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Size of the resulting cluster.
    pub size: usize,
}

/// A full agglomeration history.
///
/// Ids `0..n` are the original points; merge `i` creates cluster `n + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of points clustered.
    pub n_points: usize,
    /// The `n − 1` merges, in agglomeration order (non-decreasing distance
    /// for complete/average linkage on metric data).
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cuts the dendrogram into exactly `k` clusters, returning a label per
    /// point (labels are `0..k`, assigned in first-appearance order).
    /// Returns `None` when `k` is 0 or exceeds the number of points.
    pub fn cut(&self, k: usize) -> Option<Vec<usize>> {
        if k == 0 || k > self.n_points {
            return None;
        }
        // Apply the first n − k merges with a union-find.
        let mut parent: Vec<usize> = (0..self.n_points + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(self.n_points - k).enumerate() {
            let new_id = self.n_points + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        // Compact roots to 0..k labels.
        let mut labels = vec![usize::MAX; self.n_points];
        let mut next = 0usize;
        let mut map = std::collections::BTreeMap::new();
        for (p, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, p);
            let label = *map.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *slot = label;
        }
        debug_assert_eq!(next, k);
        Some(labels)
    }
}

/// Runs agglomerative clustering over the rows of `data` with the given
/// linkage. Returns `None` for fewer than 2 rows.
pub fn agglomerative(data: &Matrix, linkage: Linkage) -> Option<Dendrogram> {
    let n = data.n_rows();
    if n < 2 {
        return None;
    }
    // Active cluster list: (id, size); dist[i][j] between active entries.
    let mut ids: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| euclidean(data.row(i), data.row(j)))
                .collect()
        })
        .collect();
    let mut active: Vec<bool> = vec![true; n];
    let mut merges = Vec::with_capacity(n - 1);
    let mut next_id = n;

    for _ in 0..n - 1 {
        // Find the closest active pair.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for i in 0..dist.len() {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..dist.len() {
                if active[j] && dist[i][j] < best.2 {
                    best = (i, j, dist[i][j]);
                }
            }
        }
        let (i, j, d) = best;
        let merged_size = sizes[i] + sizes[j];
        merges.push(Merge {
            a: ids[i],
            b: ids[j],
            distance: d,
            size: merged_size,
        });
        // Lance–Williams update into slot i; deactivate j.
        for m in 0..dist.len() {
            if !active[m] || m == i || m == j {
                continue;
            }
            let dim = dist[i][m];
            let djm = dist[j][m];
            let new = match linkage {
                Linkage::Single => dim.min(djm),
                Linkage::Complete => dim.max(djm),
                Linkage::Average => {
                    (sizes[i] as f64 * dim + sizes[j] as f64 * djm) / merged_size as f64
                }
            };
            dist[i][m] = new;
            dist[m][i] = new;
        }
        active[j] = false;
        sizes[i] = merged_size;
        ids[i] = next_id;
        next_id += 1;
    }
    Some(Dendrogram {
        n_points: n,
        merges,
    })
}

/// Convenience: agglomerate and cut at `k`.
pub fn hierarchical_clusters(data: &Matrix, k: usize, linkage: Linkage) -> Option<Vec<usize>> {
    agglomerative(data, linkage)?.cut(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)] {
            for i in 0..10 {
                let dx = ((i * 13) % 10) as f64 / 10.0;
                let dy = ((i * 7) % 10) as f64 / 10.0;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_blobs_with_every_linkage() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let labels = hierarchical_clusters(&blobs(), 3, linkage).unwrap();
            assert_eq!(labels.len(), 30);
            for blob in 0..3 {
                let l0 = labels[blob * 10];
                for i in 0..10 {
                    assert_eq!(labels[blob * 10 + i], l0, "{linkage:?}");
                }
            }
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct, vec![0, 1, 2]);
        }
    }

    #[test]
    fn dendrogram_has_n_minus_one_merges() {
        let d = agglomerative(&blobs(), Linkage::Average).unwrap();
        assert_eq!(d.merges.len(), 29);
        assert_eq!(d.merges.last().unwrap().size, 30);
    }

    #[test]
    fn merge_distances_are_nondecreasing_for_complete_linkage() {
        let d = agglomerative(&blobs(), Linkage::Complete).unwrap();
        for w in d.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-12);
        }
    }

    #[test]
    fn cut_extremes() {
        let d = agglomerative(&blobs(), Linkage::Average).unwrap();
        let all_separate = d.cut(30).unwrap();
        let mut u = all_separate.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 30);
        let one = d.cut(1).unwrap();
        assert!(one.iter().all(|&l| l == 0));
        assert_eq!(d.cut(0), None);
        assert_eq!(d.cut(31), None);
    }

    #[test]
    fn single_linkage_chains_where_complete_does_not() {
        // A chain of points: single linkage keeps it one cluster at k=2
        // split only at the biggest gap; complete linkage splits mid-chain.
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 + if i >= 6 { 3.0 } else { 0.0 }, 0.0])
            .collect();
        let m = Matrix::from_rows(&rows);
        let single = hierarchical_clusters(&m, 2, Linkage::Single).unwrap();
        // The gap between index 5 (5.0) and 6 (9.0) is the split point.
        assert_eq!(
            single[..6]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(
            single[6..]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_ne!(single[0], single[6]);
    }

    #[test]
    fn tiny_inputs() {
        let m = Matrix::from_rows(&[vec![0.0]]);
        assert!(agglomerative(&m, Linkage::Average).is_none());
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let d = agglomerative(&m, Linkage::Average).unwrap();
        assert_eq!(d.merges.len(), 1);
        assert_eq!(d.cut(2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn deterministic() {
        let a = hierarchical_clusters(&blobs(), 3, Linkage::Average).unwrap();
        let b = hierarchical_clusters(&blobs(), 3, Linkage::Average).unwrap();
        assert_eq!(a, b);
    }
}
