//! Feature scaling applied before distance-based algorithms.
//!
//! The case study clusters attributes with wildly different ranges (heated
//! surface in hundreds of m² next to efficiencies in `[0, 1]`), so scaling
//! is essential for the Euclidean metric to be meaningful.

use crate::matrix::Matrix;

/// Min-max scaler mapping each feature to `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-feature min/max from `m`; `None` for an empty matrix.
    pub fn fit(m: &Matrix) -> Option<Self> {
        if m.is_empty() {
            return None;
        }
        let d = m.n_cols();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in m.rows() {
            for (j, &x) in row.iter().enumerate() {
                mins[j] = mins[j].min(x);
                maxs[j] = maxs[j].max(x);
            }
        }
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 0.0 {
                    r
                } else {
                    1.0 // constant feature maps to 0
                }
            })
            .collect();
        Some(MinMaxScaler { mins, ranges })
    }

    /// Transforms a matrix into scaled space.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for i in 0..out.n_rows() {
            let row = out.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = (*x - self.mins[j]) / self.ranges[j];
            }
        }
        out
    }

    /// Maps a scaled row back to the original units (used to report
    /// centroids in interpretable units).
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(j, x)| x * self.ranges[j] + self.mins[j])
            .collect()
    }

    /// Fit + transform in one step.
    pub fn fit_transform(m: &Matrix) -> Option<(Self, Matrix)> {
        let s = Self::fit(m)?;
        let t = s.transform(m);
        Some((s, t))
    }
}

/// Z-score scaler (zero mean, unit variance per feature).
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZScoreScaler {
    /// Learns per-feature mean/std from `m`; `None` for an empty matrix.
    pub fn fit(m: &Matrix) -> Option<Self> {
        if m.is_empty() {
            return None;
        }
        let d = m.n_cols();
        let n = m.n_rows() as f64;
        let mut means = vec![0.0; d];
        for row in m.rows() {
            for (j, &x) in row.iter().enumerate() {
                means[j] += x;
            }
        }
        for v in &mut means {
            *v /= n;
        }
        let mut vars = vec![0.0; d];
        for row in m.rows() {
            for (j, &x) in row.iter().enumerate() {
                vars[j] += (x - means[j]).powi(2);
            }
        }
        let stds = vars
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Some(ZScoreScaler { means, stds })
    }

    /// Transforms a matrix into z-score space.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        let mut out = m.clone();
        for i in 0..out.n_rows() {
            let row = out.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = (*x - self.means[j]) / self.stds[j];
            }
        }
        out
    }

    /// Maps a scaled row back to original units.
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(j, x)| x * self.stds[j] + self.means[j])
            .collect()
    }

    /// Fit + transform in one step.
    pub fn fit_transform(m: &Matrix) -> Option<(Self, Matrix)> {
        let s = Self::fit(m)?;
        let t = s.transform(m);
        Some((s, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![0.0, 100.0], vec![5.0, 200.0], vec![10.0, 300.0]])
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let (_, t) = MinMaxScaler::fit_transform(&sample()).unwrap();
        for row in t.rows() {
            for &x in row {
                assert!((0.0..=1.0).contains(&x));
            }
        }
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(1, 1), 0.5);
    }

    #[test]
    fn minmax_inverse_round_trips() {
        let (s, t) = MinMaxScaler::fit_transform(&sample()).unwrap();
        for i in 0..t.n_rows() {
            let back = s.inverse_row(t.row(i));
            for (a, b) in back.iter().zip(sample().row(i)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn minmax_constant_feature_is_zero() {
        let m = Matrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let (_, t) = MinMaxScaler::fit_transform(&m).unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn zscore_mean_zero_var_one() {
        let (_, t) = ZScoreScaler::fit_transform(&sample()).unwrap();
        for j in 0..2 {
            let col = t.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_inverse_round_trips() {
        let (s, t) = ZScoreScaler::fit_transform(&sample()).unwrap();
        for i in 0..t.n_rows() {
            let back = s.inverse_row(t.row(i));
            for (a, b) in back.iter().zip(sample().row(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zscore_constant_feature_is_zero() {
        let m = Matrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]);
        let (_, t) = ZScoreScaler::fit_transform(&m).unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_matrix_cannot_fit() {
        let m = Matrix::zeros(0, 2);
        assert!(MinMaxScaler::fit(&m).is_none());
        assert!(ZScoreScaler::fit(&m).is_none());
    }

    #[test]
    fn transform_unseen_data_uses_fitted_params() {
        let s = MinMaxScaler::fit(&sample()).unwrap();
        let other = Matrix::from_rows(&[vec![20.0, 400.0]]); // outside training range
        let t = s.transform(&other);
        assert_eq!(t.get(0, 0), 2.0, "extrapolation is linear, not clamped");
    }
}
