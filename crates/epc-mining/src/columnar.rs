//! Feature-matrix assembly from the columnar store.
//!
//! The clustering and outlier-detection algorithms in this crate consume a
//! dense row-major [`Matrix`]. The row path assembles it with one
//! point-lookup per (row, feature) cell; this module gathers each feature
//! column once, contiguously, via
//! [`epc_columnar::kernels::gather_complete_rows`] — same complete-rows
//! semantics (a row participates only when *every* feature is present),
//! same row order, bit-identical cell values.

use crate::matrix::Matrix;
use epc_columnar::{kernels, AttrId, ColumnStore};

/// Gathers the complete rows of `feature_ids` into a dense matrix.
///
/// Returns the original store row index of each matrix row plus the matrix
/// itself (`rows.len() × feature_ids.len()`). Mirrors the row path's
/// "skip any row with a missing feature" loop bit-for-bit, so K-means
/// centroids and DBSCAN labels computed from the result are identical to
/// the row engine's.
pub fn feature_matrix(store: &ColumnStore, feature_ids: &[AttrId]) -> (Vec<usize>, Matrix) {
    let (rows, data) = kernels::gather_complete_rows(store, feature_ids);
    let n_rows = rows.len();
    (rows, Matrix::from_vec(data, n_rows, feature_ids.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_columnar::DatasetColumnarExt;
    use epc_model::{AttributeDef, Dataset, Schema, Value};
    use std::sync::Arc;

    #[test]
    fn feature_matrix_matches_row_path_assembly() {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("a", "", ""),
                AttributeDef::numeric("b", "", ""),
            ])
            .unwrap(),
        );
        let ids = [AttrId(0), AttrId(1)];
        let mut ds = Dataset::new(Arc::clone(&schema));
        for i in 0..50 {
            let mut r = ds.empty_record();
            if i % 7 != 3 {
                r.set(ids[0], Value::Num(i as f64 * 0.5)).unwrap();
            }
            if i % 11 != 5 {
                r.set(ids[1], Value::Num(-(i as f64))).unwrap();
            }
            ds.push_record(r).unwrap();
        }

        // Row-path assembly, as `indice` does it.
        let mut want_rows = Vec::new();
        let mut want_data = Vec::new();
        for r in 0..ds.n_rows() {
            if let Some(v) = ids
                .iter()
                .map(|&id| ds.num(r, id))
                .collect::<Option<Vec<f64>>>()
            {
                want_rows.push(r);
                want_data.extend(v);
            }
        }

        let (rows, matrix) = feature_matrix(&ds.to_columns(), &ids);
        assert_eq!(rows, want_rows);
        assert_eq!(matrix.n_rows(), want_rows.len());
        assert_eq!(matrix.n_cols(), ids.len());
        let want = Matrix::from_vec(want_data, want_rows.len(), ids.len());
        assert_eq!(matrix, want);
    }
}
