//! Automatic K selection via the SSE elbow (§2.2.2).
//!
//! "INDICE analyses the trend of the SSE quality index … the K value is
//! chosen as the point where the marginal decrease in the SSE curve is
//! maximized (aka elbow approach)."

use crate::kmeans::{KMeans, KMeansConfig};
use crate::matrix::Matrix;

/// Computes the `(k, SSE)` curve for every `k` in `ks`, fitting a fresh
/// K-means per point with `base` (its `k` field is overridden). Ks that
/// cannot be fitted (e.g. larger than the number of points) are skipped.
pub fn sse_curve(
    data: &Matrix,
    ks: impl IntoIterator<Item = usize>,
    base: &KMeansConfig,
) -> Vec<(usize, f64)> {
    sse_curve_with_runtime(data, ks, base, &epc_runtime::RuntimeConfig::sequential())
}

/// [`sse_curve`] with an explicit execution runtime, forwarded to each
/// K-means fit (the per-K fits themselves run one after another so the
/// curve's order never changes).
pub fn sse_curve_with_runtime(
    data: &Matrix,
    ks: impl IntoIterator<Item = usize>,
    base: &KMeansConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Vec<(usize, f64)> {
    ks.into_iter()
        .filter_map(|k| {
            let cfg = KMeansConfig { k, ..base.clone() };
            KMeans::new(cfg)
                .fit_with_runtime(data, runtime)
                .map(|m| (k, m.sse))
        })
        .collect()
}

/// Picks the elbow of an SSE curve — "the point where the marginal decrease
/// in the SSE curve is maximized": the interior point whose incoming drop is
/// largest *relative to* its outgoing drop (after this K, adding clusters
/// stops paying off). Requires at least 3 points; `None` otherwise.
///
/// The curve must be sorted by ascending `k` (as [`sse_curve`] produces).
pub fn elbow_k(curve: &[(usize, f64)]) -> Option<usize> {
    if curve.len() < 3 {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for w in curve.windows(3) {
        let (_, s0) = w[0];
        let (k1, s1) = w[1];
        let (_, s2) = w[2];
        let drop_in = (s0 - s1).max(0.0);
        let drop_out = (s1 - s2).max(0.0);
        // Guard against perfectly flat tails: a tiny epsilon keeps the
        // ratio finite while preserving ordering.
        let ratio = drop_in / drop_out.max(f64::EPSILON * (1.0 + s0.abs()));
        if best.map(|(_, b)| ratio > b).unwrap_or(true) {
            best = Some((k1, ratio));
        }
    }
    best.map(|(k, _)| k)
}

/// Alternative elbow detector: the point of maximum perpendicular distance
/// from the line joining the curve's endpoints (the "kneedle" geometric
/// heuristic). Requires at least 3 points.
pub fn elbow_k_by_distance(curve: &[(usize, f64)]) -> Option<usize> {
    if curve.len() < 3 {
        return None;
    }
    let (x0, y0) = (curve[0].0 as f64, curve[0].1);
    let (x1, y1) = (curve[curve.len() - 1].0 as f64, curve[curve.len() - 1].1);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return Some(curve[1].0);
    }
    let mut best = (curve[1].0, -1.0);
    for &(k, s) in &curve[1..curve.len() - 1] {
        let d = (dy * (k as f64 - x0) - dx * (s - y0)).abs() / norm;
        if d > best.1 {
            best = (k, d);
        }
    }
    Some(best.0)
}

/// Convenience: sweep `k_min..=k_max`, return `(chosen_k, curve)` using the
/// paper's marginal-decrease criterion.
pub fn select_k(
    data: &Matrix,
    k_min: usize,
    k_max: usize,
    base: &KMeansConfig,
) -> Option<(usize, Vec<(usize, f64)>)> {
    let curve = sse_curve(data, k_min..=k_max, base);
    let k = elbow_k(&curve)?;
    Some((k, curve))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(k_true: usize, per: usize) -> Matrix {
        let mut rows = Vec::new();
        for c in 0..k_true {
            let cx = (c as f64) * 20.0;
            let cy = ((c * 7) % 5) as f64 * 20.0;
            for i in 0..per {
                let dx = (((i * 31 + c) % 100) as f64 / 100.0 - 0.5) * 2.0;
                let dy = (((i * 17 + c * 3) % 100) as f64 / 100.0 - 0.5) * 2.0;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn curve_is_decreasing_for_blobs() {
        let data = blobs(3, 40);
        let curve = sse_curve(&data, 1..=6, &KMeansConfig::default());
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "{curve:?}");
        }
    }

    #[test]
    fn elbow_finds_true_k_on_blobs() {
        let data = blobs(3, 40);
        let (k, curve) = select_k(&data, 1, 8, &KMeansConfig::default()).unwrap();
        assert_eq!(k, 3, "curve: {curve:?}");
        assert_eq!(elbow_k_by_distance(&curve), Some(3));
    }

    #[test]
    fn elbow_on_synthetic_curve() {
        // Hand-built curve with an obvious elbow at k = 4.
        let curve = vec![(2, 1000.0), (3, 600.0), (4, 250.0), (5, 230.0), (6, 215.0)];
        assert_eq!(elbow_k(&curve), Some(4));
        assert_eq!(elbow_k_by_distance(&curve), Some(4));
    }

    #[test]
    fn too_short_curves() {
        assert_eq!(elbow_k(&[(2, 10.0), (3, 5.0)]), None);
        assert_eq!(elbow_k(&[]), None);
        assert_eq!(elbow_k_by_distance(&[(1, 1.0)]), None);
    }

    #[test]
    fn unfittable_ks_are_skipped() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let curve = sse_curve(&data, 1..=10, &KMeansConfig::default());
        assert_eq!(curve.len(), 3, "only k = 1..=3 fit 3 points");
    }

    #[test]
    fn flat_curve_distance_fallback() {
        let curve = vec![(1, 5.0), (2, 5.0), (3, 5.0)];
        // Degenerate but defined.
        assert!(elbow_k_by_distance(&curve).is_some());
    }
}
