//! Discretization of continuous attributes into labelled bins.
//!
//! Association-rule mining "operates on a transactional dataset of
//! categorical attributes, \[so\] a discretization step is needed to convert
//! the original continuously-valued measurements into categorical bins"
//! (§2.2.2). INDICE derives the bin edges from CART split points; footnote 4
//! of the paper lists the concrete bins used in the case study (e.g. Uw:
//! Low = [1.1, 2.05], Medium = (2.05, 2.45], High = (2.45, 3.35],
//! Very high = (3.35, 5.5]).

use crate::cart::{CartConfig, RegressionTree};

/// Default ordinal labels assigned to bins, coarsest scheme first.
const LABEL_SCHEMES: &[&[&str]] = &[
    &["All"],
    &["Low", "High"],
    &["Low", "Medium", "High"],
    &["Low", "Medium", "High", "Very high"],
    &["Very low", "Low", "Medium", "High", "Very high"],
];

/// A labelled binning of one continuous attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    /// The attribute name the bins describe.
    pub attribute: String,
    /// Interior bin edges, ascending. `k` edges define `k + 1` bins:
    /// bin 0 = `(-∞, e0]`, bin i = `(e(i-1), ei]`, bin k = `(ek-1, +∞)`.
    pub edges: Vec<f64>,
    /// One label per bin (`edges.len() + 1` labels).
    pub labels: Vec<String>,
}

impl Discretizer {
    /// Builds a discretizer from explicit edges and labels.
    /// `labels.len()` must be `edges.len() + 1` and edges must ascend.
    pub fn new(attribute: &str, edges: Vec<f64>, labels: Vec<String>) -> Option<Self> {
        if labels.len() != edges.len() + 1 {
            return None;
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(Discretizer {
            attribute: attribute.to_owned(),
            edges,
            labels,
        })
    }

    /// Builds a discretizer from edges with automatic ordinal labels
    /// (Low / Medium / High …, matching the paper's naming).
    pub fn with_auto_labels(attribute: &str, edges: Vec<f64>) -> Option<Self> {
        let n_bins = edges.len() + 1;
        let labels: Vec<String> = match LABEL_SCHEMES.get(n_bins - 1) {
            Some(scheme) => scheme.iter().map(|s| s.to_string()).collect(),
            None => (0..n_bins).map(|i| format!("Bin{i}")).collect(),
        };
        Discretizer::new(attribute, edges, labels)
    }

    /// The paper's pipeline: fit a CART of `response` on `values` and use
    /// its split points as bin edges. Returns `None` when CART cannot fit.
    pub fn from_cart(
        attribute: &str,
        values: &[f64],
        response: &[f64],
        config: &CartConfig,
    ) -> Option<Self> {
        let tree = RegressionTree::fit(values, response, config)?;
        Discretizer::with_auto_labels(attribute, tree.split_thresholds())
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.labels.len()
    }

    /// The bin index of a value.
    pub fn bin_index(&self, x: f64) -> usize {
        // First edge ≥ x decides the bin (bins are right-closed).
        match self.edges.iter().position(|&e| x <= e) {
            Some(i) => i,
            None => self.edges.len(),
        }
    }

    /// The bin label of a value.
    pub fn bin_label(&self, x: f64) -> &str {
        &self.labels[self.bin_index(x)]
    }

    /// An item string for the transactional encoding:
    /// `"attribute=Label"`.
    pub fn item(&self, x: f64) -> String {
        format!("{}={}", self.attribute, self.bin_label(x))
    }

    /// Human-readable description of each bin's interval, in the footnote-4
    /// style (`"Medium = (2.05, 2.45]"`).
    pub fn describe_bins(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.n_bins());
        for (i, label) in self.labels.iter().enumerate() {
            let lo = if i == 0 {
                "-inf".to_owned()
            } else {
                format!("{}", self.edges[i - 1])
            };
            let hi = if i == self.edges.len() {
                "+inf".to_owned()
            } else {
                format!("{}", self.edges[i])
            };
            out.push(format!("{label} = ({lo}, {hi}]"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's footnote-4 bins for the average U-value of the windows.
    fn uw_discretizer() -> Discretizer {
        Discretizer::with_auto_labels("u_windows", vec![2.05, 2.45, 3.35]).unwrap()
    }

    #[test]
    fn footnote4_uw_bins() {
        let d = uw_discretizer();
        assert_eq!(d.n_bins(), 4);
        assert_eq!(d.bin_label(1.5), "Low");
        assert_eq!(d.bin_label(2.05), "Low", "right-closed at 2.05");
        assert_eq!(d.bin_label(2.2), "Medium");
        assert_eq!(d.bin_label(2.45), "Medium");
        assert_eq!(d.bin_label(3.0), "High");
        assert_eq!(d.bin_label(4.0), "Very high");
        assert_eq!(d.item(4.0), "u_windows=Very high");
    }

    #[test]
    fn three_bin_scheme() {
        // Footnote 4, Uo: Low [0.15, 0.45], Medium (0.45, 0.65], High (0.65, 1.1].
        let d = Discretizer::with_auto_labels("u_opaque", vec![0.45, 0.65]).unwrap();
        assert_eq!(d.labels, vec!["Low", "Medium", "High"]);
        assert_eq!(d.bin_label(0.3), "Low");
        assert_eq!(d.bin_label(0.5), "Medium");
        assert_eq!(d.bin_label(0.9), "High");
    }

    #[test]
    fn bins_partition_the_line() {
        let d = uw_discretizer();
        for x in [-5.0, 0.0, 2.05, 2.06, 2.45, 3.35, 3.36, 100.0] {
            let idx = d.bin_index(x);
            assert!(idx < d.n_bins());
        }
        // Monotone: bigger x never gets a smaller bin.
        let mut prev = 0;
        for i in 0..100 {
            let idx = d.bin_index(i as f64 / 10.0);
            assert!(idx >= prev);
            prev = idx;
        }
    }

    #[test]
    fn no_edges_single_bin() {
        let d = Discretizer::with_auto_labels("x", vec![]).unwrap();
        assert_eq!(d.n_bins(), 1);
        assert_eq!(d.bin_label(1e9), "All");
        assert_eq!(d.bin_label(-1e9), "All");
    }

    #[test]
    fn invalid_construction() {
        assert!(Discretizer::new("x", vec![1.0, 2.0], vec!["a".into()]).is_none());
        assert!(Discretizer::new(
            "x",
            vec![2.0, 1.0],
            vec!["a".into(), "b".into(), "c".into()]
        )
        .is_none());
        assert!(Discretizer::new(
            "x",
            vec![1.0, 1.0],
            vec!["a".into(), "b".into(), "c".into()]
        )
        .is_none());
    }

    #[test]
    fn many_bins_get_generated_labels() {
        let d = Discretizer::with_auto_labels("x", (1..=9).map(|i| i as f64).collect()).unwrap();
        assert_eq!(d.n_bins(), 10);
        assert_eq!(d.bin_label(0.5), "Bin0");
        assert_eq!(d.bin_label(9.5), "Bin9");
    }

    #[test]
    fn from_cart_recovers_a_step_boundary() {
        let x: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v < 5.0 { 10.0 } else { 90.0 })
            .collect();
        let cfg = CartConfig {
            max_depth: 1,
            min_samples_split: 4,
            min_samples_leaf: 2,
            ..Default::default()
        };
        let d = Discretizer::from_cart("eph_driver", &x, &y, &cfg).unwrap();
        assert_eq!(d.n_bins(), 2);
        assert_eq!(d.labels, vec!["Low", "High"]);
        assert_eq!(d.bin_label(1.0), "Low");
        assert_eq!(d.bin_label(9.0), "High");
    }

    #[test]
    fn describe_bins_mentions_edges() {
        let d = uw_discretizer();
        let desc = d.describe_bins();
        assert_eq!(desc.len(), 4);
        assert!(desc[0].contains("Low") && desc[0].contains("2.05"));
        assert!(desc[3].contains("Very high") && desc[3].contains("+inf"));
    }
}
