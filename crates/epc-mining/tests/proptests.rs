//! Property-based tests of the mining substrate: K-means invariants,
//! Apriori anti-monotonicity, discretizer totality, DBSCAN label sanity,
//! and scaler round-trips.

use epc_mining::apriori::{is_subset, Apriori, TransactionSet};
use epc_mining::dbscan::{dbscan, DbscanConfig, DbscanLabel};
use epc_mining::discretize::Discretizer;
use epc_mining::kmeans::{KMeans, KMeansConfig};
use epc_mining::matrix::{sq_euclidean, Matrix};
use epc_mining::normalize::{MinMaxScaler, ZScoreScaler};
use proptest::prelude::*;
use std::collections::HashMap;

fn points(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 2), 4..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_assigns_to_nearest_centroid(rows in points(60), k in 1usize..5, seed in 0u64..5) {
        prop_assume!(rows.len() >= k);
        let m = Matrix::from_rows(&rows);
        let model = KMeans::new(KMeansConfig { k, seed, ..Default::default() })
            .fit(&m)
            .unwrap();
        for (i, row) in m.rows().enumerate() {
            let assigned = sq_euclidean(row, model.centroids.row(model.assignments[i]));
            for c in 0..k {
                prop_assert!(assigned <= sq_euclidean(row, model.centroids.row(c)) + 1e-9);
            }
        }
        // SSE is exactly the sum of assigned squared distances.
        let sse: f64 = m
            .rows()
            .enumerate()
            .map(|(i, row)| sq_euclidean(row, model.centroids.row(model.assignments[i])))
            .sum();
        prop_assert!((sse - model.sse).abs() < 1e-6 * (1.0 + sse));
    }

    #[test]
    fn kmeans_partitions_everything(rows in points(60), k in 1usize..6) {
        prop_assume!(rows.len() >= k);
        let m = Matrix::from_rows(&rows);
        let model = KMeans::new(KMeansConfig { k, ..Default::default() }).fit(&m).unwrap();
        prop_assert_eq!(model.assignments.len(), m.n_rows());
        prop_assert!(model.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(model.cluster_sizes().iter().sum::<usize>(), m.n_rows());
    }

    #[test]
    fn minmax_scales_into_unit_box(rows in points(50)) {
        let m = Matrix::from_rows(&rows);
        let (s, t) = MinMaxScaler::fit_transform(&m).unwrap();
        for row in t.rows() {
            for &x in row {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&x));
            }
        }
        // Inverse round-trips.
        for i in 0..t.n_rows() {
            for (a, b) in s.inverse_row(t.row(i)).iter().zip(m.row(i)) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn zscore_inverse_round_trips(rows in points(50)) {
        let m = Matrix::from_rows(&rows);
        let (s, t) = ZScoreScaler::fit_transform(&m).unwrap();
        for i in 0..t.n_rows() {
            for (a, b) in s.inverse_row(t.row(i)).iter().zip(m.row(i)) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn dbscan_labels_are_dense_and_complete(rows in points(60), eps in 1.0f64..50.0, min_pts in 1usize..6) {
        let m = Matrix::from_rows(&rows);
        let res = dbscan(&m, &DbscanConfig { eps, min_points: min_pts });
        prop_assert_eq!(res.labels.len(), m.n_rows());
        for l in &res.labels {
            if let DbscanLabel::Cluster(c) = l {
                prop_assert!(*c < res.n_clusters);
            }
        }
        // Every cluster id is used.
        let sizes = res.cluster_sizes();
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn discretizer_bins_partition_the_line(edges in prop::collection::vec(-100.0f64..100.0, 0..6), x in -200.0f64..200.0) {
        let mut sorted = edges.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        let d = Discretizer::with_auto_labels("attr", sorted.clone()).unwrap();
        let idx = d.bin_index(x);
        prop_assert!(idx < d.n_bins());
        // Monotone in x.
        let idx2 = d.bin_index(x + 50.0);
        prop_assert!(idx2 >= idx);
        // The label exists.
        prop_assert!(!d.bin_label(x).is_empty());
    }

    #[test]
    fn is_subset_respects_set_semantics(
        a in prop::collection::btree_set(0u32..30, 0..8),
        b in prop::collection::btree_set(0u32..30, 0..12),
    ) {
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        prop_assert_eq!(is_subset(&av, &bv), a.is_subset(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Apriori's defining property: support is anti-monotone over the
    /// subset lattice, and reported counts match brute-force recounts.
    #[test]
    fn apriori_counts_are_exact(
        transactions in prop::collection::vec(
            prop::collection::btree_set(0u8..8, 1..6),
            4..30,
        ),
        min_support in 0.1f64..0.6,
    ) {
        let mut tset = TransactionSet::new();
        for t in &transactions {
            let items: Vec<String> = t.iter().map(|i| format!("item{i}")).collect();
            tset.push_owned(&items);
        }
        let frequent = Apriori { min_support, max_len: 4 }.mine(&tset);
        let by_items: HashMap<&[u32], usize> =
            frequent.iter().map(|f| (f.items.as_slice(), f.count)).collect();
        let min_count = (min_support * transactions.len() as f64).ceil().max(1.0) as usize;
        for f in &frequent {
            // Exact recount.
            let actual = tset
                .transactions()
                .iter()
                .filter(|t| is_subset(&f.items, t))
                .count();
            prop_assert_eq!(actual, f.count);
            prop_assert!(f.count >= min_count);
            // Anti-monotonicity.
            if f.items.len() >= 2 {
                for skip in 0..f.items.len() {
                    let sub: Vec<u32> = f
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != skip)
                        .map(|(_, &v)| v)
                        .collect();
                    let sub_count = by_items.get(sub.as_slice());
                    prop_assert!(sub_count.is_some(), "missing subset of a frequent set");
                    prop_assert!(*sub_count.unwrap() >= f.count);
                }
            }
        }
    }
}
