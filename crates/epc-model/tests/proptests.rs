//! Property-based tests of the data-model layer: CSV round-trips over
//! arbitrary content, dataset selection invariants, and schema lookups.
// Test code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::{csv, AttrId, AttributeDef, Dataset, Record, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            AttributeDef::numeric("x", "", ""),
            AttributeDef::categorical("label", ""),
            AttributeDef::numeric("y", "m", ""),
        ])
        .unwrap(),
    )
}

type Row = (Option<f64>, Option<String>, Option<f64>);

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop::option::of(-1e9f64..1e9),
        prop::option::of("[ -~]{0,20}"), // printable ASCII incl. commas/quotes
        prop::option::of(-1e9f64..1e9),
    )
}

fn build(rows: &[Row]) -> Dataset {
    let mut ds = Dataset::new(schema());
    for (x, label, y) in rows {
        let mut r = ds.empty_record();
        r.set(AttrId(0), Value::from(*x)).unwrap();
        r.set(
            AttrId(1),
            label.clone().map(Value::Cat).unwrap_or(Value::Missing),
        )
        .unwrap();
        r.set(AttrId(2), Value::from(*y)).unwrap();
        ds.push_record(r).unwrap();
    }
    ds
}

proptest! {
    #[test]
    fn csv_round_trip_preserves_values(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let ds = build(&rows);
        let text = csv::to_csv(&ds);
        let back = csv::from_csv(ds.schema_arc(), &text).unwrap();
        prop_assert_eq!(back.n_rows(), ds.n_rows());
        for row in 0..ds.n_rows() {
            // Numbers survive through decimal formatting.
            match (ds.num(row, AttrId(0)), back.num(row, AttrId(0))) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs())),
                (a, b) => prop_assert_eq!(a.is_none(), b.is_none()),
            }
            // Labels survive exactly — unless the label was the empty
            // string, which is indistinguishable from missing in CSV.
            let orig = ds.cat(row, AttrId(1));
            let got = back.cat(row, AttrId(1));
            match orig {
                Some("") => prop_assert_eq!(got, None),
                other => prop_assert_eq!(got, other),
            }
        }
    }

    #[test]
    fn select_rows_is_faithful(rows in prop::collection::vec(row_strategy(), 1..30), indices in prop::collection::vec(0usize..30, 0..15)) {
        let ds = build(&rows);
        let valid: Vec<usize> = indices.into_iter().filter(|&i| i < ds.n_rows()).collect();
        let sel = ds.select_rows(&valid).unwrap();
        prop_assert_eq!(sel.n_rows(), valid.len());
        for (new_row, &orig) in valid.iter().enumerate() {
            prop_assert_eq!(sel.value(new_row, AttrId(0)), ds.value(orig, AttrId(0)));
            prop_assert_eq!(sel.value(new_row, AttrId(1)), ds.value(orig, AttrId(1)));
        }
    }

    #[test]
    fn filter_mask_keeps_exactly_true_rows(rows in prop::collection::vec(row_strategy(), 1..30), seed in 0u64..1000) {
        let ds = build(&rows);
        let mask: Vec<bool> = (0..ds.n_rows()).map(|i| !(i as u64 + seed).is_multiple_of(3)).collect();
        let filtered = ds.filter_mask(&mask).unwrap();
        prop_assert_eq!(filtered.n_rows(), mask.iter().filter(|&&b| b).count());
    }

    #[test]
    fn missing_counts_match_scan(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let ds = build(&rows);
        let by_scan = (0..ds.n_rows())
            .map(|r| {
                usize::from(ds.value(r, AttrId(0)).is_missing())
                    + usize::from(ds.value(r, AttrId(1)).is_missing())
                    + usize::from(ds.value(r, AttrId(2)).is_missing())
            })
            .sum::<usize>();
        prop_assert_eq!(ds.total_missing(), by_scan);
    }

    #[test]
    fn set_value_then_get_round_trips(rows in prop::collection::vec(row_strategy(), 1..20), v in -1e9f64..1e9) {
        let mut ds = build(&rows);
        let row = ds.n_rows() - 1;
        ds.set_value(row, AttrId(0), Value::num(v)).unwrap();
        prop_assert_eq!(ds.num(row, AttrId(0)), Some(v));
        ds.set_value(row, AttrId(1), Value::cat("patched")).unwrap();
        prop_assert_eq!(ds.cat(row, AttrId(1)), Some("patched"));
    }

    #[test]
    fn records_reject_wrong_kinds(x in -1e9f64..1e9) {
        let mut ds = Dataset::new(schema());
        let mut r = Record::missing(3);
        r.set(AttrId(1), Value::num(x)).unwrap(); // numeric into categorical
        prop_assert!(ds.push_record(r).is_err());
        prop_assert_eq!(ds.n_rows(), 0);
        // And the dataset stays usable.
        let mut ok = ds.empty_record();
        ok.set(AttrId(0), Value::num(x)).unwrap();
        prop_assert!(ds.push_record(ok).is_ok());
    }
}
