//! The EPC schema: an ordered list of attribute definitions with name lookup,
//! plus the standard 132-attribute schema of the Piedmont collection.

use crate::attribute::{AttrId, AttributeDef};
use crate::error::ModelError;
use crate::wellknown as wk;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, shareable attribute schema.
///
/// Attribute ids are dense indices in definition order, so `Schema` can be
/// used to index columnar storage directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<AttributeDef>,
    #[serde(skip)]
    by_name: HashMap<String, AttrId>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.attrs == other.attrs
    }
}
impl Eq for Schema {}

impl Schema {
    /// Builds a schema from attribute definitions.
    ///
    /// Returns [`ModelError::DuplicateAttribute`] when two definitions share
    /// a name.
    pub fn new(attrs: Vec<AttributeDef>) -> Result<Self, ModelError> {
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, def) in attrs.iter().enumerate() {
            if by_name.insert(def.name.clone(), AttrId(i as u32)).is_some() {
                return Err(ModelError::DuplicateAttribute(def.name.clone()));
            }
        }
        Ok(Schema { attrs, by_name })
    }

    /// Rebuilds the name index (needed after deserialization, where the
    /// index is skipped).
    pub fn reindex(&mut self) {
        self.by_name = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), AttrId(i as u32)))
            .collect();
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, or errors.
    pub fn require(&self, name: &str) -> Result<AttrId, ModelError> {
        self.attr_id(name)
            .ok_or_else(|| ModelError::UnknownAttribute(name.to_owned()))
    }

    /// The definition of an attribute by id.
    pub fn def(&self, id: AttrId) -> Option<&AttributeDef> {
        self.attrs.get(id.index())
    }

    /// The definition of an attribute by name.
    pub fn def_by_name(&self, name: &str) -> Option<&AttributeDef> {
        self.attr_id(name).and_then(|id| self.def(id))
    }

    /// Iterates `(id, definition)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttributeDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u32), d))
    }

    /// Ids of all numeric attributes.
    pub fn numeric_ids(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, d)| d.kind.is_numeric())
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all categorical attributes.
    pub fn categorical_ids(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, d)| d.kind.is_categorical())
            .map(|(id, _)| id)
            .collect()
    }

    /// Counts of (numeric, categorical) attributes.
    pub fn kind_counts(&self) -> (usize, usize) {
        let numeric = self.attrs.iter().filter(|d| d.kind.is_numeric()).count();
        (numeric, self.attrs.len() - numeric)
    }
}

/// Builds the standard 132-attribute EPC schema mirroring the Piedmont
/// collection analysed by the paper: 43 quantitative and 89 categorical
/// attributes, including the geospatial fields repaired by the cleaning
/// step and the thermo-physical features of the case study.
pub fn standard_epc_schema() -> Arc<Schema> {
    let mut defs: Vec<AttributeDef> = Vec::with_capacity(132);

    // --- Categorical: identification & geography (8) ---
    defs.push(AttributeDef::categorical(
        wk::CERTIFICATE_ID,
        "Unique certificate identifier",
    ));
    defs.push(AttributeDef::categorical(
        wk::ADDRESS,
        "Free-text street address (noisy)",
    ));
    defs.push(AttributeDef::categorical(wk::HOUSE_NUMBER, "Civic number"));
    defs.push(AttributeDef::categorical(wk::ZIP_CODE, "Postal code"));
    defs.push(AttributeDef::categorical(wk::CITY, "Municipality"));
    defs.push(AttributeDef::categorical(
        wk::DISTRICT,
        "Administrative district",
    ));
    defs.push(AttributeDef::categorical(
        wk::NEIGHBOURHOOD,
        "Neighbourhood",
    ));
    defs.push(AttributeDef::categorical(
        wk::ISSUE_YEAR,
        "Year the certificate was issued",
    ));

    // --- Numeric: geolocation (2) ---
    defs.push(AttributeDef::numeric(wk::LATITUDE, "deg", "WGS84 latitude"));
    defs.push(AttributeDef::numeric(
        wk::LONGITUDE,
        "deg",
        "WGS84 longitude",
    ));

    // --- Numeric: case-study thermo-physical features (6) ---
    defs.push(AttributeDef::numeric(
        wk::ASPECT_RATIO,
        "1/m",
        "Aspect ratio S/V (dispersing surface over heated volume)",
    ));
    defs.push(AttributeDef::numeric(
        wk::U_OPAQUE,
        "W/m2K",
        "Average U-value of the vertical opaque envelope",
    ));
    defs.push(AttributeDef::numeric(
        wk::U_WINDOWS,
        "W/m2K",
        "Average U-value of the windows",
    ));
    defs.push(AttributeDef::numeric(
        wk::HEAT_SURFACE,
        "m2",
        "Heated floor area",
    ));
    defs.push(AttributeDef::numeric(
        wk::ETA_H,
        "",
        "Average global efficiency for space heating (ETAH)",
    ));
    defs.push(AttributeDef::numeric(
        wk::EPH,
        "kWh/m2yr",
        "Normalized primary heating energy consumption (response variable)",
    ));

    // --- Numeric: other energy-performance indices (7) ---
    for (name, unit, desc) in [
        (wk::EP_GLOBAL, "kWh/m2yr", "Global energy-performance index"),
        ("ep_cooling", "kWh/m2yr", "Cooling energy-performance index"),
        (
            "ep_dhw",
            "kWh/m2yr",
            "Domestic-hot-water energy-performance index",
        ),
        (
            "ep_lighting",
            "kWh/m2yr",
            "Lighting energy-performance index",
        ),
        ("co2_emissions", "kg/m2yr", "Specific CO2 emissions"),
        (
            "renewable_share",
            "%",
            "Share of demand covered by renewables",
        ),
        (
            "energy_cost_index",
            "EUR/m2yr",
            "Estimated specific running cost",
        ),
    ] {
        defs.push(AttributeDef::numeric(name, unit, desc));
    }

    // --- Numeric: geometry (11) ---
    for (name, unit, desc) in [
        (wk::HEATED_VOLUME, "m3", "Gross heated volume"),
        ("floor_area", "m2", "Net floor area"),
        ("glazed_surface", "m2", "Total glazed surface"),
        ("opaque_surface", "m2", "Total opaque dispersing surface"),
        ("dispersing_surface", "m2", "Total dispersing surface"),
        ("n_floors", "", "Number of floors of the building"),
        ("floor_height", "m", "Average inter-floor height"),
        ("window_area_ratio", "", "Glazed over total facade surface"),
        (
            "n_apartments",
            "",
            "Number of housing units in the building",
        ),
        (
            "shading_factor",
            "",
            "Average external shading reduction factor",
        ),
        (
            "thermal_bridge_factor",
            "",
            "Thermal-bridging surcharge factor",
        ),
    ] {
        defs.push(AttributeDef::numeric(name, unit, desc));
    }

    // --- Numeric: envelope detail (3) ---
    for (name, unit, desc) in [
        ("roof_u_value", "W/m2K", "Average U-value of the roof"),
        (
            "floor_u_value",
            "W/m2K",
            "Average U-value of the lowest floor",
        ),
        ("air_change_rate", "1/h", "Average air-change rate"),
    ] {
        defs.push(AttributeDef::numeric(name, unit, desc));
    }

    // --- Numeric: plant & subsystem efficiencies (9) ---
    for (name, unit, desc) in [
        (wk::ETA_GENERATION, "", "Generation-subsystem efficiency"),
        (
            wk::ETA_DISTRIBUTION,
            "",
            "Distribution-subsystem efficiency",
        ),
        (wk::ETA_EMISSION, "", "Emission-subsystem efficiency"),
        (wk::ETA_CONTROL, "", "Control-subsystem efficiency"),
        ("boiler_power", "kW", "Nominal generator power"),
        ("boiler_efficiency", "", "Nominal generator efficiency"),
        ("dhw_demand", "kWh/yr", "Annual domestic-hot-water demand"),
        (
            "solar_thermal_area",
            "m2",
            "Installed solar-thermal collector area",
        ),
        ("pv_power", "kW", "Installed photovoltaic peak power"),
    ] {
        defs.push(AttributeDef::numeric(name, unit, desc));
    }

    // --- Numeric: context & operation (5) ---
    for (name, unit, desc) in [
        (wk::CONSTRUCTION_YEAR, "", "Year of construction"),
        ("renovation_year", "", "Year of the last major renovation"),
        ("degree_days", "", "Heating degree-days of the location"),
        ("indoor_temp_setpoint", "C", "Heating set-point temperature"),
        (
            "heating_hours",
            "h/day",
            "Daily heating-plant activation hours",
        ),
    ] {
        defs.push(AttributeDef::numeric(name, unit, desc));
    }

    // --- Categorical: building & plant taxonomy (33) ---
    for (name, desc) in [
        (
            wk::BUILDING_CATEGORY,
            "Intended use per DPR 412/93 (E.1.1 = permanent residence)",
        ),
        (wk::EPC_CLASS, "Energy-performance class (A4..G)"),
        (wk::HEATING_FUEL, "Heating-system fuel"),
        ("dhw_fuel", "Domestic-hot-water fuel"),
        ("boiler_type", "Generator type"),
        ("emitter_type", "Emission terminal type"),
        ("distribution_type", "Distribution-network type"),
        ("control_type", "Regulation/control-system type"),
        ("ventilation_type", "Ventilation-system type"),
        (wk::CONSTRUCTION_PERIOD, "Construction-period band"),
        ("wall_type", "Prevailing vertical-envelope technology"),
        ("roof_type", "Roof technology"),
        ("floor_type", "Lowest-floor technology"),
        ("window_frame", "Prevailing window-frame material"),
        ("glazing_type", "Prevailing glazing type"),
        ("shading_device", "External shading device"),
        ("occupancy_type", "Occupancy profile"),
        ("ownership", "Ownership regime"),
        ("certifier_qualification", "Qualification of the certifier"),
        ("inspection_type", "On-site inspection modality"),
        ("climate_zone", "Italian climate zone (A..F)"),
        ("exposure", "Prevailing facade exposure"),
        ("adjacency", "Adjacency condition of the unit"),
        ("basement_type", "Basement condition"),
        ("attic_type", "Attic condition"),
        ("renewable_type", "Installed renewable technology"),
        ("cooling_system", "Cooling-system type"),
        ("heat_pump_type", "Heat-pump type, if any"),
        ("solar_orientation", "Main solar orientation"),
        ("facade_condition", "Facade conservation state"),
        ("retrofit_level", "Depth of past energy retrofits"),
        ("energy_vector", "Main delivered energy vector"),
        ("heating_emission_layout", "Emitter placement layout"),
    ] {
        defs.push(AttributeDef::categorical(name, desc));
    }

    // --- Categorical: boolean equipment/condition flags (28) ---
    for (name, desc) in [
        ("has_condensing_boiler", "Condensing generator installed"),
        ("has_solar_thermal", "Solar-thermal system installed"),
        ("has_pv", "Photovoltaic system installed"),
        ("has_heat_pump", "Heat pump installed"),
        ("has_district_heating", "Connected to district heating"),
        ("has_thermostatic_valves", "Thermostatic valves installed"),
        ("has_double_glazing", "Double (or better) glazing"),
        ("has_roof_insulation", "Roof insulation present"),
        ("has_wall_insulation", "Wall insulation present"),
        ("has_floor_insulation", "Floor insulation present"),
        (
            "has_mechanical_ventilation",
            "Mechanical ventilation present",
        ),
        ("has_heat_recovery", "Ventilation heat recovery present"),
        ("has_bms", "Building management system present"),
        ("has_led_lighting", "Prevailing LED lighting"),
        ("has_elevator", "Elevator present"),
        ("has_garage", "Garage attached"),
        ("has_balcony", "Balconies present"),
        ("has_cellar", "Cellar present"),
        ("has_smart_thermostat", "Smart thermostat installed"),
        ("has_ev_charging", "EV charging point present"),
        ("has_green_roof", "Green roof present"),
        ("has_rainwater_reuse", "Rainwater-reuse system present"),
        ("is_listed_building", "Building under heritage protection"),
        ("is_social_housing", "Social-housing unit"),
        ("is_detached", "Detached building"),
        ("is_corner_unit", "Corner housing unit"),
        ("is_top_floor", "Top-floor unit"),
        ("is_ground_floor", "Ground-floor unit"),
    ] {
        defs.push(AttributeDef::categorical(name, desc));
    }

    // --- Categorical: recommended interventions & administrative (20) ---
    for (name, desc) in [
        ("reco_envelope", "Recommended envelope intervention"),
        ("reco_windows", "Recommended window intervention"),
        ("reco_boiler", "Recommended generator intervention"),
        ("reco_renewables", "Recommended renewable intervention"),
        ("reco_controls", "Recommended control intervention"),
        ("subsidy_eligibility", "Eligible subsidy scheme"),
        ("gas_meter_type", "Gas-meter type"),
        ("electric_meter_type", "Electric-meter type"),
        ("water_heating_location", "DHW generator placement"),
        ("chimney_type", "Flue/chimney type"),
        ("radiator_material", "Radiator material"),
        (
            "pipe_insulation_level",
            "Distribution-pipe insulation level",
        ),
        ("window_shutter_type", "Shutter/blind type"),
        ("entrance_orientation", "Entrance orientation"),
        ("stairwell_heated", "Stairwell heating condition"),
        ("party_wall_exposure", "Party-wall exposure condition"),
        (
            "certificate_purpose",
            "Reason the EPC was issued (sale/rent/new)",
        ),
        (
            "previous_class",
            "Class in the previous certificate, if any",
        ),
        (
            "calculation_software",
            "Software used for the standard calculation",
        ),
        ("data_quality_flag", "Certifier-declared input-data quality"),
    ] {
        defs.push(AttributeDef::categorical(name, desc));
    }

    // Static table: attribute names are unique by construction, checked by
    // the debug assertion below and the schema tests.
    #[allow(clippy::expect_used)]
    let schema = Schema::new(defs).expect("standard schema has unique names");
    debug_assert_eq!(
        schema.len(),
        132,
        "standard schema must have 132 attributes"
    );
    Arc::new(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schema_has_paper_shape() {
        let s = standard_epc_schema();
        assert_eq!(s.len(), 132);
        let (numeric, categorical) = s.kind_counts();
        assert_eq!(numeric, 43, "paper: 43 quantitative attributes");
        assert_eq!(categorical, 89, "paper: 89 categorical attributes");
    }

    #[test]
    fn standard_schema_contains_case_study_attributes() {
        let s = standard_epc_schema();
        for name in wk::CASE_STUDY_FEATURES {
            let def = s
                .def_by_name(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(def.kind.is_numeric(), "{name} must be numeric");
        }
        assert!(s.def_by_name(wk::EPH).unwrap().kind.is_numeric());
        for name in wk::GEO_ATTRIBUTES {
            assert!(s.def_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let s = standard_epc_schema();
        for (i, (id, def)) in s.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(s.attr_id(&def.name), Some(id));
            assert_eq!(s.def(id).unwrap().name, def.name);
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let defs = vec![
            AttributeDef::numeric("x", "", ""),
            AttributeDef::categorical("x", ""),
        ];
        assert_eq!(
            Schema::new(defs).unwrap_err(),
            ModelError::DuplicateAttribute("x".into())
        );
    }

    #[test]
    fn require_errors_on_unknown() {
        let s = standard_epc_schema();
        assert!(s.require(wk::EPH).is_ok());
        assert_eq!(
            s.require("nope").unwrap_err(),
            ModelError::UnknownAttribute("nope".into())
        );
    }

    #[test]
    fn numeric_and_categorical_ids_partition_schema() {
        let s = standard_epc_schema();
        let n = s.numeric_ids();
        let c = s.categorical_ids();
        assert_eq!(n.len() + c.len(), s.len());
        for id in &n {
            assert!(s.def(*id).unwrap().kind.is_numeric());
        }
        for id in &c {
            assert!(s.def(*id).unwrap().kind.is_categorical());
        }
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let s = standard_epc_schema();
        let json = serde_json::to_string(&*s).unwrap();
        let mut back: Schema = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert_eq!(*s, back);
        assert_eq!(back.attr_id(wk::EPH), s.attr_id(wk::EPH));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.kind_counts(), (0, 0));
    }
}
