//! Typed record faults and the quarantine sink of the fault-tolerant
//! pipeline.
//!
//! The paper's EPC collections are noisy — misspelled addresses, missing
//! or out-of-range attributes, failed geocodes — and a production pipeline
//! must survive them. Instead of panicking (or silently dropping rows),
//! malformed records are diverted into a [`Quarantine`] carrying a typed
//! [`RecordFault`], and the run continues on the surviving records. The
//! quarantine exposes exact per-kind histograms so stage reports can
//! account for every diverted record.

use crate::dataset::Dataset;
use crate::jsonnum::{decode_f64, encode_f64};
use crate::value::Value;
use serde::Value as JsonValue;
use std::collections::BTreeMap;
use std::fmt;

/// Why a record was quarantined instead of processed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordFault {
    /// A CSV row failed to parse (bad arity, unparsable number,
    /// unterminated quote, …).
    CsvParse {
        /// 1-based line number in the source document.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A quantitative value was NaN or ±∞.
    NonFinite {
        /// Offending attribute.
        attribute: String,
    },
    /// A quantitative value fell outside its plausible range.
    OutOfRange {
        /// Offending attribute.
        attribute: String,
        /// The offending value.
        value: f64,
        /// Lower bound of the plausible range (inclusive).
        min: f64,
        /// Upper bound of the plausible range (inclusive).
        max: f64,
    },
    /// A categorical value was not among the known levels.
    UnknownCategory {
        /// Offending attribute.
        attribute: String,
        /// The unknown label.
        value: String,
    },
    /// The address could not be resolved by the reference map, the
    /// geocoder, or the degraded fallback.
    UnresolvableAddress,
    /// A fault injector corrupted the record (chaos testing).
    Injected {
        /// What the injector did.
        detail: String,
    },
}

impl RecordFault {
    /// Stable, short kind label used as the histogram key.
    pub fn kind(&self) -> &'static str {
        match self {
            RecordFault::CsvParse { .. } => "csv_parse",
            RecordFault::NonFinite { .. } => "non_finite",
            RecordFault::OutOfRange { .. } => "out_of_range",
            RecordFault::UnknownCategory { .. } => "unknown_category",
            RecordFault::UnresolvableAddress => "unresolvable_address",
            RecordFault::Injected { .. } => "injected",
        }
    }
}

impl fmt::Display for RecordFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordFault::CsvParse { line, reason } => {
                write!(f, "CSV parse failure at line {line}: {reason}")
            }
            RecordFault::NonFinite { attribute } => {
                write!(f, "non-finite value for attribute {attribute:?}")
            }
            RecordFault::OutOfRange {
                attribute,
                value,
                min,
                max,
            } => write!(
                f,
                "value {value} of attribute {attribute:?} outside plausible range [{min}, {max}]"
            ),
            RecordFault::UnknownCategory { attribute, value } => {
                write!(f, "unknown level {value:?} for attribute {attribute:?}")
            }
            RecordFault::UnresolvableAddress => write!(f, "address could not be resolved"),
            RecordFault::Injected { detail } => write!(f, "injected fault: {detail}"),
        }
    }
}

// Checkpoint serde for [`RecordFault`] is hand-written rather than derived:
// `OutOfRange` carries `f64` bounds, and the shim's derived float encoding is
// lossy for `-0.0` and non-finite values (see [`crate::jsonnum`]). A resumed
// run must rehydrate quarantine state exactly, so the float fields go through
// the exact codec. The representation mirrors what the derive would emit for
// the non-float variants (single-key object, unit variant as string).
impl serde::Serialize for RecordFault {
    fn to_json_value(&self) -> JsonValue {
        let obj = |variant: &str, fields: Vec<(&str, JsonValue)>| {
            let body = fields
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect::<serde::Map<String, JsonValue>>();
            JsonValue::Object(
                [(variant.to_owned(), JsonValue::Object(body))]
                    .into_iter()
                    .collect(),
            )
        };
        match self {
            RecordFault::CsvParse { line, reason } => obj(
                "CsvParse",
                vec![
                    ("line", JsonValue::Num(*line as f64)),
                    ("reason", JsonValue::Str(reason.clone())),
                ],
            ),
            RecordFault::NonFinite { attribute } => obj(
                "NonFinite",
                vec![("attribute", JsonValue::Str(attribute.clone()))],
            ),
            RecordFault::OutOfRange {
                attribute,
                value,
                min,
                max,
            } => obj(
                "OutOfRange",
                vec![
                    ("attribute", JsonValue::Str(attribute.clone())),
                    ("value", encode_f64(*value)),
                    ("min", encode_f64(*min)),
                    ("max", encode_f64(*max)),
                ],
            ),
            RecordFault::UnknownCategory { attribute, value } => obj(
                "UnknownCategory",
                vec![
                    ("attribute", JsonValue::Str(attribute.clone())),
                    ("value", JsonValue::Str(value.clone())),
                ],
            ),
            RecordFault::UnresolvableAddress => JsonValue::Str("UnresolvableAddress".to_owned()),
            RecordFault::Injected { detail } => {
                obj("Injected", vec![("detail", JsonValue::Str(detail.clone()))])
            }
        }
    }
}

impl serde::Deserialize for RecordFault {
    fn from_json_value(v: &JsonValue) -> Result<Self, serde::Error> {
        fn field<'a>(
            body: &'a JsonValue,
            variant: &str,
            name: &str,
        ) -> Result<&'a JsonValue, serde::Error> {
            body.get(name).ok_or_else(|| {
                serde::Error::custom(format!("RecordFault::{variant} missing field {name:?}"))
            })
        }
        fn string(v: &JsonValue) -> Result<String, serde::Error> {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| serde::Error::mismatch("string", v))
        }
        match v {
            JsonValue::Str(s) if s == "UnresolvableAddress" => Ok(RecordFault::UnresolvableAddress),
            JsonValue::Object(map) => {
                let (variant, body) = map
                    .iter()
                    .next()
                    .ok_or_else(|| serde::Error::custom("empty RecordFault object"))?;
                match variant.as_str() {
                    "CsvParse" => Ok(RecordFault::CsvParse {
                        line: field(body, variant, "line")?
                            .as_u64()
                            .ok_or_else(|| serde::Error::custom("CsvParse line must be a u64"))?
                            as usize,
                        reason: string(field(body, variant, "reason")?)?,
                    }),
                    "NonFinite" => Ok(RecordFault::NonFinite {
                        attribute: string(field(body, variant, "attribute")?)?,
                    }),
                    "OutOfRange" => Ok(RecordFault::OutOfRange {
                        attribute: string(field(body, variant, "attribute")?)?,
                        value: decode_f64(field(body, variant, "value")?)?,
                        min: decode_f64(field(body, variant, "min")?)?,
                        max: decode_f64(field(body, variant, "max")?)?,
                    }),
                    "UnknownCategory" => Ok(RecordFault::UnknownCategory {
                        attribute: string(field(body, variant, "attribute")?)?,
                        value: string(field(body, variant, "value")?)?,
                    }),
                    "Injected" => Ok(RecordFault::Injected {
                        detail: string(field(body, variant, "detail")?)?,
                    }),
                    other => Err(serde::Error::custom(format!(
                        "unknown RecordFault variant {other:?}"
                    ))),
                }
            }
            other => Err(serde::Error::mismatch("RecordFault", other)),
        }
    }
}

/// One diverted record: a stable key (certificate id when available,
/// otherwise a synthetic key), the source row when known, and the fault.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuarantinedRecord {
    /// Stable record key — survives row reordering, unlike indices.
    pub key: String,
    /// Row index in the dataset the record was diverted from, if any.
    pub row: Option<usize>,
    /// Why the record was diverted.
    pub fault: RecordFault,
}

/// The quarantine sink: collects diverted records in arrival order and
/// answers exact per-kind accounting questions.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Quarantine {
    records: Vec<QuarantinedRecord>,
}

impl Quarantine {
    /// An empty quarantine.
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Diverts one record.
    pub fn push(&mut self, key: impl Into<String>, row: Option<usize>, fault: RecordFault) {
        self.records.push(QuarantinedRecord {
            key: key.into(),
            row,
            fault,
        });
    }

    /// Number of quarantined records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was diverted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The diverted records, in arrival order.
    pub fn records(&self) -> &[QuarantinedRecord] {
        &self.records
    }

    /// Exact fault histogram: kind label → count, deterministically
    /// ordered.
    pub fn histogram(&self) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for r in &self.records {
            *h.entry(r.fault.kind().to_owned()).or_insert(0) += 1;
        }
        h
    }

    /// Like [`Quarantine::histogram`], but only over records arrived at or
    /// after index `start` — the per-stage delta when a stage snapshots
    /// `len()` before running.
    pub fn histogram_from(&self, start: usize) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for r in self.records.iter().skip(start) {
            *h.entry(r.fault.kind().to_owned()).or_insert(0) += 1;
        }
        h
    }

    /// The sorted, de-duplicated set of quarantined record keys.
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.records.iter().map(|r| r.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Appends another quarantine's records (stage hand-off).
    pub fn merge(&mut self, other: Quarantine) {
        self.records.extend(other.records);
    }

    /// Shifts every record's row index (and synthetic `row:<n>` fallback
    /// key) by `offset`. Batch ingest quarantines records against
    /// batch-local row numbers; rebasing them onto the cumulative input
    /// makes the merged quarantine identical to a one-shot run's over the
    /// concatenated data.
    pub fn rebase_rows(&mut self, offset: usize) {
        if offset == 0 {
            return;
        }
        for r in &mut self.records {
            if let Some(row) = r.row.as_mut() {
                *row += offset;
            }
            if let Some(n) = r
                .key
                .strip_prefix("row:")
                .and_then(|s| s.parse::<usize>().ok())
            {
                r.key = format!("row:{}", n + offset);
            }
        }
    }
}

impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "quarantine: empty");
        }
        write!(f, "quarantine: {} records (", self.len())?;
        let mut first = true;
        for (kind, n) in self.histogram() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{kind}: {n}")?;
        }
        write!(f, ")")
    }
}

/// What the record-validation scan checks. Non-finite quantitative values
/// are always faults; range and category checks only run for the
/// attributes listed here, so the default policy never diverts records a
/// paper-faithful run would keep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValidationPolicy {
    /// `(attribute, min, max)` inclusive plausible ranges.
    pub ranges: Vec<(String, f64, f64)>,
    /// `(attribute, known levels)` for categorical attributes.
    pub known_categories: Vec<(String, Vec<String>)>,
}

impl ValidationPolicy {
    /// The default policy: only the always-on non-finite check.
    pub fn minimal() -> Self {
        ValidationPolicy::default()
    }
}

/// Scans `dataset` for faulty records under `policy`.
///
/// Returns `(row, fault)` pairs in ascending row order; a row appears at
/// most once (the first fault found in schema order wins), so callers can
/// treat the result as the exact quarantine set.
pub fn scan_faults(dataset: &Dataset, policy: &ValidationPolicy) -> Vec<(usize, RecordFault)> {
    let schema = dataset.schema();
    let mut range_by_attr: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    for (attr, min, max) in &policy.ranges {
        if let Ok(id) = schema.require(attr) {
            range_by_attr.insert(id.0, (*min, *max));
        }
    }
    let mut levels_by_attr: BTreeMap<u32, &[String]> = BTreeMap::new();
    for (attr, levels) in &policy.known_categories {
        if let Ok(id) = schema.require(attr) {
            levels_by_attr.insert(id.0, levels.as_slice());
        }
    }

    let mut out = Vec::new();
    for row in 0..dataset.n_rows() {
        let mut fault = None;
        for (id, def) in schema.iter() {
            match dataset.value(row, id) {
                Value::Num(x) => {
                    if !x.is_finite() {
                        fault = Some(RecordFault::NonFinite {
                            attribute: def.name.clone(),
                        });
                    } else if let Some(&(min, max)) = range_by_attr.get(&id.0) {
                        if x < min || x > max {
                            fault = Some(RecordFault::OutOfRange {
                                attribute: def.name.clone(),
                                value: x,
                                min,
                                max,
                            });
                        }
                    }
                }
                Value::Cat(label) => {
                    if let Some(levels) = levels_by_attr.get(&id.0) {
                        if !levels.iter().any(|l| l == &label) {
                            fault = Some(RecordFault::UnknownCategory {
                                attribute: def.name.clone(),
                                value: label,
                            });
                        }
                    }
                }
                Value::Missing => {}
            }
            if fault.is_some() {
                break;
            }
        }
        if let Some(fault) = fault {
            out.push((row, fault));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::{AttrId, AttributeDef};
    use crate::dataset::Dataset;
    use crate::schema::Schema;
    use std::sync::Arc;

    #[test]
    fn rebase_rows_shifts_indices_and_synthetic_keys() {
        let mut q = Quarantine::new();
        q.push("cert-7", Some(2), RecordFault::UnresolvableAddress);
        q.push(
            "row:5",
            Some(5),
            RecordFault::NonFinite {
                attribute: "x".into(),
            },
        );
        q.push("row:abc", None, RecordFault::UnresolvableAddress);
        let mut unshifted = q.clone();
        unshifted.rebase_rows(0);
        assert_eq!(unshifted, q, "offset 0 is the identity");
        q.rebase_rows(100);
        assert_eq!(q.records()[0].key, "cert-7", "real keys stay put");
        assert_eq!(q.records()[0].row, Some(102));
        assert_eq!(q.records()[1].key, "row:105", "synthetic keys shift");
        assert_eq!(q.records()[1].row, Some(105));
        assert_eq!(q.records()[2].key, "row:abc", "non-numeric suffix kept");
        assert_eq!(q.records()[2].row, None);
    }

    #[test]
    fn quarantine_serde_round_trips_every_fault_kind() {
        let mut q = Quarantine::new();
        q.push(
            "r1",
            Some(3),
            RecordFault::CsvParse {
                line: 4,
                reason: "bad arity".into(),
            },
        );
        q.push(
            "r2",
            None,
            RecordFault::NonFinite {
                attribute: "x".into(),
            },
        );
        q.push(
            "r3",
            Some(0),
            RecordFault::OutOfRange {
                attribute: "x".into(),
                value: -0.0,
                min: 0.5,
                max: f64::INFINITY,
            },
        );
        q.push(
            "r4",
            None,
            RecordFault::UnknownCategory {
                attribute: "c".into(),
                value: "??".into(),
            },
        );
        q.push("r5", Some(9), RecordFault::UnresolvableAddress);
        q.push(
            "r6",
            None,
            RecordFault::Injected {
                detail: "bitflip".into(),
            },
        );

        let text = serde_json::to_string(&q).unwrap();
        let back: Quarantine = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 6);
        assert_eq!(back.histogram(), q.histogram());
        // The exact float codec keeps the -0.0 sign and the infinite bound.
        match &back.records()[2].fault {
            RecordFault::OutOfRange { value, max, .. } => {
                assert!(*value == 0.0 && value.is_sign_negative());
                assert_eq!(*max, f64::INFINITY);
            }
            other => panic!("wrong fault: {other:?}"),
        }
        assert_eq!(back, q);
        // Re-serialization is byte-stable (journal determinism depends on it).
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    #[test]
    fn record_fault_serde_rejects_unknown_variants() {
        use serde::Deserialize as _;
        let bad = serde_json::from_str::<serde::Value>("{\"Exploded\":{}}").unwrap();
        assert!(RecordFault::from_json_value(&bad).is_err());
        let bad = serde_json::from_str::<serde::Value>("\"NotAUnitVariant\"").unwrap();
        assert!(RecordFault::from_json_value(&bad).is_err());
    }

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("x", "", ""),
                AttributeDef::categorical("cat", ""),
            ])
            .unwrap(),
        )
    }

    fn dataset(rows: &[(Option<f64>, Option<&str>)]) -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x, c) in rows {
            let mut r = ds.empty_record();
            r.set(AttrId(0), Value::from(*x)).unwrap();
            r.set(AttrId(1), c.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn non_finite_is_always_a_fault() {
        let ds = dataset(&[
            (Some(1.0), Some("a")),
            (Some(f64::NAN), Some("a")),
            (Some(f64::INFINITY), Some("a")),
            (None, Some("a")),
        ]);
        let faults = scan_faults(&ds, &ValidationPolicy::minimal());
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].0, 1);
        assert_eq!(faults[1].0, 2);
        assert!(matches!(faults[0].1, RecordFault::NonFinite { .. }));
    }

    #[test]
    fn range_and_category_checks_are_opt_in() {
        let ds = dataset(&[(Some(99.0), Some("weird")), (Some(1.0), Some("ok"))]);
        assert!(scan_faults(&ds, &ValidationPolicy::minimal()).is_empty());

        let policy = ValidationPolicy {
            ranges: vec![("x".into(), 0.0, 10.0)],
            known_categories: vec![("cat".into(), vec!["ok".into()])],
        };
        let faults = scan_faults(&ds, &policy);
        assert_eq!(faults.len(), 1, "first fault per row wins");
        assert!(matches!(faults[0].1, RecordFault::OutOfRange { .. }));
    }

    #[test]
    fn missing_values_are_not_faults() {
        let ds = dataset(&[(None, None)]);
        let policy = ValidationPolicy {
            ranges: vec![("x".into(), 0.0, 1.0)],
            known_categories: vec![("cat".into(), vec!["ok".into()])],
        };
        assert!(scan_faults(&ds, &policy).is_empty());
    }

    #[test]
    fn quarantine_histogram_is_exact() {
        let mut q = Quarantine::new();
        q.push("a", Some(0), RecordFault::UnresolvableAddress);
        q.push(
            "b",
            Some(1),
            RecordFault::NonFinite {
                attribute: "x".into(),
            },
        );
        q.push("c", None, RecordFault::UnresolvableAddress);
        assert_eq!(q.len(), 3);
        let h = q.histogram();
        assert_eq!(h["unresolvable_address"], 2);
        assert_eq!(h["non_finite"], 1);
        assert_eq!(q.keys(), vec!["a", "b", "c"]);
        let text = q.to_string();
        assert!(text.contains("3 records") && text.contains("non_finite: 1"));
    }

    #[test]
    fn quarantine_merge_accumulates() {
        let mut a = Quarantine::new();
        a.push("a", Some(0), RecordFault::UnresolvableAddress);
        let mut b = Quarantine::new();
        b.push(
            "b",
            None,
            RecordFault::CsvParse {
                line: 3,
                reason: "bad".into(),
            },
        );
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.histogram().len(), 2);
        assert_eq!(Quarantine::new().to_string(), "quarantine: empty");
    }

    #[test]
    fn fault_kinds_and_display_are_stable() {
        let faults = [
            RecordFault::CsvParse {
                line: 2,
                reason: "r".into(),
            },
            RecordFault::NonFinite {
                attribute: "x".into(),
            },
            RecordFault::OutOfRange {
                attribute: "x".into(),
                value: 9.0,
                min: 0.0,
                max: 1.0,
            },
            RecordFault::UnknownCategory {
                attribute: "c".into(),
                value: "z".into(),
            },
            RecordFault::UnresolvableAddress,
            RecordFault::Injected { detail: "d".into() },
        ];
        let kinds: Vec<&str> = faults.iter().map(|f| f.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "csv_parse",
                "non_finite",
                "out_of_range",
                "unknown_category",
                "unresolvable_address",
                "injected"
            ]
        );
        for f in &faults {
            assert!(!f.to_string().is_empty());
        }
    }
}
