//! Columnar in-memory dataset.
//!
//! Storage is column-major: numeric columns are `Vec<Option<f64>>`, while
//! categorical columns are dictionary-encoded (`Vec<String>` dictionary plus
//! `Vec<Option<u32>>` codes). This keeps the ~25 000 × 132 collection of the
//! paper compact and makes the per-attribute scans of the pre-processing and
//! analytics stages cache-friendly.

use crate::attribute::{AttrId, AttrKind};
use crate::error::ModelError;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Dictionary-encoded categorical column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatColumn {
    dict: Vec<String>,
    index: HashMap<String, u32>,
    codes: Vec<Option<u32>>,
}

impl CatColumn {
    /// Interns `label` and returns its code.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&code) = self.index.get(label) {
            return code;
        }
        let code = self.dict.len() as u32;
        self.dict.push(label.to_owned());
        self.index.insert(label.to_owned(), code);
        code
    }

    /// The label for a code.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.dict.get(code as usize).map(String::as_str)
    }

    /// The code for a label, if already interned.
    pub fn code(&self, label: &str) -> Option<u32> {
        self.index.get(label).copied()
    }

    /// Number of distinct labels interned so far.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Raw codes, one per row.
    pub fn codes(&self) -> &[Option<u32>] {
        &self.codes
    }

    /// The label at a row, if present.
    pub fn get(&self, row: usize) -> Option<&str> {
        self.codes
            .get(row)
            .copied()
            .flatten()
            .and_then(|c| self.label(c))
    }
}

/// The payload of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Quantitative values (missing = `None`).
    Numeric(Vec<Option<f64>>),
    /// Dictionary-encoded categorical values.
    Categorical(CatColumn),
}

/// A single dataset column: payload plus a cached missing-value count.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    missing: usize,
}

impl Column {
    fn new(kind: &AttrKind) -> Self {
        let data = match kind {
            AttrKind::Numeric { .. } => ColumnData::Numeric(Vec::new()),
            AttrKind::Categorical => ColumnData::Categorical(CatColumn::default()),
        };
        Column { data, missing: 0 }
    }

    /// The column payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Number of missing values in the column.
    pub fn missing_count(&self) -> usize {
        self.missing
    }

    fn len(&self) -> usize {
        match &self.data {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical(c) => c.codes.len(),
        }
    }

    fn push(&mut self, value: Value, attr_name: &str) -> Result<(), ModelError> {
        match (&mut self.data, value) {
            (ColumnData::Numeric(v), Value::Num(x)) => v.push(Some(x)),
            (ColumnData::Numeric(v), Value::Missing) => {
                v.push(None);
                self.missing += 1;
            }
            (ColumnData::Categorical(c), Value::Cat(s)) => {
                let code = c.intern(&s);
                c.codes.push(Some(code));
            }
            (ColumnData::Categorical(c), Value::Missing) => {
                c.codes.push(None);
                self.missing += 1;
            }
            (_, v) => {
                return Err(ModelError::KindMismatch {
                    attribute: attr_name.to_owned(),
                    expected: match self.data {
                        ColumnData::Numeric(_) => "numeric",
                        ColumnData::Categorical(_) => "categorical",
                    },
                    got: v.kind_name(),
                })
            }
        }
        Ok(())
    }

    fn get(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Numeric(v) => match v.get(row).copied().flatten() {
                Some(x) => Value::Num(x),
                None => Value::Missing,
            },
            ColumnData::Categorical(c) => match c.get(row) {
                Some(s) => Value::Cat(s.to_owned()),
                None => Value::Missing,
            },
        }
    }

    fn set(&mut self, row: usize, value: Value, attr_name: &str) -> Result<(), ModelError> {
        let was_missing = self.get(row).is_missing();
        // Column::set is only reached through Dataset::set_value, which
        // rejects row >= n_rows before delegating; every column stores
        // exactly n_rows entries, so the arm indexing below cannot panic.
        match (&mut self.data, value) {
            (ColumnData::Numeric(v), Value::Num(x)) => v[row] = Some(x), // lint:allow(D7): row < n_rows == v.len(), guarded in set_value — covers both numeric arms
            (ColumnData::Numeric(v), Value::Missing) => v[row] = None,
            (ColumnData::Categorical(c), Value::Cat(s)) => {
                let code = c.intern(&s);
                c.codes[row] = Some(code); // lint:allow(D7): row < n_rows == codes.len(), guarded in set_value
            }
            (ColumnData::Categorical(c), Value::Missing) => c.codes[row] = None, // lint:allow(D7): row < n_rows == codes.len(), guarded in set_value
            (_, v) => {
                return Err(ModelError::KindMismatch {
                    attribute: attr_name.to_owned(),
                    expected: match self.data {
                        ColumnData::Numeric(_) => "numeric",
                        ColumnData::Categorical(_) => "categorical",
                    },
                    got: v.kind_name(),
                })
            }
        }
        let is_missing = self.get(row).is_missing();
        match (was_missing, is_missing) {
            (true, false) => self.missing -= 1,
            (false, true) => self.missing += 1,
            _ => {}
        }
        Ok(())
    }
}

/// A row under construction, validated against the schema on push.
#[derive(Debug, Clone)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// A record of all-missing values with the given arity.
    pub fn missing(arity: usize) -> Self {
        Record {
            values: vec![Value::Missing; arity],
        }
    }

    /// Builds a record from a full value vector.
    pub fn from_values(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Sets a field by attribute id.
    pub fn set(&mut self, id: AttrId, value: Value) -> Result<(), ModelError> {
        let slot = self
            .values
            .get_mut(id.index())
            .ok_or(ModelError::InvalidAttrId(id.0))?;
        *slot = value;
        Ok(())
    }

    /// Sets a field by attribute name, resolving through `schema`.
    pub fn set_by_name(
        &mut self,
        schema: &Schema,
        name: &str,
        value: Value,
    ) -> Result<(), ModelError> {
        let id = schema.require(name)?;
        self.set(id, value)
    }

    /// Reads a field by attribute id.
    pub fn get(&self, id: AttrId) -> Option<&Value> {
        self.values.get(id.index())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consumes the record into its value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

/// A read-only view over one dataset row.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    dataset: &'a Dataset,
    row: usize,
}

impl<'a> RowView<'a> {
    /// The row index inside the dataset.
    pub fn row_index(&self) -> usize {
        self.row
    }

    /// The value of an attribute by id (owned; categorical labels are cloned).
    pub fn value(&self, id: AttrId) -> Value {
        self.dataset.value(self.row, id)
    }

    /// The numeric value of an attribute, if present and numeric.
    pub fn num(&self, id: AttrId) -> Option<f64> {
        self.dataset.num(self.row, id)
    }

    /// The categorical label of an attribute, if present and categorical.
    pub fn cat(&self, id: AttrId) -> Option<&'a str> {
        self.dataset.cat(self.row, id)
    }

    /// Shorthand: numeric value looked up by attribute name.
    pub fn num_by_name(&self, name: &str) -> Option<f64> {
        self.dataset
            .schema()
            .attr_id(name)
            .and_then(|id| self.num(id))
    }

    /// Shorthand: categorical label looked up by attribute name.
    pub fn cat_by_name(&self, name: &str) -> Option<&'a str> {
        self.dataset
            .schema()
            .attr_id(name)
            .and_then(|id| self.cat(id))
    }
}

/// Columnar dataset of EPC records sharing one [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Dataset {
    /// An empty dataset over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        let columns = schema.iter().map(|(_, d)| Column::new(&d.kind)).collect();
        Dataset {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A clone of the shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (= schema length).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// A new all-missing record with the right arity for this dataset.
    pub fn empty_record(&self) -> Record {
        Record::missing(self.schema.len())
    }

    /// Appends one record, validating arity and value kinds.
    pub fn push_record(&mut self, record: Record) -> Result<(), ModelError> {
        if record.arity() != self.schema.len() {
            return Err(ModelError::ArityMismatch {
                expected: self.schema.len(),
                got: record.arity(),
            });
        }
        // Validate every value kind before touching any column, so a failed
        // push leaves all columns at the same length.
        for (value, (_, def)) in record.values.iter().zip(self.schema.iter()) {
            let ok = matches!(
                (value, &def.kind),
                (Value::Missing, _)
                    | (Value::Num(_), AttrKind::Numeric { .. })
                    | (Value::Cat(_), AttrKind::Categorical)
            );
            if !ok {
                return Err(ModelError::KindMismatch {
                    attribute: def.name.clone(),
                    expected: def.kind.name(),
                    got: value.kind_name(),
                });
            }
        }
        for ((col, value), (_, def)) in self
            .columns
            .iter_mut()
            .zip(record.into_values())
            .zip(self.schema.iter())
        {
            col.push(value, &def.name)?;
        }
        self.n_rows += 1;
        debug_assert!(self.columns.iter().all(|c| c.len() == self.n_rows));
        Ok(())
    }

    /// The column for an attribute id.
    pub fn column(&self, id: AttrId) -> Option<&Column> {
        self.columns.get(id.index())
    }

    /// The column for an attribute name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.attr_id(name).and_then(|id| self.column(id))
    }

    /// The value at `(row, attribute)` — `Missing` when absent.
    pub fn value(&self, row: usize, id: AttrId) -> Value {
        self.columns
            .get(id.index())
            .map(|c| c.get(row))
            .unwrap_or(Value::Missing)
    }

    /// The numeric value at `(row, attribute)`, if present.
    pub fn num(&self, row: usize, id: AttrId) -> Option<f64> {
        match self.columns.get(id.index()).map(|c| &c.data) {
            Some(ColumnData::Numeric(v)) => v.get(row).copied().flatten(),
            _ => None,
        }
    }

    /// The categorical label at `(row, attribute)`, if present.
    pub fn cat(&self, row: usize, id: AttrId) -> Option<&str> {
        match self.columns.get(id.index()).map(|c| &c.data) {
            Some(ColumnData::Categorical(c)) => c.get(row),
            _ => None,
        }
    }

    /// Overwrites one cell (used by the cleaning step to repair fields).
    pub fn set_value(&mut self, row: usize, id: AttrId, value: Value) -> Result<(), ModelError> {
        if row >= self.n_rows {
            return Err(ModelError::RowOutOfBounds {
                row,
                n_rows: self.n_rows,
            });
        }
        let name = self
            .schema
            .def(id)
            .ok_or(ModelError::InvalidAttrId(id.0))?
            .name
            .clone();
        // lint:allow(D7): schema.def(id) above proves id indexes a live column
        self.columns[id.index()].set(row, value, &name)
    }

    /// A view over row `row`.
    pub fn row(&self, row: usize) -> Result<RowView<'_>, ModelError> {
        if row >= self.n_rows {
            return Err(ModelError::RowOutOfBounds {
                row,
                n_rows: self.n_rows,
            });
        }
        Ok(RowView { dataset: self, row })
    }

    /// Iterates all rows.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.n_rows).map(move |row| RowView { dataset: self, row })
    }

    /// Dense copy of a numeric column (missing values skipped), together
    /// with the row index of each kept value.
    pub fn numeric_with_rows(&self, id: AttrId) -> (Vec<f64>, Vec<usize>) {
        let mut values = Vec::new();
        let mut rows = Vec::new();
        if let Some(ColumnData::Numeric(v)) = self.columns.get(id.index()).map(|c| &c.data) {
            for (row, x) in v.iter().enumerate() {
                if let Some(x) = x {
                    values.push(*x);
                    rows.push(row);
                }
            }
        }
        (values, rows)
    }

    /// Dense copy of a numeric column (missing values skipped).
    pub fn numeric_values(&self, id: AttrId) -> Vec<f64> {
        self.numeric_with_rows(id).0
    }

    /// Numeric column as `Option<f64>` per row (empty for categorical ids).
    pub fn numeric_column(&self, id: AttrId) -> &[Option<f64>] {
        match self.columns.get(id.index()).map(|c| &c.data) {
            Some(ColumnData::Numeric(v)) => v,
            _ => &[],
        }
    }

    /// New dataset containing the rows at `indices`, in that order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Dataset, ModelError> {
        let mut out = Dataset::new(self.schema_arc());
        for &row in indices {
            if row >= self.n_rows {
                return Err(ModelError::RowOutOfBounds {
                    row,
                    n_rows: self.n_rows,
                });
            }
            let values: Vec<Value> = (0..self.schema.len())
                .map(|i| self.value(row, AttrId(i as u32)))
                .collect();
            out.push_record(Record::from_values(values))?;
        }
        Ok(out)
    }

    /// New dataset keeping rows where `mask[row]` is `true`.
    ///
    /// `mask` must have exactly `n_rows` entries.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<Dataset, ModelError> {
        if mask.len() != self.n_rows {
            return Err(ModelError::ArityMismatch {
                expected: self.n_rows,
                got: mask.len(),
            });
        }
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, keep)| keep.then_some(i))
            .collect();
        self.select_rows(&indices)
    }

    /// Appends all rows of `other` (same schema required).
    pub fn append(&mut self, other: &Dataset) -> Result<(), ModelError> {
        if *self.schema != *other.schema {
            return Err(ModelError::SchemaMismatch);
        }
        for row in other.rows() {
            let values: Vec<Value> = (0..self.schema.len())
                .map(|i| row.value(AttrId(i as u32)))
                .collect();
            self.push_record(Record::from_values(values))?;
        }
        Ok(())
    }

    /// Total number of missing cells across all columns.
    pub fn total_missing(&self) -> usize {
        self.columns.iter().map(|c| c.missing_count()).sum()
    }
}

// Checkpoint serde. Hand-written because the derived float encoding is lossy
// (`crate::jsonnum` documents the four bad cases) and because the columnar
// invariants — dictionary/index coherence, cached missing counts, uniform
// column lengths — must be revalidated when rehydrating from disk rather
// than trusted. Numeric columns encode as `{"num": [..]}` with `null` for
// missing cells (unambiguous: `encode_f64` never emits `null`), categorical
// columns as `{"cat": {"dict": [..], "codes": [..]}}`.
impl serde::Serialize for Dataset {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value as J;
        let columns: Vec<J> = self
            .columns
            .iter()
            .map(|col| match &col.data {
                ColumnData::Numeric(vals) => J::Object(
                    [(
                        "num".to_owned(),
                        J::Array(
                            vals.iter()
                                .map(|v| crate::jsonnum::encode_opt_f64(*v))
                                .collect(),
                        ),
                    )]
                    .into_iter()
                    .collect(),
                ),
                ColumnData::Categorical(cat) => {
                    let dict = J::Array(cat.dict.iter().cloned().map(J::Str).collect());
                    let codes = J::Array(
                        cat.codes
                            .iter()
                            .map(|c| match c {
                                Some(code) => J::Num(*code as f64),
                                None => J::Null,
                            })
                            .collect(),
                    );
                    let body: serde::Map<String, J> =
                        [("codes".to_owned(), codes), ("dict".to_owned(), dict)]
                            .into_iter()
                            .collect();
                    J::Object([("cat".to_owned(), J::Object(body))].into_iter().collect())
                }
            })
            .collect();
        let map: serde::Map<String, J> = [
            ("columns".to_owned(), J::Array(columns)),
            ("n_rows".to_owned(), J::Num(self.n_rows as f64)),
            ("schema".to_owned(), self.schema.to_json_value()),
        ]
        .into_iter()
        .collect();
        J::Object(map)
    }
}

impl serde::Deserialize for Dataset {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        use serde::{Error, Value as J};
        let schema_v = v
            .get("schema")
            .ok_or_else(|| Error::custom("Dataset missing field \"schema\""))?;
        let mut schema = <Schema as serde::Deserialize>::from_json_value(schema_v)?;
        schema.reindex();
        let n_rows = v
            .get("n_rows")
            .and_then(J::as_u64)
            .ok_or_else(|| Error::custom("Dataset missing integer field \"n_rows\""))?
            as usize;
        let cols_v = v
            .get("columns")
            .and_then(J::as_array)
            .ok_or_else(|| Error::custom("Dataset missing array field \"columns\""))?;
        if cols_v.len() != schema.len() {
            return Err(Error::custom(format!(
                "Dataset checkpoint has {} columns but schema defines {}",
                cols_v.len(),
                schema.len()
            )));
        }
        let mut columns = Vec::with_capacity(cols_v.len());
        for (col_v, (_, def)) in cols_v.iter().zip(schema.iter()) {
            let column = if let Some(vals) = col_v.get("num").and_then(J::as_array) {
                if !matches!(def.kind, AttrKind::Numeric { .. }) {
                    return Err(Error::custom(format!(
                        "column {:?} is numeric in the checkpoint but categorical in the schema",
                        def.name
                    )));
                }
                let mut out = Vec::with_capacity(vals.len());
                let mut missing = 0;
                for cell in vals {
                    let cell = crate::jsonnum::decode_opt_f64(cell)?;
                    missing += usize::from(cell.is_none());
                    out.push(cell);
                }
                Column {
                    data: ColumnData::Numeric(out),
                    missing,
                }
            } else if let Some(body) = col_v.get("cat") {
                if !matches!(def.kind, AttrKind::Categorical) {
                    return Err(Error::custom(format!(
                        "column {:?} is categorical in the checkpoint but numeric in the schema",
                        def.name
                    )));
                }
                let dict_v = body
                    .get("dict")
                    .and_then(J::as_array)
                    .ok_or_else(|| Error::custom("categorical column missing \"dict\""))?;
                let codes_v = body
                    .get("codes")
                    .and_then(J::as_array)
                    .ok_or_else(|| Error::custom("categorical column missing \"codes\""))?;
                let mut cat = CatColumn::default();
                for label in dict_v {
                    let label = label
                        .as_str()
                        .ok_or_else(|| Error::mismatch("dictionary label string", label))?;
                    cat.intern(label);
                }
                if cat.dict.len() != dict_v.len() {
                    return Err(Error::custom(format!(
                        "dictionary of column {:?} contains duplicate labels",
                        def.name
                    )));
                }
                let mut missing = 0;
                for code in codes_v {
                    let code = match code {
                        J::Null => {
                            missing += 1;
                            None
                        }
                        other => {
                            let code = other
                                .as_u64()
                                .ok_or_else(|| Error::mismatch("dictionary code", other))?
                                as u32;
                            if code as usize >= cat.dict.len() {
                                return Err(Error::custom(format!(
                                    "code {code} out of range for dictionary of column {:?}",
                                    def.name
                                )));
                            }
                            Some(code)
                        }
                    };
                    cat.codes.push(code);
                }
                Column {
                    data: ColumnData::Categorical(cat),
                    missing,
                }
            } else {
                return Err(Error::custom(format!(
                    "column {:?} has neither \"num\" nor \"cat\" payload",
                    def.name
                )));
            };
            if column.len() != n_rows {
                return Err(Error::custom(format!(
                    "column {:?} has {} cells but the checkpoint declares {} rows",
                    def.name,
                    column.len(),
                    n_rows
                )));
            }
            columns.push(column);
        }
        Ok(Dataset {
            schema: Arc::new(schema),
            columns,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeDef;

    fn small_schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("x", "", "x value"),
                AttributeDef::categorical("label", "a label"),
                AttributeDef::numeric("y", "m", "y value"),
            ])
            .unwrap(),
        )
    }

    fn push(ds: &mut Dataset, x: Option<f64>, label: Option<&str>, y: Option<f64>) {
        let mut r = ds.empty_record();
        r.set(AttrId(0), Value::from(x)).unwrap();
        r.set(AttrId(1), label.map(Value::cat).unwrap_or(Value::Missing))
            .unwrap();
        r.set(AttrId(2), Value::from(y)).unwrap();
        ds.push_record(r).unwrap();
    }

    #[test]
    fn push_and_read_back() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.0), Some("a"), Some(2.0));
        push(&mut ds, Some(3.0), Some("b"), None);
        push(&mut ds, None, Some("a"), Some(4.0));

        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_cols(), 3);
        assert_eq!(ds.num(0, AttrId(0)), Some(1.0));
        assert_eq!(ds.cat(1, AttrId(1)), Some("b"));
        assert_eq!(ds.num(1, AttrId(2)), None);
        assert_eq!(ds.value(2, AttrId(0)), Value::Missing);
        assert_eq!(ds.total_missing(), 2);
    }

    #[test]
    fn categorical_dictionary_is_shared() {
        let mut ds = Dataset::new(small_schema());
        for _ in 0..100 {
            push(&mut ds, Some(0.0), Some("same"), Some(0.0));
        }
        match ds.column(AttrId(1)).unwrap().data() {
            ColumnData::Categorical(c) => {
                assert_eq!(c.cardinality(), 1);
                assert_eq!(c.codes().len(), 100);
            }
            _ => panic!("expected categorical"),
        }
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let mut ds = Dataset::new(small_schema());
        let mut r = ds.empty_record();
        r.set(AttrId(0), Value::cat("oops")).unwrap();
        let err = ds.push_record(r).unwrap_err();
        assert!(matches!(err, ModelError::KindMismatch { .. }));
        // A failed push must not corrupt row count.
        assert_eq!(ds.n_rows(), 0);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut ds = Dataset::new(small_schema());
        let err = ds.push_record(Record::missing(2)).unwrap_err();
        assert_eq!(
            err,
            ModelError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn set_value_updates_missing_counts() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, None, None, Some(1.0));
        assert_eq!(ds.column(AttrId(0)).unwrap().missing_count(), 1);
        ds.set_value(0, AttrId(0), Value::num(5.0)).unwrap();
        assert_eq!(ds.column(AttrId(0)).unwrap().missing_count(), 0);
        assert_eq!(ds.num(0, AttrId(0)), Some(5.0));
        ds.set_value(0, AttrId(0), Value::Missing).unwrap();
        assert_eq!(ds.column(AttrId(0)).unwrap().missing_count(), 1);

        ds.set_value(0, AttrId(1), Value::cat("fixed")).unwrap();
        assert_eq!(ds.cat(0, AttrId(1)), Some("fixed"));
        assert_eq!(ds.column(AttrId(1)).unwrap().missing_count(), 0);
    }

    #[test]
    fn set_value_out_of_bounds() {
        let mut ds = Dataset::new(small_schema());
        let err = ds.set_value(0, AttrId(0), Value::num(1.0)).unwrap_err();
        assert!(matches!(err, ModelError::RowOutOfBounds { .. }));
    }

    #[test]
    fn numeric_with_rows_skips_missing() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.0), None, None);
        push(&mut ds, None, None, None);
        push(&mut ds, Some(3.0), None, None);
        let (vals, rows) = ds.numeric_with_rows(AttrId(0));
        assert_eq!(vals, vec![1.0, 3.0]);
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn select_and_filter_rows() {
        let mut ds = Dataset::new(small_schema());
        for i in 0..5 {
            push(
                &mut ds,
                Some(i as f64),
                Some(if i % 2 == 0 { "even" } else { "odd" }),
                None,
            );
        }
        let sel = ds.select_rows(&[4, 0]).unwrap();
        assert_eq!(sel.n_rows(), 2);
        assert_eq!(sel.num(0, AttrId(0)), Some(4.0));
        assert_eq!(sel.num(1, AttrId(0)), Some(0.0));

        let mask: Vec<bool> = (0..5).map(|i| i % 2 == 0).collect();
        let filtered = ds.filter_mask(&mask).unwrap();
        assert_eq!(filtered.n_rows(), 3);
        for row in filtered.rows() {
            assert_eq!(row.cat(AttrId(1)), Some("even"));
        }
    }

    #[test]
    fn filter_mask_requires_full_length() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.0), None, None);
        assert!(ds.filter_mask(&[]).is_err());
    }

    #[test]
    fn row_views_expose_named_lookups() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.5), Some("a"), Some(2.5));
        let row = ds.row(0).unwrap();
        assert_eq!(row.num_by_name("x"), Some(1.5));
        assert_eq!(row.cat_by_name("label"), Some("a"));
        assert_eq!(row.num_by_name("label"), None);
        assert_eq!(row.row_index(), 0);
        assert!(ds.row(1).is_err());
    }

    #[test]
    fn append_requires_same_schema() {
        let mut a = Dataset::new(small_schema());
        let mut b = Dataset::new(small_schema());
        push(&mut a, Some(1.0), Some("a"), None);
        push(&mut b, Some(2.0), Some("b"), None);
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 2);
        assert_eq!(a.cat(1, AttrId(1)), Some("b"));

        let other = Dataset::new(Arc::new(
            Schema::new(vec![AttributeDef::numeric("z", "", "")]).unwrap(),
        ));
        assert_eq!(a.append(&other).unwrap_err(), ModelError::SchemaMismatch);
    }

    #[test]
    fn checkpoint_serde_round_trips_exactly() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.0 / 3.0), Some("a"), Some(2.0));
        push(&mut ds, Some(f64::NAN), Some("b"), None);
        push(&mut ds, None, None, Some(-0.0));
        push(&mut ds, Some(f64::NEG_INFINITY), Some("a"), Some(5e-324));

        let text = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&text).unwrap();

        assert_eq!(back.n_rows(), 4);
        assert_eq!(back.schema(), ds.schema());
        assert_eq!(back.num(0, AttrId(0)), Some(1.0 / 3.0));
        assert!(back.num(1, AttrId(0)).unwrap().is_nan());
        assert_eq!(back.num(3, AttrId(0)), Some(f64::NEG_INFINITY));
        let z = back.num(2, AttrId(2)).unwrap();
        assert!(z == 0.0 && z.is_sign_negative(), "-0.0 must survive");
        assert_eq!(back.num(3, AttrId(2)), Some(5e-324));
        assert_eq!(back.cat(1, AttrId(1)), Some("b"));
        assert_eq!(back.cat(2, AttrId(1)), None);
        // Rebuilt caches: missing counts, dictionary index, schema index.
        assert_eq!(back.total_missing(), ds.total_missing());
        match back.column(AttrId(1)).unwrap().data() {
            ColumnData::Categorical(c) => assert_eq!(c.code("b"), Some(1)),
            _ => panic!("expected categorical"),
        }
        assert_eq!(back.schema().attr_id("y"), Some(AttrId(2)));
        // Serialization is deterministic: same bytes both times.
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    #[test]
    fn checkpoint_serde_rejects_corruption() {
        let mut ds = Dataset::new(small_schema());
        push(&mut ds, Some(1.0), Some("a"), None);
        let good = serde_json::to_string(&ds).unwrap();

        // Declared row count disagreeing with the cells.
        let bad = good.replace("\"n_rows\":1", "\"n_rows\":2");
        assert!(serde_json::from_str::<Dataset>(&bad).is_err());
        // A dictionary code pointing outside the dictionary.
        let bad = good.replace("\"codes\":[0]", "\"codes\":[7]");
        assert!(serde_json::from_str::<Dataset>(&bad).is_err());
        // Numeric payload under a categorical attribute.
        let bad = good.replace("\"cat\":{\"codes\":[0],\"dict\":[\"a\"]}", "\"num\":[null]");
        assert!(serde_json::from_str::<Dataset>(&bad).is_err());
        // Truncated column payload.
        let bad = good.replace("\"num\":[1]", "\"num\":[]");
        assert!(serde_json::from_str::<Dataset>(&bad).is_err());
    }

    #[test]
    fn record_set_by_name() {
        let schema = small_schema();
        let mut r = Record::missing(schema.len());
        r.set_by_name(&schema, "y", Value::num(9.0)).unwrap();
        assert_eq!(r.get(AttrId(2)), Some(&Value::Num(9.0)));
        assert!(r.set_by_name(&schema, "nope", Value::num(0.0)).is_err());
        assert!(r.set(AttrId(99), Value::num(0.0)).is_err());
    }
}
