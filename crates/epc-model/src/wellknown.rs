//! Canonical attribute names of the standard EPC schema.
//!
//! The case study of the paper names a handful of attributes explicitly; the
//! pipeline addresses them through these constants rather than string
//! literals scattered through the code. The remaining attributes of the
//! 132-feature Piedmont collection are defined in [`crate::schema`].

/// Certificate identifier (categorical, unique per EPC).
pub const CERTIFICATE_ID: &str = "certificate_id";

// --- Geospatial attributes repaired by the cleaning step (§2.1.1) ---

/// Free-text street address (the noisiest field of the collection).
pub const ADDRESS: &str = "address";
/// House / civic number.
pub const HOUSE_NUMBER: &str = "house_number";
/// Postal (ZIP) code.
pub const ZIP_CODE: &str = "zip_code";
/// Municipality name.
pub const CITY: &str = "city";
/// Administrative district (circoscrizione) — one level below the city.
pub const DISTRICT: &str = "district";
/// Neighbourhood (quartiere) — one level below the district.
pub const NEIGHBOURHOOD: &str = "neighbourhood";
/// WGS84 latitude in decimal degrees.
pub const LATITUDE: &str = "latitude";
/// WGS84 longitude in decimal degrees.
pub const LONGITUDE: &str = "longitude";

// --- Case-study thermo-physical attributes (§3) ---

/// Aspect ratio S/V: dispersing surface over heated volume \[1/m\].
pub const ASPECT_RATIO: &str = "aspect_ratio";
/// Average U-value of the vertical opaque envelope \[W/m²K\] (Uo).
pub const U_OPAQUE: &str = "u_opaque";
/// Average U-value of the windows \[W/m²K\] (Uw).
pub const U_WINDOWS: &str = "u_windows";
/// Heated floor area \[m²\] (Sr, "Heat surface").
pub const HEAT_SURFACE: &str = "heat_surface";
/// Average global efficiency for space heating (ETAH, dimensionless).
pub const ETA_H: &str = "eta_h";
/// Normalized primary heating energy consumption \[kWh/m²·yr\] (EPH) —
/// the response variable of the case study.
pub const EPH: &str = "eph";

// --- Other frequently used attributes ---

/// Intended-use category per Italian DPR 412/93 (the case study filters
/// on `E.1.1`, permanent residences).
pub const BUILDING_CATEGORY: &str = "building_category";
/// Energy-performance class label (A4..G).
pub const EPC_CLASS: &str = "epc_class";
/// Year the certificate was issued (2016..2018 in the paper's collection).
pub const ISSUE_YEAR: &str = "issue_year";
/// Heating-system fuel.
pub const HEATING_FUEL: &str = "heating_fuel";
/// Construction period band of the building.
pub const CONSTRUCTION_PERIOD: &str = "construction_period";
/// Generation-subsystem efficiency (expert-driven univariate analysis, §2.1.2).
pub const ETA_GENERATION: &str = "eta_generation";
/// Distribution-subsystem efficiency (expert-driven univariate analysis, §2.1.2).
pub const ETA_DISTRIBUTION: &str = "eta_distribution";
/// Emission-subsystem efficiency.
pub const ETA_EMISSION: &str = "eta_emission";
/// Control-subsystem efficiency.
pub const ETA_CONTROL: &str = "eta_control";
/// Global EP index \[kWh/m²·yr\].
pub const EP_GLOBAL: &str = "ep_global";
/// Construction year (numeric).
pub const CONSTRUCTION_YEAR: &str = "construction_year";
/// Heated volume \[m³\].
pub const HEATED_VOLUME: &str = "heated_volume";

/// The five clustering features of the case study, in paper order:
/// S/V, Uo, Uw, Sr, ETAH.
pub const CASE_STUDY_FEATURES: [&str; 5] = [ASPECT_RATIO, U_OPAQUE, U_WINDOWS, HEAT_SURFACE, ETA_H];

/// The attributes the paper's expert-driven univariate analysis covers:
/// thermo-physical characteristics plus heating-subsystem efficiencies.
pub const EXPERT_ANALYSIS_ATTRIBUTES: [&str; 5] = [
    ASPECT_RATIO,
    U_OPAQUE,
    U_WINDOWS,
    ETA_DISTRIBUTION,
    ETA_GENERATION,
];

/// Geospatial attributes the cleaning algorithm reads and repairs.
pub const GEO_ATTRIBUTES: [&str; 5] = [ADDRESS, HOUSE_NUMBER, ZIP_CODE, LATITUDE, LONGITUDE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_features_match_paper_order() {
        assert_eq!(
            CASE_STUDY_FEATURES,
            [
                "aspect_ratio",
                "u_opaque",
                "u_windows",
                "heat_surface",
                "eta_h"
            ]
        );
    }

    #[test]
    fn geo_attributes_cover_cleaning_fields() {
        assert!(GEO_ATTRIBUTES.contains(&ADDRESS));
        assert!(GEO_ATTRIBUTES.contains(&ZIP_CODE));
        assert!(GEO_ATTRIBUTES.contains(&LATITUDE));
        assert!(GEO_ATTRIBUTES.contains(&LONGITUDE));
        assert!(GEO_ATTRIBUTES.contains(&HOUSE_NUMBER));
    }

    #[test]
    fn no_duplicate_names_across_lists() {
        let mut all: Vec<&str> = Vec::new();
        all.extend(CASE_STUDY_FEATURES);
        all.extend(GEO_ATTRIBUTES);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }
}
