//! Attribute definitions: names, kinds, units, and stable identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable, schema-relative attribute identifier.
///
/// Ids are dense indices into the schema's attribute list, so they can be
/// used to index the dataset's column vector directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The kind of an attribute: quantitative or categorical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Continuous quantitative attribute with an optional measurement unit.
    Numeric {
        /// Unit of measure, e.g. `"W/m2K"` — empty when dimensionless.
        unit: String,
    },
    /// Categorical attribute (dictionary-encoded in columns).
    Categorical,
}

impl AttrKind {
    /// Shorthand for a dimensionless numeric attribute.
    pub fn numeric() -> Self {
        AttrKind::Numeric {
            unit: String::new(),
        }
    }

    /// Shorthand for a numeric attribute with a unit.
    pub fn numeric_unit(unit: &str) -> Self {
        AttrKind::Numeric {
            unit: unit.to_owned(),
        }
    }

    /// `true` for [`AttrKind::Numeric`].
    pub fn is_numeric(&self) -> bool {
        matches!(self, AttrKind::Numeric { .. })
    }

    /// `true` for [`AttrKind::Categorical`].
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttrKind::Categorical)
    }

    /// A static name used in error messages.
    pub fn name(&self) -> &'static str {
        match self {
            AttrKind::Numeric { .. } => "numeric",
            AttrKind::Categorical => "categorical",
        }
    }
}

/// Full definition of a single EPC attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Machine name (snake_case, unique within a schema).
    pub name: String,
    /// Kind (numeric with unit, or categorical).
    pub kind: AttrKind,
    /// Human-readable description shown in dashboards.
    pub description: String,
}

impl AttributeDef {
    /// Creates a numeric attribute definition.
    pub fn numeric(name: &str, unit: &str, description: &str) -> Self {
        AttributeDef {
            name: name.to_owned(),
            kind: AttrKind::numeric_unit(unit),
            description: description.to_owned(),
        }
    }

    /// Creates a categorical attribute definition.
    pub fn categorical(name: &str, description: &str) -> Self {
        AttributeDef {
            name: name.to_owned(),
            kind: AttrKind::Categorical,
            description: description.to_owned(),
        }
    }

    /// The unit of measure for numeric attributes (empty otherwise).
    pub fn unit(&self) -> &str {
        match &self.kind {
            AttrKind::Numeric { unit } => unit,
            AttrKind::Categorical => "",
        }
    }

    /// A label suitable for axis titles: `"name [unit]"` or just `"name"`.
    pub fn axis_label(&self) -> String {
        let unit = self.unit();
        if unit.is_empty() {
            self.name.clone()
        } else {
            format!("{} [{}]", self.name, unit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_id_index() {
        assert_eq!(AttrId(7).index(), 7);
        assert_eq!(AttrId(7).to_string(), "#7");
    }

    #[test]
    fn kind_predicates() {
        assert!(AttrKind::numeric().is_numeric());
        assert!(!AttrKind::numeric().is_categorical());
        assert!(AttrKind::Categorical.is_categorical());
        assert_eq!(AttrKind::numeric_unit("kWh").name(), "numeric");
        assert_eq!(AttrKind::Categorical.name(), "categorical");
    }

    #[test]
    fn numeric_def_carries_unit() {
        let def = AttributeDef::numeric("u_windows", "W/m2K", "Average U-value of the windows");
        assert_eq!(def.unit(), "W/m2K");
        assert_eq!(def.axis_label(), "u_windows [W/m2K]");
        assert!(def.kind.is_numeric());
    }

    #[test]
    fn categorical_def_has_no_unit() {
        let def = AttributeDef::categorical("building_category", "Intended use (DPR 412/93)");
        assert_eq!(def.unit(), "");
        assert_eq!(def.axis_label(), "building_category");
        assert!(def.kind.is_categorical());
    }

    #[test]
    fn defs_compare_structurally() {
        let a = AttributeDef::numeric("x", "", "d");
        let b = AttributeDef::numeric("x", "", "d");
        assert_eq!(a, b);
        let c = AttributeDef::numeric("x", "m", "d");
        assert_ne!(a, c);
    }
}
