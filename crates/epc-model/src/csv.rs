//! Minimal CSV (de)serialization for datasets.
//!
//! The Piedmont EPC collection is distributed as CSV open data; this module
//! provides a dependency-free reader/writer sufficient for round-tripping
//! datasets produced by the synthetic generator: comma-separated, RFC-4180
//! style quoting (`"` doubling), header row with attribute names, empty
//! fields read as missing.
//!
//! Two readers are offered: [`from_csv`] rejects the whole document on the
//! first malformed row, while [`from_csv_lenient`] diverts malformed rows
//! into a [`Quarantine`] and keeps going — the ingest mode of the
//! fault-tolerant pipeline.

use crate::dataset::{Dataset, Record};
use crate::error::ModelError;
use crate::fault::{Quarantine, RecordFault};
use crate::schema::Schema;
use crate::value::Value;
use std::sync::Arc;

/// Serializes a dataset to CSV with a header row.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<&str> = ds.schema().iter().map(|(_, d)| d.name.as_str()).collect();
    write_row(&mut out, header.iter().map(|s| s.to_string()));
    for row in ds.rows() {
        let fields =
            (0..ds.n_cols()).map(|i| match row.value(crate::attribute::AttrId(i as u32)) {
                Value::Num(x) => format_num(x),
                Value::Cat(s) => s,
                Value::Missing => String::new(),
            });
        write_row(&mut out, fields);
    }
    out
}

/// Formats a float without trailing noise (integers render without ".0").
fn format_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_row(out: &mut String, fields: impl Iterator<Item = String>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            out.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(&field);
        }
    }
    out.push('\n');
}

/// Parses a CSV document into a dataset over `schema`.
///
/// The header must list exactly the schema's attribute names in schema
/// order. Empty fields become [`Value::Missing`]; fields of numeric columns
/// that fail to parse as `f64` are an error.
pub fn from_csv(schema: Arc<Schema>, text: &str) -> Result<Dataset, ModelError> {
    read_csv(schema, text, None)
}

/// Fault-tolerant variant of [`from_csv`]: rows that fail to parse — wrong
/// arity, unparsable numbers, unterminated quotes — are diverted into
/// `quarantine` with a [`RecordFault::CsvParse`] reason instead of aborting
/// the whole load. A bad header is still fatal (nothing downstream could
/// be trusted).
pub fn from_csv_lenient(
    schema: Arc<Schema>,
    text: &str,
    quarantine: &mut Quarantine,
) -> Result<Dataset, ModelError> {
    read_csv(schema, text, Some(quarantine))
}

/// Shared reader: strict when `quarantine` is `None`, lenient otherwise.
fn read_csv(
    schema: Arc<Schema>,
    text: &str,
    mut quarantine: Option<&mut Quarantine>,
) -> Result<Dataset, ModelError> {
    let mut lines = split_records(text);
    let header = lines.next().ok_or(ModelError::Csv {
        line: 1,
        reason: "empty document".into(),
    })?;
    let header_fields = parse_record(&header, 1)?;
    let expected: Vec<&str> = schema.iter().map(|(_, d)| d.name.as_str()).collect();
    if header_fields.len() != expected.len()
        || header_fields.iter().zip(&expected).any(|(a, b)| a != b)
    {
        return Err(ModelError::Csv {
            line: 1,
            reason: format!(
                "header does not match schema (got {} fields, expected {})",
                header_fields.len(),
                expected.len()
            ),
        });
    }

    let mut ds = Dataset::new(schema);
    for (idx, raw) in lines.enumerate() {
        let line_no = idx + 2;
        if raw.trim().is_empty() {
            continue;
        }
        match parse_row(&ds, &raw, line_no) {
            Ok(record) => ds.push_record(record)?,
            Err(e) => match (&mut quarantine, e) {
                (Some(q), ModelError::Csv { line, reason }) => {
                    q.push(
                        format!("line:{line}"),
                        None,
                        RecordFault::CsvParse { line, reason },
                    );
                }
                (_, e) => return Err(e),
            },
        }
    }
    Ok(ds)
}

/// Parses one data row against the dataset's schema.
fn parse_row(ds: &Dataset, raw: &str, line_no: usize) -> Result<Record, ModelError> {
    let fields = parse_record(raw, line_no)?;
    if fields.len() != ds.n_cols() {
        return Err(ModelError::Csv {
            line: line_no,
            reason: format!("expected {} fields, got {}", ds.n_cols(), fields.len()),
        });
    }
    let mut values = Vec::with_capacity(fields.len());
    for (field, (_, def)) in fields.into_iter().zip(ds.schema().iter()) {
        let value = if field.is_empty() {
            Value::Missing
        } else if def.kind.is_numeric() {
            let x: f64 = field.parse().map_err(|_| ModelError::Csv {
                line: line_no,
                reason: format!("invalid number {field:?} for attribute {}", def.name),
            })?;
            Value::Num(x)
        } else {
            Value::Cat(field)
        };
        values.push(value);
    }
    Ok(Record::from_values(values))
}

/// Splits a CSV document into logical records, honouring quoted newlines.
fn split_records(text: &str) -> impl Iterator<Item = String> + '_ {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for ch in text.chars() {
        match ch {
            '"' => {
                in_quotes = !in_quotes;
                current.push(ch);
            }
            '\n' if !in_quotes => {
                // trailing \r from CRLF files
                if current.ends_with('\r') {
                    current.pop();
                }
                records.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        records.push(current);
    }
    records.into_iter()
}

/// Parses one logical record into fields, handling quotes.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>, ModelError> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => current.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut current)),
                _ => current.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(ModelError::Csv {
            line: line_no,
            reason: "unterminated quote".into(),
        });
    }
    fields.push(current);
    Ok(fields)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::attribute::{AttrId, AttributeDef};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("x", "", ""),
                AttributeDef::categorical("name", ""),
            ])
            .unwrap(),
        )
    }

    fn sample() -> Dataset {
        let mut ds = Dataset::new(schema());
        for (x, name) in [
            (Some(1.5), Some("plain")),
            (Some(2.0), Some("with, comma")),
            (None, Some("with \"quote\"")),
            (Some(-3.25), None),
        ] {
            let mut r = ds.empty_record();
            r.set(AttrId(0), Value::from(x)).unwrap();
            r.set(AttrId(1), name.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample();
        let text = to_csv(&ds);
        let back = from_csv(schema(), &text).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        for row in 0..ds.n_rows() {
            assert_eq!(back.num(row, AttrId(0)), ds.num(row, AttrId(0)));
            assert_eq!(back.cat(row, AttrId(1)), ds.cat(row, AttrId(1)));
        }
    }

    #[test]
    fn header_is_first_line() {
        let text = to_csv(&sample());
        assert!(text.starts_with("x,name\n"));
    }

    #[test]
    fn quoting_is_applied() {
        let text = to_csv(&sample());
        assert!(text.contains("\"with, comma\""));
        assert!(text.contains("\"with \"\"quote\"\"\""));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut ds = Dataset::new(schema());
        let mut r = ds.empty_record();
        r.set(AttrId(0), Value::num(2016.0)).unwrap();
        ds.push_record(r).unwrap();
        assert!(to_csv(&ds).contains("2016,"));
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = from_csv(schema(), "a,b\n1,2\n").unwrap_err();
        assert!(matches!(err, ModelError::Csv { line: 1, .. }));
    }

    #[test]
    fn bad_number_is_rejected_with_line() {
        let err = from_csv(schema(), "x,name\nnot_a_number,ok\n").unwrap_err();
        match err {
            ModelError::Csv { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("not_a_number"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_field_count_is_rejected() {
        let err = from_csv(schema(), "x,name\n1\n").unwrap_err();
        assert!(matches!(err, ModelError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let err = from_csv(schema(), "x,name\n1,\"oops\n").unwrap_err();
        assert!(matches!(err, ModelError::Csv { .. }));
    }

    #[test]
    fn empty_lines_are_skipped() {
        let ds = from_csv(schema(), "x,name\n1,a\n\n2,b\n").unwrap();
        assert_eq!(ds.n_rows(), 2);
    }

    #[test]
    fn lenient_reader_quarantines_bad_rows() {
        let text = "x,name\n1,a\nnot_a_number,b\n2\n3,\"oops\n4,d\n";
        let mut q = Quarantine::new();
        let ds = from_csv_lenient(schema(), text, &mut q).unwrap();
        // Rows 3 (bad number), 4 (arity), 5 (unterminated quote swallows
        // the rest of the document as one logical record) are diverted.
        assert_eq!(ds.n_rows(), 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.histogram()["csv_parse"], 3);
        assert!(q
            .records()
            .iter()
            .any(|r| matches!(&r.fault, RecordFault::CsvParse { line: 3, reason } if reason.contains("not_a_number"))));
    }

    #[test]
    fn lenient_reader_matches_strict_on_clean_input() {
        let text = to_csv(&sample());
        let mut q = Quarantine::new();
        let lenient = from_csv_lenient(schema(), &text, &mut q).unwrap();
        let strict = from_csv(schema(), &text).unwrap();
        assert!(q.is_empty());
        assert_eq!(lenient.n_rows(), strict.n_rows());
        for row in 0..strict.n_rows() {
            assert_eq!(lenient.num(row, AttrId(0)), strict.num(row, AttrId(0)));
            assert_eq!(lenient.cat(row, AttrId(1)), strict.cat(row, AttrId(1)));
        }
    }

    #[test]
    fn lenient_reader_still_rejects_bad_headers() {
        let mut q = Quarantine::new();
        assert!(from_csv_lenient(schema(), "a,b\n1,2\n", &mut q).is_err());
        assert!(from_csv_lenient(schema(), "", &mut q).is_err());
    }

    #[test]
    fn quoted_newline_stays_in_field() {
        let mut ds = Dataset::new(schema());
        let mut r = ds.empty_record();
        r.set(AttrId(0), Value::num(1.0)).unwrap();
        r.set(AttrId(1), Value::cat("line1\nline2")).unwrap();
        ds.push_record(r).unwrap();
        let text = to_csv(&ds);
        let back = from_csv(schema(), &text).unwrap();
        assert_eq!(back.cat(0, AttrId(1)), Some("line1\nline2"));
    }
}
