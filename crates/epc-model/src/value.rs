//! Typed attribute values.
//!
//! EPC attributes are either quantitative (continuous, stored as `f64`) or
//! categorical (stored as strings, dictionary-encoded inside columns). Every
//! attribute may also be missing — real EPC collections are full of holes,
//! and the cleaning step of the paper exists precisely to repair some of them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value of an EPC record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A quantitative measurement (e.g. `u_windows = 2.7` W/m²K).
    Num(f64),
    /// A categorical label (e.g. `building_category = "E.1.1"`).
    Cat(String),
    /// The value is absent from the certificate.
    Missing,
}

impl Value {
    /// Convenience constructor for a numeric value.
    pub fn num(v: f64) -> Self {
        Value::Num(v)
    }

    /// Convenience constructor for a categorical value.
    pub fn cat(v: impl Into<String>) -> Self {
        Value::Cat(v.into())
    }

    /// `true` if the value is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Returns the numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the categorical payload, if any.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// A static name for the value's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "numeric",
            Value::Cat(_) => "categorical",
            Value::Missing => "missing",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(v) => write!(f, "{v}"),
            Value::Cat(s) => write!(f, "{s}"),
            Value::Missing => write!(f, ""),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Cat(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Cat(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::num(1.5).as_num(), Some(1.5));
        assert_eq!(Value::num(1.5).as_cat(), None);
        assert_eq!(Value::cat("E.1.1").as_cat(), Some("E.1.1"));
        assert_eq!(Value::cat("E.1.1").as_num(), None);
        assert!(Value::Missing.is_missing());
        assert!(!Value::num(0.0).is_missing());
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::num(1.0).kind_name(), "numeric");
        assert_eq!(Value::cat("x").kind_name(), "categorical");
        assert_eq!(Value::Missing.kind_name(), "missing");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(2.0), Value::Num(2.0));
        assert_eq!(Value::from("abc"), Value::Cat("abc".into()));
        assert_eq!(Value::from(String::from("abc")), Value::Cat("abc".into()));
        assert_eq!(Value::from(Option::<f64>::None), Value::Missing);
        assert_eq!(Value::from(Some(3.0)), Value::Num(3.0));
    }

    #[test]
    fn display_round_trip_for_numbers() {
        assert_eq!(Value::num(2.25).to_string(), "2.25");
        assert_eq!(Value::cat("via Roma").to_string(), "via Roma");
        assert_eq!(Value::Missing.to_string(), "");
    }

    #[test]
    fn serde_round_trip() {
        for v in [Value::num(1.25), Value::cat("x"), Value::Missing] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            assert_eq!(v, back);
        }
    }
}
