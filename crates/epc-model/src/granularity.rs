//! Spatial granularity levels.
//!
//! INDICE presents knowledge "at different spatial granularity levels such as
//! city, district, neighbourhood, or housing unit" (§2.3); the dashboards
//! switch map type as the user drills down. This module models that
//! hierarchy and its mapping to map zoom levels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four spatial granularity levels of the paper, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Whole city (coarsest).
    City,
    /// Administrative district.
    District,
    /// Neighbourhood.
    Neighbourhood,
    /// Single housing unit / certificate (finest).
    HousingUnit,
}

impl Granularity {
    /// All levels, coarsest first.
    pub const ALL: [Granularity; 4] = [
        Granularity::City,
        Granularity::District,
        Granularity::Neighbourhood,
        Granularity::HousingUnit,
    ];

    /// The next finer level (drill-down), if any.
    pub fn finer(self) -> Option<Granularity> {
        match self {
            Granularity::City => Some(Granularity::District),
            Granularity::District => Some(Granularity::Neighbourhood),
            Granularity::Neighbourhood => Some(Granularity::HousingUnit),
            Granularity::HousingUnit => None,
        }
    }

    /// The next coarser level (roll-up), if any.
    pub fn coarser(self) -> Option<Granularity> {
        match self {
            Granularity::City => None,
            Granularity::District => Some(Granularity::City),
            Granularity::Neighbourhood => Some(Granularity::District),
            Granularity::HousingUnit => Some(Granularity::Neighbourhood),
        }
    }

    /// A representative web-map zoom level for the granularity, used when
    /// sizing marker-cluster cells (city ≈ 11 … housing unit ≈ 17).
    pub fn zoom_level(self) -> u8 {
        match self {
            Granularity::City => 11,
            Granularity::District => 13,
            Granularity::Neighbourhood => 15,
            Granularity::HousingUnit => 17,
        }
    }

    /// Maps a web-map zoom level back to the granularity INDICE uses at that
    /// zoom (drill-down switches view when the user zooms).
    pub fn from_zoom(zoom: u8) -> Granularity {
        match zoom {
            0..=11 => Granularity::City,
            12..=13 => Granularity::District,
            14..=15 => Granularity::Neighbourhood,
            _ => Granularity::HousingUnit,
        }
    }

    /// `true` when `self` is at least as fine as `other`.
    pub fn at_least_as_fine_as(self, other: Granularity) -> bool {
        self >= other
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::City => "city",
            Granularity::District => "district",
            Granularity::Neighbourhood => "neighbourhood",
            Granularity::HousingUnit => "housing-unit",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_coarse_to_fine() {
        assert!(Granularity::City < Granularity::District);
        assert!(Granularity::District < Granularity::Neighbourhood);
        assert!(Granularity::Neighbourhood < Granularity::HousingUnit);
        assert!(Granularity::HousingUnit.at_least_as_fine_as(Granularity::City));
        assert!(!Granularity::City.at_least_as_fine_as(Granularity::District));
    }

    #[test]
    fn finer_and_coarser_are_inverse() {
        for g in Granularity::ALL {
            if let Some(f) = g.finer() {
                assert_eq!(f.coarser(), Some(g));
            }
            if let Some(c) = g.coarser() {
                assert_eq!(c.finer(), Some(g));
            }
        }
        assert_eq!(Granularity::HousingUnit.finer(), None);
        assert_eq!(Granularity::City.coarser(), None);
    }

    #[test]
    fn zoom_round_trips() {
        for g in Granularity::ALL {
            assert_eq!(Granularity::from_zoom(g.zoom_level()), g);
        }
        assert_eq!(Granularity::from_zoom(0), Granularity::City);
        assert_eq!(Granularity::from_zoom(20), Granularity::HousingUnit);
    }

    #[test]
    fn zoom_is_monotone_in_granularity() {
        for pair in Granularity::ALL.windows(2) {
            assert!(pair[0].zoom_level() < pair[1].zoom_level());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Granularity::City.to_string(), "city");
        assert_eq!(Granularity::HousingUnit.to_string(), "housing-unit");
    }
}
