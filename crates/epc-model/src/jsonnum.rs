//! Exact JSON codec for `f64` checkpoint fields.
//!
//! The offline serde shim renders non-finite numbers as `null` and drops
//! the sign of `-0.0` — acceptable for human-facing artifacts, fatal for
//! checkpoints that must rehydrate bit-identical pipeline state. Durable
//! checkpoints therefore encode the four lossy cases as tagged strings
//! and everything else as a plain JSON number (the shim's `Num` writer is
//! shortest-round-trip, hence exact for finite non-negative-zero values).
//!
//! Policy:
//!
//! | value                | encoding       |
//! |----------------------|----------------|
//! | finite, not `-0.0`   | `Value::Num`   |
//! | `-0.0`               | `"-0"`         |
//! | `NaN`                | `"NaN"`        |
//! | `+∞`                 | `"inf"`        |
//! | `-∞`                 | `"-inf"`       |

use serde::{Error, Value};

/// Encodes an `f64` exactly (bit-identity up to NaN payload).
pub fn encode_f64(x: f64) -> Value {
    if x.is_nan() {
        Value::Str("NaN".to_owned())
    } else if x == f64::INFINITY {
        Value::Str("inf".to_owned())
    } else if x == f64::NEG_INFINITY {
        Value::Str("-inf".to_owned())
    } else if x == 0.0 && x.is_sign_negative() {
        Value::Str("-0".to_owned())
    } else {
        Value::Num(x)
    }
}

/// Decodes a value written by [`encode_f64`].
pub fn decode_f64(v: &Value) -> Result<f64, Error> {
    match v {
        Value::Num(x) => Ok(*x),
        Value::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "-0" => Ok(-0.0),
            other => Err(Error::custom(format!(
                "expected exact f64 encoding, found string {other:?}"
            ))),
        },
        other => Err(Error::mismatch("exact f64 encoding", other)),
    }
}

/// Encodes an optional `f64`: `None` maps to `null`, which is unambiguous
/// because [`encode_f64`] never emits `null`.
pub fn encode_opt_f64(x: Option<f64>) -> Value {
    match x {
        Some(x) => encode_f64(x),
        None => Value::Null,
    }
}

/// Decodes a value written by [`encode_opt_f64`].
pub fn decode_opt_f64(v: &Value) -> Result<Option<f64>, Error> {
    match v {
        Value::Null => Ok(None),
        other => decode_f64(other).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(x: f64) -> f64 {
        let text = serde_json::to_string(&encode_f64(x)).unwrap();
        let v = serde_json::from_str::<Value>(&text).unwrap();
        decode_f64(&v).unwrap()
    }

    #[test]
    fn finite_values_round_trip_exactly() {
        for x in [
            0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324,
            9_007_199_254_740_993.0,
        ] {
            let back = round_trip(x);
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} -> {back:?}");
        }
    }

    #[test]
    fn lossy_shim_cases_are_string_tagged() {
        assert_eq!(round_trip(f64::INFINITY), f64::INFINITY);
        assert_eq!(round_trip(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(round_trip(f64::NAN).is_nan());
        let neg_zero = round_trip(-0.0);
        assert_eq!(neg_zero, 0.0);
        assert!(neg_zero.is_sign_negative(), "-0.0 must keep its sign");
        assert_eq!(encode_f64(f64::NAN), Value::Str("NaN".to_owned()));
        assert_eq!(encode_f64(-0.0), Value::Str("-0".to_owned()));
        assert_eq!(encode_f64(0.0), Value::Num(0.0));
    }

    #[test]
    fn options_use_null_for_none() {
        assert_eq!(encode_opt_f64(None), Value::Null);
        assert_eq!(decode_opt_f64(&Value::Null).unwrap(), None);
        assert_eq!(
            decode_opt_f64(&encode_opt_f64(Some(2.5))).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        assert!(decode_f64(&Value::Str("fast".to_owned())).is_err());
        assert!(decode_f64(&Value::Null).is_err());
        assert!(decode_f64(&Value::Bool(true)).is_err());
    }
}
