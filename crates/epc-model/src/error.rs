//! Error types for the data-model layer.

use std::fmt;

/// Errors produced while building schemas, mutating datasets, or parsing CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute id was out of range for the schema.
    InvalidAttrId(u32),
    /// A value of the wrong kind was supplied for an attribute
    /// (e.g. a categorical label for a numeric column).
    KindMismatch {
        /// Attribute the value was destined for.
        attribute: String,
        /// What the schema expects ("numeric" or "categorical").
        expected: &'static str,
        /// What was supplied.
        got: &'static str,
    },
    /// A record had a different number of fields than the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of fields in the record.
        got: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending index.
        row: usize,
        /// Number of rows in the dataset.
        n_rows: usize,
    },
    /// Two attribute definitions share the same name.
    DuplicateAttribute(String),
    /// A CSV line could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Datasets with different schemas were combined.
    SchemaMismatch,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownAttribute(name) => {
                write!(f, "unknown attribute: {name:?}")
            }
            ModelError::InvalidAttrId(id) => write!(f, "invalid attribute id: {id}"),
            ModelError::KindMismatch {
                attribute,
                expected,
                got,
            } => write!(
                f,
                "kind mismatch for attribute {attribute:?}: expected {expected}, got {got}"
            ),
            ModelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record arity mismatch: schema has {expected} attributes, record has {got}"
                )
            }
            ModelError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row {row} out of bounds (dataset has {n_rows} rows)")
            }
            ModelError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name: {name:?}")
            }
            ModelError::Csv { line, reason } => {
                write!(f, "CSV parse error at line {line}: {reason}")
            }
            ModelError::SchemaMismatch => write!(f, "datasets have different schemas"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::UnknownAttribute("foo".into());
        assert!(e.to_string().contains("foo"));

        let e = ModelError::KindMismatch {
            attribute: "u_windows".into(),
            expected: "numeric",
            got: "categorical",
        };
        let s = e.to_string();
        assert!(s.contains("u_windows") && s.contains("numeric") && s.contains("categorical"));

        let e = ModelError::ArityMismatch {
            expected: 132,
            got: 3,
        };
        assert!(e.to_string().contains("132"));

        let e = ModelError::RowOutOfBounds { row: 9, n_rows: 5 };
        assert!(e.to_string().contains('9') && e.to_string().contains('5'));

        let e = ModelError::Csv {
            line: 17,
            reason: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ModelError::SchemaMismatch, ModelError::SchemaMismatch);
        assert_ne!(ModelError::InvalidAttrId(1), ModelError::InvalidAttrId(2));
    }
}
