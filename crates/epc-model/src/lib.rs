//! # epc-model
//!
//! Data-model substrate for the INDICE reproduction: typed attribute values,
//! the 132-attribute Energy Performance Certificate (EPC) schema, and a
//! columnar in-memory dataset with the operations the rest of the pipeline
//! needs (selection, projection, mutation during cleaning, CSV round-trips).
//!
//! The paper (Cerquitelli et al., EDBT/ICDT Workshops 2019) analyses a
//! collection of ~25 000 EPCs issued for the Piedmont region, each described
//! by 132 features (89 categorical, 43 quantitative). This crate provides the
//! schema of that collection — the thermo-physical attributes the case study
//! names explicitly (aspect ratio S/V, average U-values, heated surface, the
//! ETAH heating-efficiency index, the EPH response variable), the geospatial
//! attributes the cleaning step repairs (address, house number, ZIP code,
//! latitude, longitude), and the remaining certificate fields.
//!
//! ## Quick tour
//!
//! ```
//! use epc_model::{Dataset, Value, schema::standard_epc_schema, wellknown};
//!
//! let schema = standard_epc_schema();
//! assert_eq!(schema.len(), 132);
//!
//! let mut ds = Dataset::new(schema.clone());
//! let mut rec = ds.empty_record();
//! rec.set_by_name(ds.schema(), epc_model::wellknown::ASPECT_RATIO, Value::num(0.55)).unwrap();
//! rec.set_by_name(ds.schema(), wellknown::BUILDING_CATEGORY, Value::cat("E.1.1")).unwrap();
//! ds.push_record(rec).unwrap();
//! assert_eq!(ds.n_rows(), 1);
//! ```

pub mod attribute;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod fault;
pub mod granularity;
pub mod jsonnum;
pub mod schema;
pub mod value;
pub mod wellknown;

pub use attribute::{AttrId, AttrKind, AttributeDef};
pub use dataset::{Column, ColumnData, Dataset, Record, RowView};
pub use error::ModelError;
pub use fault::{scan_faults, Quarantine, QuarantinedRecord, RecordFault, ValidationPolicy};
pub use granularity::Granularity;
pub use jsonnum::{decode_f64, decode_opt_f64, encode_f64, encode_opt_f64};
pub use schema::Schema;
pub use value::Value;
