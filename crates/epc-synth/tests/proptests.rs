//! Property-based tests of the synthetic generator: schema shape, value
//! ranges, ground-truth alignment and determinism must hold for *any*
//! reasonable configuration, not just the defaults.

use epc_synth::city::{CityConfig, CityPlan};
use epc_synth::epcgen::{EpcGenerator, SynthConfig};
use epc_synth::noise::{apply_noise, NoiseConfig};
use proptest::prelude::*;

fn city_strategy() -> impl Strategy<Value = CityConfig> {
    (2usize..6, 1usize..4, 1usize..4, 3usize..12, 0u64..100).prop_map(
        |(districts, neighbourhoods, streets, houses, seed)| CityConfig {
            n_districts: districts,
            neighbourhoods_per_district: neighbourhoods,
            streets_per_neighbourhood: streets,
            houses_per_street: houses,
            seed,
            ..CityConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn city_counts_follow_config(cfg in city_strategy()) {
        let plan = CityPlan::generate(cfg.clone());
        prop_assert_eq!(plan.hierarchy.districts.len(), cfg.n_districts);
        prop_assert_eq!(
            plan.hierarchy.neighbourhoods.len(),
            cfg.n_districts * cfg.neighbourhoods_per_district
        );
        prop_assert_eq!(
            plan.street_map.n_streets(),
            cfg.n_districts * cfg.neighbourhoods_per_district * cfg.streets_per_neighbourhood
        );
        prop_assert_eq!(
            plan.n_addresses(),
            plan.street_map.n_streets() * cfg.houses_per_street
        );
    }

    #[test]
    fn every_address_is_spatially_consistent(cfg in city_strategy()) {
        let plan = CityPlan::generate(cfg);
        for e in plan.street_map.entries().iter().step_by(7) {
            let d = plan.hierarchy.district_of(&e.point);
            prop_assert!(d.is_some(), "address outside every district");
            prop_assert_eq!(&d.unwrap().name, &e.district);
            let n = plan.hierarchy.neighbourhood_of(&e.point).unwrap();
            prop_assert_eq!(&n.name, &e.neighbourhood);
        }
    }

    #[test]
    fn generated_records_respect_physical_ranges(
        cfg in city_strategy(),
        n in 50usize..300,
        seed in 0u64..50,
    ) {
        let c = EpcGenerator::new(SynthConfig {
            n_records: n,
            city: cfg,
            seed,
            ..SynthConfig::default()
        })
        .generate();
        prop_assert_eq!(c.dataset.n_rows(), n);
        prop_assert_eq!(c.dataset.n_cols(), 132);
        let s = c.dataset.schema();
        let checks: [(&str, f64, f64); 5] = [
            ("u_windows", 1.1, 5.5),
            ("u_opaque", 0.15, 1.1),
            ("eta_h", 0.2, 1.1),
            ("aspect_ratio", 0.25, 1.1),
            ("eph", 10.0, 500.0),
        ];
        for (attr, lo, hi) in checks {
            let id = s.require(attr).unwrap();
            for v in c.dataset.numeric_values(id) {
                prop_assert!((lo..=hi).contains(&v), "{attr} = {v}");
            }
        }
    }

    #[test]
    fn truth_vectors_are_aligned(n in 20usize..150, seed in 0u64..30) {
        let c = EpcGenerator::new(SynthConfig {
            n_records: n,
            seed,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 2,
                houses_per_street: 5,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        prop_assert_eq!(c.truth.streets.len(), n);
        prop_assert_eq!(c.truth.points.len(), n);
        prop_assert_eq!(c.truth.archetypes.len(), n);
        for a in &c.truth.archetypes {
            prop_assert!(*a < epc_synth::archetype::ARCHETYPES.len());
        }
    }

    #[test]
    fn noise_rates_zero_is_identity(n in 30usize..120, seed in 0u64..30) {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: n,
            seed,
            city: CityConfig {
                n_districts: 2,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 2,
                houses_per_street: 4,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        let before = c.dataset.clone();
        apply_noise(&mut c, &NoiseConfig::none());
        prop_assert_eq!(c.dataset, before);
    }

    #[test]
    fn noise_is_deterministic_in_its_seed(noise_seed in 0u64..40) {
        let make = || {
            let mut c = EpcGenerator::new(SynthConfig {
                n_records: 120,
                city: CityConfig {
                    n_districts: 2,
                    neighbourhoods_per_district: 2,
                    streets_per_neighbourhood: 2,
                    houses_per_street: 4,
                    ..CityConfig::default()
                },
                ..SynthConfig::default()
            })
            .generate();
            apply_noise(
                &mut c,
                &NoiseConfig {
                    seed: noise_seed,
                    ..NoiseConfig::default()
                },
            );
            c
        };
        let a = make();
        let b = make();
        prop_assert_eq!(a.dataset, b.dataset);
        prop_assert_eq!(a.truth.corrupted_addresses, b.truth.corrupted_addresses);
    }
}
