//! Building archetypes: construction-period profiles whose attribute
//! distributions generate the correlated structure the case study mines.
//!
//! The marginals are calibrated to the paper's footnote-4 bins — Uw spans
//! `[1.1, 5.5]` W/m²K, Uo `[0.15, 1.1]`, ETAH `[0.20, 1.1]` — and the EPH
//! response follows a simplified steady-state heat-balance law, so that
//! thermally poor archetypes really do consume more (the signal the
//! association rules and the cluster-markers surface).

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Index into [`ARCHETYPES`].
pub type ArchetypeId = usize;

/// A `(mean, std)` pair for a clamped normal draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gauss {
    /// Mean of the normal.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Hard clamp range.
    pub clamp: (f64, f64),
}

impl Gauss {
    /// Draws a clamped sample.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let n = Normal::new(self.mean, self.std).expect("valid normal");
        n.sample(rng).clamp(self.clamp.0, self.clamp.1)
    }
}

/// A building archetype.
#[derive(Debug, Clone, PartialEq)]
pub struct Archetype {
    /// Display name.
    pub name: &'static str,
    /// Construction-year range.
    pub years: (u32, u32),
    /// Label used for the `construction_period` attribute.
    pub period_label: &'static str,
    /// Aspect ratio S/V \[1/m\].
    pub aspect_ratio: Gauss,
    /// Average U-value of the vertical opaque envelope \[W/m²K\].
    pub u_opaque: Gauss,
    /// Average U-value of the windows \[W/m²K\].
    pub u_windows: Gauss,
    /// Global heating efficiency ETAH.
    pub eta_h: Gauss,
    /// Heated surface log-normal parameters `(ln-mean, ln-std)` \[m²\].
    pub heat_surface_ln: (f64, f64),
    /// Probability that the envelope was insulated in a retrofit.
    pub insulation_prob: f64,
    /// Probability of a condensing generator.
    pub condensing_prob: f64,
    /// Probability of double (or better) glazing.
    pub double_glazing_prob: f64,
    /// Heating-fuel propensities `(natural gas, district heating, oil,
    /// heat pump/electric)` — must sum to 1.
    pub fuel_probs: [f64; 4],
}

impl Archetype {
    /// Draws a construction year inside the archetype's range.
    pub fn sample_year(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.years.0..=self.years.1)
    }

    /// Draws a heated surface.
    pub fn sample_heat_surface(&self, rng: &mut StdRng) -> f64 {
        let ln = LogNormal::new(self.heat_surface_ln.0, self.heat_surface_ln.1)
            .expect("valid lognormal");
        ln.sample(rng).clamp(25.0, 2_000.0)
    }

    /// Draws a heating fuel label.
    pub fn sample_fuel(&self, rng: &mut StdRng) -> &'static str {
        const FUELS: [&str; 4] = ["natural gas", "district heating", "oil", "heat pump"];
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.fuel_probs.iter().enumerate() {
            acc += p;
            if draw < acc {
                return FUELS[i];
            }
        }
        FUELS[0]
    }
}

/// The six construction-period archetypes of the synthetic Turin.
pub const ARCHETYPES: [Archetype; 6] = [
    Archetype {
        name: "historic masonry",
        years: (1880, 1918),
        period_label: "before 1919",
        aspect_ratio: Gauss {
            mean: 0.62,
            std: 0.10,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.95,
            std: 0.10,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 4.40,
            std: 0.45,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.62,
            std: 0.08,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.55, 0.45),
        insulation_prob: 0.08,
        condensing_prob: 0.10,
        double_glazing_prob: 0.25,
        fuel_probs: [0.72, 0.12, 0.14, 0.02],
    },
    Archetype {
        name: "interwar",
        years: (1919, 1945),
        period_label: "1919-1945",
        aspect_ratio: Gauss {
            mean: 0.58,
            std: 0.09,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.88,
            std: 0.10,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 4.00,
            std: 0.45,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.66,
            std: 0.08,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.45, 0.42),
        insulation_prob: 0.12,
        condensing_prob: 0.14,
        double_glazing_prob: 0.35,
        fuel_probs: [0.74, 0.12, 0.12, 0.02],
    },
    Archetype {
        name: "postwar boom slab",
        years: (1946, 1975),
        period_label: "1946-1975",
        aspect_ratio: Gauss {
            mean: 0.48,
            std: 0.08,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.80,
            std: 0.11,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 3.40,
            std: 0.50,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.72,
            std: 0.08,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.35, 0.40),
        insulation_prob: 0.22,
        condensing_prob: 0.22,
        double_glazing_prob: 0.55,
        fuel_probs: [0.70, 0.20, 0.07, 0.03],
    },
    Archetype {
        name: "late 20th century",
        years: (1976, 1990),
        period_label: "1976-1990",
        aspect_ratio: Gauss {
            mean: 0.45,
            std: 0.08,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.62,
            std: 0.10,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 2.80,
            std: 0.40,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.78,
            std: 0.07,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.40, 0.40),
        insulation_prob: 0.45,
        condensing_prob: 0.35,
        double_glazing_prob: 0.80,
        fuel_probs: [0.72, 0.20, 0.03, 0.05],
    },
    Archetype {
        name: "transitional",
        years: (1991, 2005),
        period_label: "1991-2005",
        aspect_ratio: Gauss {
            mean: 0.42,
            std: 0.07,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.48,
            std: 0.09,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 2.30,
            std: 0.35,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.84,
            std: 0.06,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.45, 0.38),
        insulation_prob: 0.70,
        condensing_prob: 0.55,
        double_glazing_prob: 0.95,
        fuel_probs: [0.70, 0.18, 0.02, 0.10],
    },
    Archetype {
        name: "modern efficient",
        years: (2006, 2018),
        period_label: "after 2005",
        aspect_ratio: Gauss {
            mean: 0.38,
            std: 0.07,
            clamp: (0.25, 1.10),
        },
        u_opaque: Gauss {
            mean: 0.30,
            std: 0.07,
            clamp: (0.15, 1.10),
        },
        u_windows: Gauss {
            mean: 1.60,
            std: 0.25,
            clamp: (1.10, 5.50),
        },
        eta_h: Gauss {
            mean: 0.92,
            std: 0.06,
            clamp: (0.20, 1.10),
        },
        heat_surface_ln: (4.50, 0.38),
        insulation_prob: 0.97,
        condensing_prob: 0.90,
        double_glazing_prob: 1.0,
        fuel_probs: [0.55, 0.15, 0.0, 0.30],
    },
];

/// Turin's heating degree-days (climate zone E).
pub const TURIN_DEGREE_DAYS: f64 = 2_617.0;

/// The simplified steady-state EPH law used by the generator:
/// `EPH = C · (S/V) · (0.7·Uo + 0.3·Uw) / ETAH`, with `C` calibrated so a
/// modern flat lands near 40 kWh/m²·yr and a historic one near 250.
pub fn eph_model(aspect_ratio: f64, u_opaque: f64, u_windows: f64, eta_h: f64) -> f64 {
    const C: f64 = 132.0;
    C * aspect_ratio * (0.7 * u_opaque + 0.3 * u_windows) / eta_h.max(0.05)
}

/// Maps an EPH value to the Italian EPC class letter (simplified bands).
pub fn epc_class(eph: f64) -> &'static str {
    match eph {
        e if e < 30.0 => "A",
        e if e < 50.0 => "B",
        e if e < 70.0 => "C",
        e if e < 100.0 => "D",
        e if e < 150.0 => "E",
        e if e < 220.0 => "F",
        _ => "G",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn archetype_parameters_stay_in_footnote4_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for a in &ARCHETYPES {
            for _ in 0..200 {
                let uo = a.u_opaque.sample(&mut rng);
                let uw = a.u_windows.sample(&mut rng);
                let eta = a.eta_h.sample(&mut rng);
                assert!((0.15..=1.10).contains(&uo));
                assert!((1.10..=5.50).contains(&uw));
                assert!((0.20..=1.10).contains(&eta));
            }
        }
    }

    #[test]
    fn newer_archetypes_are_more_efficient() {
        for w in ARCHETYPES.windows(2) {
            assert!(w[0].u_opaque.mean >= w[1].u_opaque.mean);
            assert!(w[0].u_windows.mean >= w[1].u_windows.mean);
            assert!(w[0].eta_h.mean <= w[1].eta_h.mean);
            assert!(w[0].years.1 < w[1].years.1);
        }
    }

    #[test]
    fn eph_model_orders_archetypes() {
        let historic = &ARCHETYPES[0];
        let modern = &ARCHETYPES[5];
        let eph_old = eph_model(
            historic.aspect_ratio.mean,
            historic.u_opaque.mean,
            historic.u_windows.mean,
            historic.eta_h.mean,
        );
        let eph_new = eph_model(
            modern.aspect_ratio.mean,
            modern.u_opaque.mean,
            modern.u_windows.mean,
            modern.eta_h.mean,
        );
        assert!(eph_old > 180.0, "historic EPH ≈ {eph_old}");
        assert!(eph_new < 60.0, "modern EPH ≈ {eph_new}");
        assert!(eph_old > 3.0 * eph_new);
    }

    #[test]
    fn epc_classes_cover_the_scale() {
        assert_eq!(epc_class(20.0), "A");
        assert_eq!(epc_class(45.0), "B");
        assert_eq!(epc_class(65.0), "C");
        assert_eq!(epc_class(90.0), "D");
        assert_eq!(epc_class(120.0), "E");
        assert_eq!(epc_class(180.0), "F");
        assert_eq!(epc_class(400.0), "G");
    }

    #[test]
    fn fuel_probs_sum_to_one() {
        for a in &ARCHETYPES {
            let s: f64 = a.fuel_probs.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: {s}", a.name);
        }
    }

    #[test]
    fn sampled_fuel_is_valid_and_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = &ARCHETYPES[2];
        for _ in 0..50 {
            let f1 = a.sample_fuel(&mut rng1);
            let f2 = a.sample_fuel(&mut rng2);
            assert_eq!(f1, f2);
            assert!(["natural gas", "district heating", "oil", "heat pump"].contains(&f1));
        }
    }

    #[test]
    fn year_and_surface_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for a in &ARCHETYPES {
            for _ in 0..100 {
                let y = a.sample_year(&mut rng);
                assert!(y >= a.years.0 && y <= a.years.1);
                let s = a.sample_heat_surface(&mut rng);
                assert!((25.0..=2_000.0).contains(&s));
            }
        }
    }
}
