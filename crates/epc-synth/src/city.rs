//! The procedural city: district/neighbourhood polygons plus a complete
//! referenced street map — the stand-in for Turin's municipal open data the
//! paper's cleaning step matches against (see DESIGN.md).

use crate::names;
use epc_geo::bbox::BoundingBox;
use epc_geo::point::GeoPoint;
use epc_geo::region::{Polygon, Region, RegionHierarchy};
use epc_geo::streetmap::{StreetEntry, StreetMap};
use epc_model::Granularity;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the procedural city.
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// City name.
    pub name: String,
    /// City centre (defaults to Turin's Piazza Castello).
    pub center: GeoPoint,
    /// Number of districts (laid on a near-square grid).
    pub n_districts: usize,
    /// Neighbourhoods per district (subdivided 2×2, 2×3, …).
    pub neighbourhoods_per_district: usize,
    /// Streets per neighbourhood.
    pub streets_per_neighbourhood: usize,
    /// House numbers per street.
    pub houses_per_street: usize,
    /// Side length of a district cell in meters.
    pub district_size_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            name: "Torino".into(),
            center: GeoPoint::new(45.0703, 7.6869),
            n_districts: 8, // Turin has 8 circoscrizioni
            neighbourhoods_per_district: 4,
            streets_per_neighbourhood: 6,
            houses_per_street: 20,
            district_size_m: 2_500.0,
            seed: 1,
        }
    }
}

/// The generated city: regions + referenced street map.
#[derive(Debug, Clone)]
pub struct CityPlan {
    /// The configuration that produced the plan.
    pub config: CityConfig,
    /// District/neighbourhood hierarchy.
    pub hierarchy: RegionHierarchy,
    /// The referenced street map (ground truth for cleaning).
    pub street_map: StreetMap,
}

impl CityPlan {
    /// Generates a city from `config` (fully deterministic).
    pub fn generate(config: CityConfig) -> CityPlan {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut hierarchy = RegionHierarchy::new(&config.name);
        let mut street_map = StreetMap::new();

        // Districts on a near-square grid centred on the city centre.
        let grid_cols = (config.n_districts as f64).sqrt().ceil() as usize;
        let grid_rows = config.n_districts.div_ceil(grid_cols);
        let cell_deg_lat = config.district_size_m / 111_195.0;
        let cell_deg_lon =
            config.district_size_m / (111_195.0 * config.center.lat.to_radians().cos());
        let origin_lat = config.center.lat - cell_deg_lat * grid_rows as f64 / 2.0;
        let origin_lon = config.center.lon - cell_deg_lon * grid_cols as f64 / 2.0;

        // Neighbourhood subdivision of each district cell. Boxes are laid
        // out first, then *named by distance from the city centre*, so the
        // central-sounding names ("Centro Storico", "Quadrilatero") really
        // are central — matching the historic-centre energy pattern the
        // generator creates.
        let n_cols = (config.neighbourhoods_per_district as f64).sqrt().ceil() as usize;
        let n_rows = config.neighbourhoods_per_district.div_ceil(n_cols);

        let mut neighbourhood_boxes: Vec<(usize, BoundingBox)> = Vec::new(); // (district, box)
        for d in 0..config.n_districts {
            let row = d / grid_cols;
            let col = d % grid_cols;
            let d_box = BoundingBox::new(
                origin_lat + row as f64 * cell_deg_lat,
                origin_lon + col as f64 * cell_deg_lon,
                origin_lat + (row + 1) as f64 * cell_deg_lat,
                origin_lon + (col + 1) as f64 * cell_deg_lon,
            );
            hierarchy.districts.push(Region {
                name: names::district_name(d),
                level: Granularity::District,
                parent: Some(config.name.clone()),
                polygon: Polygon::from_bbox(&d_box),
            });
            for nh in 0..config.neighbourhoods_per_district {
                let nrow = nh / n_cols;
                let ncol = nh % n_cols;
                let lat_step = d_box.lat_span() / n_rows as f64;
                let lon_step = d_box.lon_span() / n_cols as f64;
                neighbourhood_boxes.push((
                    d,
                    BoundingBox::new(
                        d_box.min_lat + nrow as f64 * lat_step,
                        d_box.min_lon + ncol as f64 * lon_step,
                        d_box.min_lat + (nrow + 1) as f64 * lat_step,
                        d_box.min_lon + (ncol + 1) as f64 * lon_step,
                    ),
                ));
            }
        }
        // Central boxes get the early (central) names of the bank.
        neighbourhood_boxes.sort_by(|a, b| {
            let da = a.1.center().haversine_m(&config.center);
            let db = b.1.center().haversine_m(&config.center);
            da.partial_cmp(&db).expect("finite distances")
        });

        let mut street_idx = 0usize;
        for (neighbourhood_idx, (d, n_box)) in neighbourhood_boxes.iter().enumerate() {
            let d_name = names::district_name(*d);
            let n_name = names::neighbourhood_name(neighbourhood_idx);
            // ZIP codes in Turin run 10121..10156; extend the scheme.
            let zip = format!("{}", 10121 + neighbourhood_idx);
            hierarchy.neighbourhoods.push(Region {
                name: n_name.clone(),
                level: Granularity::Neighbourhood,
                parent: Some(d_name.clone()),
                polygon: Polygon::from_bbox(n_box),
            });
            for _ in 0..config.streets_per_neighbourhood {
                let street = names::street_name(street_idx);
                street_idx += 1;
                lay_street(
                    &mut street_map,
                    &mut rng,
                    &street,
                    &zip,
                    &d_name,
                    &n_name,
                    n_box,
                    config.houses_per_street,
                );
            }
        }

        // City polygon = outer hull of the district grid.
        let city_box = BoundingBox::new(
            origin_lat,
            origin_lon,
            origin_lat + grid_rows as f64 * cell_deg_lat,
            origin_lon + grid_cols as f64 * cell_deg_lon,
        );
        hierarchy.city_polygon = Some(Polygon::from_bbox(&city_box));

        CityPlan {
            config,
            hierarchy,
            street_map,
        }
    }

    /// Total number of addressable entries (house numbers).
    pub fn n_addresses(&self) -> usize {
        self.street_map.len()
    }
}

/// Lays one street inside a neighbourhood box: a straight segment with
/// evenly spaced house numbers (odd on one side, even on the other, as in
/// Italian numbering).
#[allow(clippy::too_many_arguments)]
fn lay_street(
    map: &mut StreetMap,
    rng: &mut StdRng,
    street: &str,
    zip: &str,
    district: &str,
    neighbourhood: &str,
    bounds: &BoundingBox,
    houses: usize,
) {
    let horizontal: bool = rng.gen();
    // Random anchor inside the box, inset from the edges.
    let t = 0.15 + rng.gen::<f64>() * 0.7;
    let start = 0.1 + rng.gen::<f64>() * 0.2;
    let end = 0.7 + rng.gen::<f64>() * 0.25;
    for h in 0..houses {
        let frac = start + (end - start) * h as f64 / houses.max(1) as f64;
        // Odd numbers on one side (small lateral offset), even on the other.
        let side = if h % 2 == 0 { 1.0 } else { -1.0 };
        let lateral = t + side * 0.01;
        let (lat, lon) = if horizontal {
            (
                bounds.min_lat + lateral * bounds.lat_span(),
                bounds.min_lon + frac * bounds.lon_span(),
            )
        } else {
            (
                bounds.min_lat + frac * bounds.lat_span(),
                bounds.min_lon + lateral * bounds.lon_span(),
            )
        };
        map.insert(StreetEntry {
            street: street.to_owned(),
            house_number: format!("{}", h + 1),
            zip: zip.to_owned(),
            point: GeoPoint::new(lat, lon),
            district: district.to_owned(),
            neighbourhood: neighbourhood.to_owned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CityConfig {
        CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 4,
            streets_per_neighbourhood: 3,
            houses_per_street: 10,
            ..CityConfig::default()
        }
    }

    #[test]
    fn plan_has_expected_counts() {
        let plan = CityPlan::generate(small_config());
        assert_eq!(plan.hierarchy.districts.len(), 4);
        assert_eq!(plan.hierarchy.neighbourhoods.len(), 16);
        assert_eq!(plan.street_map.n_streets(), 48);
        assert_eq!(plan.n_addresses(), 480);
    }

    #[test]
    fn every_address_lies_in_its_neighbourhood_and_district() {
        let plan = CityPlan::generate(small_config());
        for e in plan.street_map.entries() {
            let d = plan
                .hierarchy
                .district_of(&e.point)
                .unwrap_or_else(|| panic!("address {e:?} outside every district"));
            assert_eq!(d.name, e.district);
            let n = plan.hierarchy.neighbourhood_of(&e.point).unwrap();
            assert_eq!(n.name, e.neighbourhood);
        }
    }

    #[test]
    fn zip_codes_are_per_neighbourhood_and_plausible() {
        let plan = CityPlan::generate(small_config());
        for e in plan.street_map.entries() {
            assert!(epc_geo::address::is_plausible_zip(&e.zip), "{}", e.zip);
        }
        // All entries of one neighbourhood share a ZIP.
        let first = &plan.street_map.entries()[0];
        for e in plan.street_map.entries() {
            if e.neighbourhood == first.neighbourhood {
                assert_eq!(e.zip, first.zip);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CityPlan::generate(small_config());
        let b = CityPlan::generate(small_config());
        assert_eq!(a.street_map.entries(), b.street_map.entries());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CityPlan::generate(small_config());
        let b = CityPlan::generate(CityConfig {
            seed: 99,
            ..small_config()
        });
        assert_ne!(a.street_map.entries(), b.street_map.entries());
    }

    #[test]
    fn default_city_is_turin_sized() {
        let plan = CityPlan::generate(CityConfig::default());
        assert_eq!(plan.hierarchy.districts.len(), 8);
        assert_eq!(plan.hierarchy.city, "Torino");
        // 8 districts × 4 neighbourhoods × 6 streets × 20 houses = 3840.
        assert_eq!(plan.n_addresses(), 3840);
        // City box contains the centre.
        let poly = plan.hierarchy.city_polygon.as_ref().unwrap();
        assert!(poly.contains(&plan.config.center));
    }

    #[test]
    fn house_numbers_run_one_to_n() {
        let plan = CityPlan::generate(small_config());
        let street0 = &plan.street_map.entries()[0].street;
        let numbers: Vec<&str> = plan
            .street_map
            .entries()
            .iter()
            .filter(|e| &e.street == street0)
            .map(|e| e.house_number.as_str())
            .collect();
        assert_eq!(numbers.len(), 10);
        assert!(numbers.contains(&"1") && numbers.contains(&"10"));
    }

    #[test]
    fn street_names_are_unique_citywide() {
        let plan = CityPlan::generate(small_config());
        let mut names: Vec<&str> = plan
            .street_map
            .entries()
            .iter()
            .map(|e| e.street.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), plan.street_map.n_streets());
    }
}
