//! The EPC generator: emits the full 132-attribute dataset plus per-record
//! ground truth (true address, geolocation, archetype), so downstream
//! stages can be *evaluated*, not just run.
//!
//! Spatial structure mirrors the real Turin the paper maps: central
//! districts skew towards historic, thermally poor archetypes; peripheral
//! ones towards modern construction — which is exactly the pattern the
//! choropleth and cluster-marker maps are supposed to reveal.

use crate::archetype::{
    epc_class, eph_model, Archetype, ArchetypeId, Gauss, ARCHETYPES, TURIN_DEGREE_DAYS,
};
use crate::city::{CityConfig, CityPlan};
use epc_geo::point::GeoPoint;
use epc_geo::streetmap::StreetEntry;
use epc_model::{wellknown as wk, Dataset, Record, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of certificates to generate (the paper's collection has
    /// ~25 000).
    pub n_records: usize,
    /// The procedural city to draw addresses from.
    pub city: CityConfig,
    /// Fraction of certificates with intended use `E.1.1` (permanent
    /// residences — the case-study filter).
    pub e11_fraction: f64,
    /// Climate multiplier applied to degree-days and the EPH demand —
    /// 1.0 reproduces Turin; colder fleet cities use > 1.0. The default
    /// keeps single-city output byte-identical to earlier versions.
    pub climate_factor: f64,
    /// Additive shift of the normalized radial position fed to archetype
    /// sampling, clamped to [0, 1]. Positive values skew the stock
    /// towards peripheral (modern) archetypes, negative towards the
    /// historic centre; 0.0 is the unskewed Turin mix.
    pub archetype_skew: f64,
    /// RNG seed (independent of the city seed).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_records: 25_000,
            city: CityConfig::default(),
            e11_fraction: 0.8,
            climate_factor: 1.0,
            archetype_skew: 0.0,
            seed: 2024,
        }
    }
}

/// Per-record ground truth kept alongside the (possibly corrupted) dataset.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Archetype of each record.
    pub archetypes: Vec<ArchetypeId>,
    /// True canonical street of each record.
    pub streets: Vec<String>,
    /// True house number.
    pub house_numbers: Vec<String>,
    /// True ZIP code.
    pub zips: Vec<String>,
    /// True geolocation.
    pub points: Vec<GeoPoint>,
    /// True district name.
    pub districts: Vec<String>,
    /// True neighbourhood name.
    pub neighbourhoods: Vec<String>,
    /// Rows whose attributes were later corrupted into outliers (filled by
    /// the noise stage).
    pub injected_outliers: Vec<usize>,
    /// Rows whose addresses were later corrupted (filled by the noise
    /// stage).
    pub corrupted_addresses: Vec<usize>,
}

/// A generated collection: dataset + city + ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCollection {
    /// The EPC dataset (clean until a noise stage corrupts it).
    pub dataset: Dataset,
    /// The city plan (regions + referenced street map).
    pub city: CityPlan,
    /// Ground truth for evaluation.
    pub truth: GroundTruth,
}

/// The EPC generator.
#[derive(Debug, Clone)]
pub struct EpcGenerator {
    config: SynthConfig,
}

impl EpcGenerator {
    /// Creates a generator.
    pub fn new(config: SynthConfig) -> Self {
        EpcGenerator { config }
    }

    /// Generates the collection (deterministic in the config seeds).
    pub fn generate(&self) -> SyntheticCollection {
        let city = CityPlan::generate(self.config.city.clone());
        let schema = epc_model::schema::standard_epc_schema();
        let mut dataset = Dataset::new(schema);
        let mut truth = GroundTruth::default();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let entries = city.street_map.entries();
        assert!(!entries.is_empty(), "city must have addresses");
        let center = city.config.center;
        let max_dist = entries
            .iter()
            .map(|e| e.point.haversine_m(&center))
            .fold(0.0f64, f64::max)
            .max(1.0);

        for i in 0..self.config.n_records {
            let entry = &entries[rng.gen_range(0..entries.len())];
            let radial = (entry.point.haversine_m(&center) / max_dist + self.config.archetype_skew)
                .clamp(0.0, 1.0);
            let arche_id = sample_archetype(radial, &mut rng);
            let arche = &ARCHETYPES[arche_id];
            let record = self.make_record(&dataset, i, entry, arche, &mut rng);
            dataset
                .push_record(record)
                .expect("generated record is valid");

            truth.archetypes.push(arche_id);
            truth.streets.push(entry.street.clone());
            truth.house_numbers.push(entry.house_number.clone());
            truth.zips.push(entry.zip.clone());
            truth.points.push(entry.point);
            truth.districts.push(entry.district.clone());
            truth.neighbourhoods.push(entry.neighbourhood.clone());
        }

        SyntheticCollection {
            dataset,
            city,
            truth,
        }
    }

    /// Builds one full 132-attribute record.
    fn make_record(
        &self,
        dataset: &Dataset,
        i: usize,
        entry: &StreetEntry,
        arche: &Archetype,
        rng: &mut StdRng,
    ) -> Record {
        let schema = dataset.schema();
        let mut rec = dataset.empty_record();
        let set = |rec: &mut Record, name: &str, v: Value| {
            rec.set_by_name(schema, name, v)
                .unwrap_or_else(|e| panic!("setting {name}: {e}"));
        };

        // --- Core thermo-physical sample ---
        // Envelope components are renovated *independently* in real
        // building stocks (new windows without wall insulation, a new
        // boiler in an uninsulated shell, …). These independent retrofit
        // draws are what keeps the pairwise correlations of the five
        // case-study features weak — the Figure-3 property — while the
        // EPH response still obeys the heat-balance law.
        let sv = arche.aspect_ratio.sample(rng);
        let window_retrofit = rng.gen::<f64>() < 0.35;
        let wall_retrofit = rng.gen::<f64>() < arche.insulation_prob.max(0.15);
        let boiler_retrofit = rng.gen::<f64>() < arche.condensing_prob.max(0.25);
        let uo = if wall_retrofit {
            Gauss {
                mean: 0.32,
                std: 0.08,
                clamp: (0.15, 1.10),
            }
            .sample(rng)
        } else {
            arche.u_opaque.sample(rng)
        };
        let uw = if window_retrofit {
            Gauss {
                mean: 1.75,
                std: 0.30,
                clamp: (1.10, 5.50),
            }
            .sample(rng)
        } else {
            arche.u_windows.sample(rng)
        };
        let eta_h = if boiler_retrofit {
            Gauss {
                mean: 0.90,
                std: 0.06,
                clamp: (0.20, 1.10),
            }
            .sample(rng)
        } else {
            arche.eta_h.sample(rng)
        };
        let sr = arche.sample_heat_surface(rng);
        let eph_noise: f64 = LogNormal::new(0.0f64, 0.12).unwrap().sample(rng);
        // Round here so the stored EPH and the class derived from it agree.
        // `climate_factor` scales the demand the same way degree-days do;
        // at the default 1.0 the multiplication is an exact identity.
        let eph = round1(
            (eph_model(sv, uo, uw, eta_h) * eph_noise * self.config.climate_factor)
                .clamp(10.0, 500.0),
        );

        // --- Identification & geography ---
        set(
            &mut rec,
            wk::CERTIFICATE_ID,
            Value::cat(format!("EPC-{i:06}")),
        );
        set(&mut rec, wk::ADDRESS, Value::cat(entry.street.clone()));
        set(
            &mut rec,
            wk::HOUSE_NUMBER,
            Value::cat(entry.house_number.clone()),
        );
        set(&mut rec, wk::ZIP_CODE, Value::cat(entry.zip.clone()));
        set(
            &mut rec,
            wk::CITY,
            Value::cat(self.config.city.name.clone()),
        );
        set(&mut rec, wk::DISTRICT, Value::cat(entry.district.clone()));
        set(
            &mut rec,
            wk::NEIGHBOURHOOD,
            Value::cat(entry.neighbourhood.clone()),
        );
        set(
            &mut rec,
            wk::ISSUE_YEAR,
            Value::cat(format!("{}", 2016 + (i % 3))),
        );
        set(&mut rec, wk::LATITUDE, Value::num(entry.point.lat));
        set(&mut rec, wk::LONGITUDE, Value::num(entry.point.lon));

        // --- Case-study features ---
        set(&mut rec, wk::ASPECT_RATIO, Value::num(round3(sv)));
        set(&mut rec, wk::U_OPAQUE, Value::num(round3(uo)));
        set(&mut rec, wk::U_WINDOWS, Value::num(round3(uw)));
        set(&mut rec, wk::HEAT_SURFACE, Value::num(round1(sr)));
        set(&mut rec, wk::ETA_H, Value::num(round3(eta_h)));
        set(&mut rec, wk::EPH, Value::num(eph));

        // --- Other energy indices ---
        let ep_dhw_raw: f64 = LogNormal::new(3.1f64, 0.35).unwrap().sample(rng);
        let ep_dhw = ep_dhw_raw.clamp(5.0, 80.0);
        let ep_cooling = rng.gen_range(0.0..25.0);
        let ep_lighting = rng.gen_range(1.0..8.0);
        let renewable_share = if arche.condensing_prob > 0.5 {
            rng.gen_range(5.0..55.0)
        } else {
            rng.gen_range(0.0..15.0)
        };
        let fuel = arche.sample_fuel(rng);
        let co2_factor = match fuel {
            "natural gas" => 0.21,
            "district heating" => 0.16,
            "oil" => 0.28,
            _ => 0.10,
        };
        set(
            &mut rec,
            wk::EP_GLOBAL,
            Value::num(round1(eph + ep_dhw + 0.3 * ep_cooling)),
        );
        set(&mut rec, "ep_cooling", Value::num(round1(ep_cooling)));
        set(&mut rec, "ep_dhw", Value::num(round1(ep_dhw)));
        set(&mut rec, "ep_lighting", Value::num(round1(ep_lighting)));
        set(
            &mut rec,
            "co2_emissions",
            Value::num(round1(eph * co2_factor)),
        );
        set(
            &mut rec,
            "renewable_share",
            Value::num(round1(renewable_share)),
        );
        set(
            &mut rec,
            "energy_cost_index",
            Value::num(round2(eph * 0.105)),
        );

        // --- Geometry ---
        let floor_height = rng.gen_range(2.5..3.4);
        let volume = sr * floor_height;
        let dispersing = sv * volume;
        let wr = rng.gen_range(0.10..0.28);
        let n_floors = rng.gen_range(1..=9) as f64;
        set(&mut rec, wk::HEATED_VOLUME, Value::num(round1(volume)));
        set(
            &mut rec,
            "floor_area",
            Value::num(round1(sr * rng.gen_range(0.85..0.97))),
        );
        set(
            &mut rec,
            "glazed_surface",
            Value::num(round1(dispersing * wr)),
        );
        set(
            &mut rec,
            "opaque_surface",
            Value::num(round1(dispersing * (1.0 - wr))),
        );
        set(
            &mut rec,
            "dispersing_surface",
            Value::num(round1(dispersing)),
        );
        set(&mut rec, "n_floors", Value::num(n_floors));
        set(&mut rec, "floor_height", Value::num(round2(floor_height)));
        set(&mut rec, "window_area_ratio", Value::num(round3(wr)));
        set(
            &mut rec,
            "n_apartments",
            Value::num(rng.gen_range(1..=40) as f64),
        );
        set(
            &mut rec,
            "shading_factor",
            Value::num(round2(rng.gen_range(0.55..1.0))),
        );
        set(
            &mut rec,
            "thermal_bridge_factor",
            Value::num(round2(rng.gen_range(1.02..1.30))),
        );

        // --- Envelope detail ---
        set(
            &mut rec,
            "roof_u_value",
            Value::num(round3((uo * rng.gen_range(0.8..1.3)).clamp(0.12, 2.2))),
        );
        set(
            &mut rec,
            "floor_u_value",
            Value::num(round3((uo * rng.gen_range(0.7..1.2)).clamp(0.12, 2.0))),
        );
        set(
            &mut rec,
            "air_change_rate",
            Value::num(round2(rng.gen_range(0.3..0.9))),
        );

        // --- Plant & subsystem efficiencies ---
        let eta_e = rng.gen_range(0.90..0.98);
        let eta_c = rng.gen_range(0.92..0.99);
        let eta_d = rng.gen_range(0.92..0.99);
        let eta_g = (eta_h / (eta_e * eta_c * eta_d)).clamp(0.4, 1.1);
        set(&mut rec, wk::ETA_GENERATION, Value::num(round3(eta_g)));
        set(&mut rec, wk::ETA_DISTRIBUTION, Value::num(round3(eta_d)));
        set(&mut rec, wk::ETA_EMISSION, Value::num(round3(eta_e)));
        set(&mut rec, wk::ETA_CONTROL, Value::num(round3(eta_c)));
        set(
            &mut rec,
            "boiler_power",
            Value::num(round1((sr * rng.gen_range(0.06..0.12)).clamp(5.0, 400.0))),
        );
        set(
            &mut rec,
            "boiler_efficiency",
            Value::num(round3((eta_g * rng.gen_range(0.98..1.06)).clamp(0.4, 1.1))),
        );
        set(&mut rec, "dhw_demand", Value::num(round1(ep_dhw * sr)));
        let has_solar = rng.gen::<f64>() < arche.condensing_prob * 0.4;
        let has_pv = rng.gen::<f64>() < arche.condensing_prob * 0.35;
        set(
            &mut rec,
            "solar_thermal_area",
            Value::num(if has_solar {
                round1(rng.gen_range(2.0..12.0))
            } else {
                0.0
            }),
        );
        set(
            &mut rec,
            "pv_power",
            Value::num(if has_pv {
                round1(rng.gen_range(1.5..20.0))
            } else {
                0.0
            }),
        );

        // --- Context & operation ---
        let year = arche.sample_year(rng);
        let renovated = wall_retrofit || window_retrofit || boiler_retrofit;
        set(&mut rec, wk::CONSTRUCTION_YEAR, Value::num(year as f64));
        set(
            &mut rec,
            "renovation_year",
            if renovated {
                Value::num(rng.gen_range(year.max(1990)..=2018) as f64)
            } else {
                Value::Missing
            },
        );
        set(
            &mut rec,
            "degree_days",
            Value::num(round1(
                TURIN_DEGREE_DAYS * self.config.climate_factor * rng.gen_range(0.98..1.02),
            )),
        );
        set(
            &mut rec,
            "indoor_temp_setpoint",
            Value::num(round1(rng.gen_range(19.0..21.5))),
        );
        set(
            &mut rec,
            "heating_hours",
            Value::num(round1(rng.gen_range(8.0..14.0))),
        );

        // --- Building & plant taxonomy ---
        let category = if rng.gen::<f64>() < self.config.e11_fraction {
            "E.1.1"
        } else {
            *pick(rng, &["E.1.2", "E.1.3", "E.2", "E.3", "E.4", "E.8"])
        };
        set(&mut rec, wk::BUILDING_CATEGORY, Value::cat(category));
        set(&mut rec, wk::EPC_CLASS, Value::cat(epc_class(eph)));
        set(&mut rec, wk::HEATING_FUEL, Value::cat(fuel));
        set(
            &mut rec,
            "dhw_fuel",
            Value::cat(*pick(
                rng,
                &[
                    "natural gas",
                    "electric",
                    "solar-assisted",
                    "district heating",
                ],
            )),
        );
        let condensing = boiler_retrofit || rng.gen::<f64>() < arche.condensing_prob;
        set(
            &mut rec,
            "boiler_type",
            Value::cat(if fuel == "heat pump" {
                "heat pump"
            } else if condensing {
                "condensing"
            } else {
                "standard"
            }),
        );
        set(
            &mut rec,
            "emitter_type",
            Value::cat(*pick(rng, &["radiators", "floor panels", "fan coils"])),
        );
        set(
            &mut rec,
            "distribution_type",
            Value::cat(*pick(
                rng,
                &["vertical columns", "horizontal ring", "autonomous"],
            )),
        );
        let thermo_valves = rng.gen::<f64>() < (0.3 + arche.condensing_prob * 0.6);
        set(
            &mut rec,
            "control_type",
            Value::cat(if thermo_valves {
                "thermostatic valves"
            } else {
                *pick(rng, &["central only", "zone thermostat"])
            }),
        );
        let mech_vent = rng.gen::<f64>() < arche.insulation_prob * 0.4;
        set(
            &mut rec,
            "ventilation_type",
            Value::cat(if mech_vent { "mechanical" } else { "natural" }),
        );
        set(
            &mut rec,
            wk::CONSTRUCTION_PERIOD,
            Value::cat(arche.period_label),
        );
        set(
            &mut rec,
            "wall_type",
            Value::cat(match arche.name {
                "historic masonry" | "interwar" => "solid masonry",
                "postwar boom slab" => "concrete panel",
                "late 20th century" => "cavity wall",
                _ => "insulated frame",
            }),
        );
        set(
            &mut rec,
            "roof_type",
            Value::cat(*pick(
                rng,
                &["pitched tiles", "flat concrete", "pitched insulated"],
            )),
        );
        set(
            &mut rec,
            "floor_type",
            Value::cat(*pick(rng, &["on ground", "over cellar", "over open space"])),
        );
        set(
            &mut rec,
            "window_frame",
            Value::cat(*pick(rng, &["wood", "aluminum", "pvc"])),
        );
        let double_glazed = window_retrofit || rng.gen::<f64>() < arche.double_glazing_prob;
        set(
            &mut rec,
            "glazing_type",
            Value::cat(if double_glazed {
                if rng.gen::<f64>() < 0.2 {
                    "triple"
                } else {
                    "double"
                }
            } else {
                "single"
            }),
        );
        set(
            &mut rec,
            "shading_device",
            Value::cat(*pick(rng, &["shutters", "blinds", "none"])),
        );
        set(
            &mut rec,
            "occupancy_type",
            Value::cat(*pick(rng, &["owner occupied", "rented", "vacant"])),
        );
        set(
            &mut rec,
            "ownership",
            Value::cat(*pick(rng, &["private", "condominium", "public"])),
        );
        set(
            &mut rec,
            "certifier_qualification",
            Value::cat(*pick(rng, &["engineer", "architect", "surveyor"])),
        );
        set(
            &mut rec,
            "inspection_type",
            Value::cat(*pick(rng, &["full survey", "documental"])),
        );
        set(&mut rec, "climate_zone", Value::cat("E"));
        set(
            &mut rec,
            "exposure",
            Value::cat(*pick(rng, &["north", "south", "east", "west", "corner"])),
        );
        set(
            &mut rec,
            "adjacency",
            Value::cat(*pick(
                rng,
                &["row", "semi-detached", "detached", "apartment block"],
            )),
        );
        set(
            &mut rec,
            "basement_type",
            Value::cat(*pick(rng, &["none", "unheated cellar", "heated basement"])),
        );
        set(
            &mut rec,
            "attic_type",
            Value::cat(*pick(rng, &["none", "unheated attic", "heated attic"])),
        );
        set(
            &mut rec,
            "renewable_type",
            Value::cat(if has_pv {
                "photovoltaic"
            } else if has_solar {
                "solar thermal"
            } else {
                "none"
            }),
        );
        set(
            &mut rec,
            "cooling_system",
            Value::cat(*pick(rng, &["none", "split units", "central"])),
        );
        set(
            &mut rec,
            "heat_pump_type",
            Value::cat(if fuel == "heat pump" {
                *pick(rng, &["air-water", "air-air", "ground-water"])
            } else {
                "none"
            }),
        );
        set(
            &mut rec,
            "solar_orientation",
            Value::cat(*pick(rng, &["N", "NE", "E", "SE", "S", "SW", "W", "NW"])),
        );
        set(
            &mut rec,
            "facade_condition",
            Value::cat(*pick(rng, &["good", "fair", "poor"])),
        );
        set(
            &mut rec,
            "retrofit_level",
            Value::cat(if renovated {
                *pick(rng, &["partial", "deep"])
            } else {
                "none"
            }),
        );
        set(
            &mut rec,
            "energy_vector",
            Value::cat(if fuel == "heat pump" {
                "electricity"
            } else {
                fuel
            }),
        );
        set(
            &mut rec,
            "heating_emission_layout",
            Value::cat(*pick(rng, &["per room", "central riser", "perimeter"])),
        );

        // --- Boolean flags (correlated with the physical sample) ---
        let yes_no = |b: bool| Value::cat(if b { "yes" } else { "no" });
        let insulated = wall_retrofit;
        set(&mut rec, "has_condensing_boiler", yes_no(condensing));
        set(&mut rec, "has_solar_thermal", yes_no(has_solar));
        set(&mut rec, "has_pv", yes_no(has_pv));
        set(&mut rec, "has_heat_pump", yes_no(fuel == "heat pump"));
        set(
            &mut rec,
            "has_district_heating",
            yes_no(fuel == "district heating"),
        );
        set(&mut rec, "has_thermostatic_valves", yes_no(thermo_valves));
        set(&mut rec, "has_double_glazing", yes_no(double_glazed));
        set(
            &mut rec,
            "has_roof_insulation",
            yes_no(insulated && rng.gen::<f64>() < 0.8),
        );
        set(&mut rec, "has_wall_insulation", yes_no(insulated));
        set(
            &mut rec,
            "has_floor_insulation",
            yes_no(insulated && rng.gen::<f64>() < 0.5),
        );
        set(&mut rec, "has_mechanical_ventilation", yes_no(mech_vent));
        set(
            &mut rec,
            "has_heat_recovery",
            yes_no(mech_vent && rng.gen::<f64>() < 0.6),
        );
        set(&mut rec, "has_bms", yes_no(rng.gen::<f64>() < 0.08));
        set(&mut rec, "has_led_lighting", yes_no(rng.gen::<f64>() < 0.4));
        set(
            &mut rec,
            "has_elevator",
            yes_no(n_floors >= 4.0 && rng.gen::<f64>() < 0.8),
        );
        set(&mut rec, "has_garage", yes_no(rng.gen::<f64>() < 0.35));
        set(&mut rec, "has_balcony", yes_no(rng.gen::<f64>() < 0.7));
        set(&mut rec, "has_cellar", yes_no(rng.gen::<f64>() < 0.5));
        set(
            &mut rec,
            "has_smart_thermostat",
            yes_no(rng.gen::<f64>() < arche.condensing_prob * 0.3),
        );
        set(&mut rec, "has_ev_charging", yes_no(rng.gen::<f64>() < 0.04));
        set(&mut rec, "has_green_roof", yes_no(rng.gen::<f64>() < 0.02));
        set(
            &mut rec,
            "has_rainwater_reuse",
            yes_no(rng.gen::<f64>() < 0.03),
        );
        set(
            &mut rec,
            "is_listed_building",
            yes_no(arche.name == "historic masonry" && rng.gen::<f64>() < 0.3),
        );
        set(
            &mut rec,
            "is_social_housing",
            yes_no(rng.gen::<f64>() < 0.07),
        );
        set(&mut rec, "is_detached", yes_no(rng.gen::<f64>() < 0.12));
        set(&mut rec, "is_corner_unit", yes_no(rng.gen::<f64>() < 0.2));
        set(
            &mut rec,
            "is_top_floor",
            yes_no(rng.gen::<f64>() < 1.0 / n_floors.max(1.0)),
        );
        set(
            &mut rec,
            "is_ground_floor",
            yes_no(rng.gen::<f64>() < 1.0 / n_floors.max(1.0)),
        );

        // --- Recommended interventions (driven by the actual weaknesses,
        //     so rules like "Uw High → reco_windows" hold) ---
        set(&mut rec, "reco_envelope", yes_no(uo > 0.65));
        set(&mut rec, "reco_windows", yes_no(uw > 3.35));
        set(&mut rec, "reco_boiler", yes_no(eta_g < 0.75));
        set(&mut rec, "reco_renewables", yes_no(!has_pv && !has_solar));
        set(&mut rec, "reco_controls", yes_no(!thermo_valves));
        set(
            &mut rec,
            "subsidy_eligibility",
            Value::cat(if eph > 150.0 {
                "ecobonus"
            } else if eph > 70.0 {
                "standard"
            } else {
                "none"
            }),
        );
        set(
            &mut rec,
            "gas_meter_type",
            Value::cat(*pick(rng, &["G4", "G6", "G10", "none"])),
        );
        set(
            &mut rec,
            "electric_meter_type",
            Value::cat(*pick(rng, &["3kW", "4.5kW", "6kW"])),
        );
        set(
            &mut rec,
            "water_heating_location",
            Value::cat(*pick(rng, &["in unit", "central plant", "external"])),
        );
        set(
            &mut rec,
            "chimney_type",
            Value::cat(*pick(
                rng,
                &["individual flue", "collective flue", "wall vent"],
            )),
        );
        set(
            &mut rec,
            "radiator_material",
            Value::cat(*pick(rng, &["cast iron", "aluminum", "steel"])),
        );
        set(
            &mut rec,
            "pipe_insulation_level",
            Value::cat(*pick(rng, &["none", "partial", "full"])),
        );
        set(
            &mut rec,
            "window_shutter_type",
            Value::cat(*pick(rng, &["roller", "hinged", "none"])),
        );
        set(
            &mut rec,
            "entrance_orientation",
            Value::cat(*pick(rng, &["street", "courtyard"])),
        );
        set(
            &mut rec,
            "stairwell_heated",
            Value::cat(*pick(rng, &["yes", "no"])),
        );
        set(
            &mut rec,
            "party_wall_exposure",
            Value::cat(*pick(rng, &["both sides", "one side", "none"])),
        );
        set(
            &mut rec,
            "certificate_purpose",
            Value::cat(*pick(
                rng,
                &["sale", "rent", "new construction", "renovation"],
            )),
        );
        set(
            &mut rec,
            "previous_class",
            if rng.gen::<f64>() < 0.3 {
                Value::cat(*pick(rng, &["C", "D", "E", "F", "G"]))
            } else {
                Value::Missing
            },
        );
        set(
            &mut rec,
            "calculation_software",
            Value::cat(*pick(rng, &["SW-A 3.1", "SW-B 2.4", "SW-C 1.9"])),
        );
        set(
            &mut rec,
            "data_quality_flag",
            Value::cat(*pick(rng, &["measured", "estimated", "default values"])),
        );

        rec
    }
}

/// Archetype sampling by normalized radial position (0 = centre, 1 = edge):
/// each archetype has a preferred radius; weights decay with distance to it.
fn sample_archetype(radial: f64, rng: &mut StdRng) -> ArchetypeId {
    let k = ARCHETYPES.len();
    let mut weights = [0.0f64; 6];
    for (i, w) in weights.iter_mut().enumerate() {
        let preferred = i as f64 / (k - 1) as f64;
        let d = (radial - preferred).abs();
        *w = (-d * d / 0.08).exp() + 0.03; // Gaussian kernel + floor
    }
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return i;
        }
    }
    k - 1
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use epc_model::wellknown as wk;

    fn small() -> SyntheticCollection {
        EpcGenerator::new(SynthConfig {
            n_records: 500,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 4,
                streets_per_neighbourhood: 3,
                houses_per_street: 10,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate()
    }

    #[test]
    fn dataset_shape_matches_paper() {
        let c = small();
        assert_eq!(c.dataset.n_rows(), 500);
        assert_eq!(c.dataset.n_cols(), 132);
        let (num, cat) = c.dataset.schema().kind_counts();
        assert_eq!((num, cat), (43, 89));
    }

    #[test]
    fn clean_collection_has_no_missing_core_fields() {
        let c = small();
        let s = c.dataset.schema();
        for name in [
            wk::ADDRESS,
            wk::ZIP_CODE,
            wk::LATITUDE,
            wk::LONGITUDE,
            wk::ASPECT_RATIO,
            wk::U_OPAQUE,
            wk::U_WINDOWS,
            wk::HEAT_SURFACE,
            wk::ETA_H,
            wk::EPH,
        ] {
            let id = s.require(name).unwrap();
            assert_eq!(
                c.dataset.column(id).unwrap().missing_count(),
                0,
                "{name} must be complete before noise"
            );
        }
    }

    #[test]
    fn attributes_respect_footnote4_ranges() {
        let c = small();
        let s = c.dataset.schema();
        let uw = c.dataset.numeric_values(s.require(wk::U_WINDOWS).unwrap());
        let uo = c.dataset.numeric_values(s.require(wk::U_OPAQUE).unwrap());
        let eta = c.dataset.numeric_values(s.require(wk::ETA_H).unwrap());
        assert!(uw.iter().all(|&x| (1.1..=5.5).contains(&x)));
        assert!(uo.iter().all(|&x| (0.15..=1.1).contains(&x)));
        assert!(eta.iter().all(|&x| (0.2..=1.1).contains(&x)));
    }

    #[test]
    fn truth_is_aligned_with_dataset() {
        let c = small();
        let s = c.dataset.schema();
        assert_eq!(c.truth.streets.len(), 500);
        for row in [0usize, 42, 499] {
            assert_eq!(
                c.dataset.cat(row, s.require(wk::ADDRESS).unwrap()).unwrap(),
                c.truth.streets[row]
            );
            assert_eq!(
                c.dataset
                    .cat(row, s.require(wk::ZIP_CODE).unwrap())
                    .unwrap(),
                c.truth.zips[row]
            );
            let lat = c
                .dataset
                .num(row, s.require(wk::LATITUDE).unwrap())
                .unwrap();
            assert!((lat - c.truth.points[row].lat).abs() < 1e-12);
        }
    }

    #[test]
    fn e11_fraction_is_respected() {
        let c = small();
        let s = c.dataset.schema();
        let id = s.require(wk::BUILDING_CATEGORY).unwrap();
        let e11 = (0..c.dataset.n_rows())
            .filter(|&r| c.dataset.cat(r, id) == Some("E.1.1"))
            .count();
        let frac = e11 as f64 / 500.0;
        assert!((0.7..0.9).contains(&frac), "E.1.1 fraction {frac}");
    }

    #[test]
    fn centre_is_older_than_periphery() {
        let c = small();
        let center = c.city.config.center;
        let max_d = c
            .truth
            .points
            .iter()
            .map(|p| p.haversine_m(&center))
            .fold(0.0f64, f64::max);
        let mut inner_age = Vec::new();
        let mut outer_age = Vec::new();
        let s = c.dataset.schema();
        let year_id = s.require(wk::CONSTRUCTION_YEAR).unwrap();
        for row in 0..c.dataset.n_rows() {
            let d = c.truth.points[row].haversine_m(&center);
            let y = c.dataset.num(row, year_id).unwrap();
            if d < max_d / 3.0 {
                inner_age.push(y);
            } else if d > 2.0 * max_d / 3.0 {
                outer_age.push(y);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&inner_age) + 10.0 < mean(&outer_age),
            "inner {} vs outer {} ({} / {} samples)",
            mean(&inner_age),
            mean(&outer_age),
            inner_age.len(),
            outer_age.len()
        );
    }

    #[test]
    fn eph_correlates_with_thermal_quality() {
        // Records with Uw in the paper's "Very high" bin must have higher
        // average EPH than those in "Low" — the signal behind the rules.
        let c = small();
        let s = c.dataset.schema();
        let uw_id = s.require(wk::U_WINDOWS).unwrap();
        let eph_id = s.require(wk::EPH).unwrap();
        let mut low = Vec::new();
        let mut very_high = Vec::new();
        for row in 0..c.dataset.n_rows() {
            let uw = c.dataset.num(row, uw_id).unwrap();
            let eph = c.dataset.num(row, eph_id).unwrap();
            if uw <= 2.05 {
                low.push(eph);
            } else if uw > 3.35 {
                very_high.push(eph);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!low.is_empty() && !very_high.is_empty());
        assert!(mean(&very_high) > 1.5 * mean(&low));
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth.archetypes, b.truth.archetypes);
    }

    #[test]
    fn epc_class_is_consistent_with_eph() {
        let c = small();
        let s = c.dataset.schema();
        let class_id = s.require(wk::EPC_CLASS).unwrap();
        let eph_id = s.require(wk::EPH).unwrap();
        for row in 0..c.dataset.n_rows() {
            let class = c.dataset.cat(row, class_id).unwrap();
            let eph = c.dataset.num(row, eph_id).unwrap();
            assert_eq!(class, crate::archetype::epc_class(eph));
        }
    }
}
