//! # epc-synth
//!
//! Synthetic-data substitute for the CSI Piemonte EPC collection the paper
//! analyses (see the substitution table in DESIGN.md).
//!
//! The real collection — ~25 000 certificates, 132 attributes, Turin,
//! 2016-2018 — is open data but not redistributable here, so this crate
//! generates a faithful stand-in:
//!
//! * [`names`] — Italian-flavoured name banks for streets, districts and
//!   neighbourhoods;
//! * [`city`] — a procedural city: district/neighbourhood polygons
//!   ([`epc_geo::region::RegionHierarchy`]) plus a complete referenced
//!   street map ([`epc_geo::streetmap::StreetMap`]) with ZIP codes and
//!   geolocated house numbers;
//! * [`archetype`] — building archetypes (construction-period profiles)
//!   whose attribute distributions create the correlated, clusterable
//!   structure the case study exploits (historic centre vs modern
//!   periphery);
//! * [`epcgen`] — the EPC generator emitting the full 132-attribute
//!   [`epc_model::Dataset`] plus per-record ground truth;
//! * [`noise`] — the corruption model: address typos, missing ZIP codes,
//!   wrong or missing coordinates, attribute outliers, so the cleaning and
//!   outlier-removal stages have real work to do *and* measurable accuracy;
//! * [`fleet`] — one seed expanded into N per-city configurations
//!   (size/climate/archetype mix per city) for multi-city coordinator
//!   runs.
//!
//! Everything is seeded and fully deterministic.

pub mod archetype;
pub mod city;
pub mod epcgen;
pub mod fleet;
pub mod names;
pub mod noise;

pub use archetype::{Archetype, ArchetypeId, ARCHETYPES};
pub use city::{CityConfig, CityPlan};
pub use epcgen::{EpcGenerator, GroundTruth, SynthConfig, SyntheticCollection};
pub use fleet::{CitySpec, FleetConfig};
pub use noise::NoiseConfig;
