//! Name banks for the procedural city: street base names (Italian
//! historical figures and places, as in Turin's odonymy), odonym prefixes,
//! and neighbourhood names.

/// Street-name prefixes (odonym types) with rough relative frequencies.
pub const STREET_PREFIXES: &[(&str, u32)] = &[
    ("Via", 70),
    ("Corso", 15),
    ("Piazza", 6),
    ("Viale", 4),
    ("Largo", 3),
    ("Strada", 2),
];

/// Base names for streets (people and places of the Italian odonymy).
pub const STREET_BASE_NAMES: &[&str] = &[
    "Roma",
    "Garibaldi",
    "Cavour",
    "Mazzini",
    "Vittorio Emanuele II",
    "Dante",
    "Petrarca",
    "Leopardi",
    "Manzoni",
    "Verdi",
    "Puccini",
    "Rossini",
    "Bellini",
    "Galileo Galilei",
    "Leonardo da Vinci",
    "Michelangelo",
    "Raffaello",
    "Cristoforo Colombo",
    "Marco Polo",
    "Amerigo Vespucci",
    "Montebello",
    "Solferino",
    "San Martino",
    "Magenta",
    "Curtatone",
    "Goito",
    "Palestro",
    "Volturno",
    "Milano",
    "Genova",
    "Venezia",
    "Firenze",
    "Bologna",
    "Napoli",
    "Palermo",
    "Cagliari",
    "Trieste",
    "Trento",
    "Gorizia",
    "Zara",
    "Fiume",
    "Po",
    "Dora Riparia",
    "Stura",
    "Sangone",
    "Monviso",
    "Gran Paradiso",
    "Monte Rosa",
    "Cervino",
    "Monginevro",
    "Moncenisio",
    "Sestriere",
    "Francia",
    "Svizzera",
    "Inghilterra",
    "Spagna",
    "Grecia",
    "Belgio",
    "Nizza",
    "Savoia",
    "Aosta",
    "Ivrea",
    "Chieri",
    "Moncalieri",
    "Rivoli",
    "Pinerolo",
    "Saluzzo",
    "Cuneo",
    "Asti",
    "Alessandria",
    "Vercelli",
    "Novara",
    "Biella",
    "Carmagnola",
    "Orbassano",
    "Settimo",
    "Chivasso",
    "Lagrange",
    "Alfieri",
    "Gioberti",
    "Balbo",
    "D'Azeglio",
    "Cibrario",
    "Peano",
    "Avogadro",
    "Galvani",
    "Volta",
    "Marconi",
    "Fermi",
    "Meucci",
    "Pacinotti",
    "Ferraris",
    "Sommeiller",
    "Cecchi",
    "Regaldi",
    "Bava",
];

/// Turin-flavoured neighbourhood names.
pub const NEIGHBOURHOOD_NAMES: &[&str] = &[
    "Centro Storico",
    "Quadrilatero",
    "San Salvario",
    "Crocetta",
    "San Donato",
    "Aurora",
    "Vanchiglia",
    "Vanchiglietta",
    "Cenisia",
    "San Paolo",
    "Pozzo Strada",
    "Parella",
    "Campidoglio",
    "Borgo Vittoria",
    "Madonna di Campagna",
    "Barriera di Milano",
    "Regio Parco",
    "Barca",
    "Bertolla",
    "Falchera",
    "Rebaudengo",
    "Villaretto",
    "Borgo Po",
    "Cavoretto",
    "Nizza Millefonti",
    "Lingotto",
    "Filadelfia",
    "Santa Rita",
    "Mirafiori Nord",
    "Mirafiori Sud",
    "Borgata Vittoria",
    "Le Vallette",
    "Lucento",
    "Madonna del Pilone",
    "Sassi",
    "Superga",
    "Borgata Lesna",
    "Gerbido",
    "Borgo San Pietro",
    "Valdocco",
];

/// Deterministically picks the i-th street name.
///
/// Each base name gets a weighted prefix ("Via" dominates, like real
/// odonymy); once the base bank is exhausted, later cycles reuse the same
/// `(prefix, base)` pair with a roman suffix (`"Via Roma II"`), keeping
/// names unique for tens of thousands of indices.
pub fn street_name(i: usize) -> String {
    let total_weight: u32 = STREET_PREFIXES.iter().map(|(_, w)| w).sum();
    let n_bases = STREET_BASE_NAMES.len();
    let base_idx = i % n_bases;
    let base = STREET_BASE_NAMES[base_idx];
    let cycle = i / n_bases;
    // Weighted prefix per base, stable across cycles.
    let slot = (base_idx as u32).wrapping_mul(97) % total_weight;
    let mut acc = 0;
    let mut prefix = STREET_PREFIXES[0].0;
    for &(p, w) in STREET_PREFIXES {
        acc += w;
        if slot < acc {
            prefix = p;
            break;
        }
    }
    if cycle == 0 {
        format!("{prefix} {base}")
    } else {
        format!("{prefix} {base} {}", roman(cycle + 1))
    }
}

/// District name for index `i` (Turin numbers its "circoscrizioni").
pub fn district_name(i: usize) -> String {
    format!("Circoscrizione {}", i + 1)
}

/// Neighbourhood name for global index `i`.
pub fn neighbourhood_name(i: usize) -> String {
    let n = NEIGHBOURHOOD_NAMES.len();
    if i < n {
        NEIGHBOURHOOD_NAMES[i].to_owned()
    } else {
        format!("{} {}", NEIGHBOURHOOD_NAMES[i % n], i / n + 1)
    }
}

fn roman(mut n: usize) -> String {
    const TABLE: &[(usize, &str)] = &[(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")];
    let mut out = String::new();
    for &(v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn street_names_are_distinct_for_a_whole_city() {
        let names: HashSet<String> = (0..600).map(street_name).collect();
        assert_eq!(names.len(), 600, "600 streets must be distinct");
    }

    #[test]
    fn street_names_have_prefix_and_base() {
        let n = street_name(0);
        assert!(STREET_PREFIXES.iter().any(|(p, _)| n.starts_with(p)));
        assert!(n.len() > 4);
    }

    #[test]
    fn via_is_the_most_common_prefix() {
        let names: Vec<String> = (0..300).map(street_name).collect();
        let via = names.iter().filter(|n| n.starts_with("Via ")).count();
        let corso = names.iter().filter(|n| n.starts_with("Corso ")).count();
        assert!(via > corso, "via {via} vs corso {corso}");
        assert!(via > 100);
    }

    #[test]
    fn district_and_neighbourhood_names() {
        assert_eq!(district_name(0), "Circoscrizione 1");
        assert_eq!(district_name(7), "Circoscrizione 8");
        assert_eq!(neighbourhood_name(0), "Centro Storico");
        let far = neighbourhood_name(NEIGHBOURHOOD_NAMES.len() + 2);
        assert!(far.ends_with(" 2"), "{far}");
    }

    #[test]
    fn neighbourhood_names_distinct_over_two_cycles() {
        let n = NEIGHBOURHOOD_NAMES.len();
        let names: HashSet<String> = (0..2 * n).map(neighbourhood_name).collect();
        assert_eq!(names.len(), 2 * n);
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
        assert_eq!(roman(13), "XIII");
    }

    #[test]
    fn deterministic() {
        assert_eq!(street_name(42), street_name(42));
    }
}
