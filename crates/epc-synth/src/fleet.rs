//! Parameterized multi-city fleets: one seed expands into N per-city
//! [`SynthConfig`]s with varied size, climate and archetype mix — the
//! synthetic stand-in for "every region's registry at once" that the
//! fleet coordinator shards over.
//!
//! Everything is a pure function of `(fleet seed, city index)`: per-city
//! seeds are derived with the same SplitMix64 discipline the fault
//! injector uses, so city 3 of a 12-city fleet generates the same
//! collection as city 3 of a 4-city fleet with the same seed — shard
//! isolation is testable because the inputs are shard-invariant.

use crate::city::CityConfig;
use crate::epcgen::SynthConfig;
use epc_geo::point::GeoPoint;

/// Name bank: real northern/central Italian cities with their centres
/// and a rough climate multiplier relative to Turin (coastal cities run
/// milder, the Po plain slightly harsher).
const CITY_BANK: &[(&str, f64, f64, f64)] = &[
    ("Torino", 45.0703, 7.6869, 1.00),
    ("Milano", 45.4642, 9.1900, 1.02),
    ("Genova", 44.4056, 8.9463, 0.85),
    ("Bologna", 44.4949, 11.3426, 0.98),
    ("Firenze", 43.7696, 11.2558, 0.90),
    ("Venezia", 45.4408, 12.3155, 0.97),
    ("Verona", 45.4384, 10.9916, 0.99),
    ("Trieste", 45.6495, 13.7768, 0.93),
    ("Parma", 44.8015, 10.3279, 1.00),
    ("Brescia", 45.5416, 10.2118, 1.03),
    ("Padova", 45.4064, 11.8768, 0.98),
    ("Modena", 44.6471, 10.9252, 0.99),
];

/// Fleet-level generator configuration: one seed, N cities.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of cities to emit (the bank cycles past 12, with a numeric
    /// suffix keeping names unique).
    pub n_cities: usize,
    /// Baseline records per city; each city's size class scales this by
    /// 0.7 / 1.0 / 1.3.
    pub records_per_city: usize,
    /// The single fleet seed every per-city seed derives from.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_cities: 4,
            records_per_city: 2_000,
            seed: 2024,
        }
    }
}

/// One city's slot in the fleet plan: a stable id plus the fully derived
/// generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CitySpec {
    /// Stable shard id, `"<index:02>-<lowercase name>"` — doubles as the
    /// city's directory name under the fleet run directory.
    pub id: String,
    /// Derived generator configuration for this city.
    pub synth: SynthConfig,
}

impl FleetConfig {
    /// Expands the fleet into per-city specs (pure function of the
    /// config).
    pub fn cities(&self) -> Vec<CitySpec> {
        (0..self.n_cities).map(|i| self.city(i)).collect()
    }

    /// Derives the spec of city `index`.
    pub fn city(&self, index: usize) -> CitySpec {
        let (name, lat, lon, climate) = CITY_BANK[index % CITY_BANK.len()];
        let name = if index < CITY_BANK.len() {
            name.to_owned()
        } else {
            format!("{name} {}", index / CITY_BANK.len() + 1)
        };
        let id = format!("{index:02}-{}", name.to_lowercase().replace(' ', "-"));
        let h = splitmix64(self.seed ^ splitmix64(index as u64 + 1));
        // Size class: small / medium / large — varies both the record
        // count and the physical extent of the procedural city.
        let (records_scale, n_districts, neighbourhoods) = match h % 3 {
            0 => (0.7, 6, 3),
            1 => (1.0, 8, 4),
            _ => (1.3, 10, 4),
        };
        // Archetype skew in [-0.25, 0.25]: some cities lean historic,
        // some lean modern periphery.
        let skew = ((splitmix64(h) % 501) as f64 / 1000.0) - 0.25;
        let n_records = ((self.records_per_city as f64 * records_scale) as usize).max(50);
        CitySpec {
            id,
            synth: SynthConfig {
                n_records,
                city: CityConfig {
                    name,
                    center: GeoPoint::new(lat, lon),
                    n_districts,
                    neighbourhoods_per_district: neighbourhoods,
                    seed: splitmix64(h ^ 0xc17f),
                    ..CityConfig::default()
                },
                climate_factor: climate,
                archetype_skew: skew,
                seed: splitmix64(h ^ 0x5eed),
                ..SynthConfig::default()
            },
        }
    }
}

/// SplitMix64 avalanche mixer (same constants as the fault injector's).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_expansion_is_deterministic() {
        let a = FleetConfig::default().cities();
        let b = FleetConfig::default().cities();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn city_spec_is_fleet_size_invariant() {
        let small = FleetConfig {
            n_cities: 4,
            ..FleetConfig::default()
        };
        let large = FleetConfig {
            n_cities: 12,
            ..FleetConfig::default()
        };
        assert_eq!(small.city(3), large.city(3));
    }

    #[test]
    fn ids_are_unique_and_stable_past_the_bank() {
        let fleet = FleetConfig {
            n_cities: 30,
            ..FleetConfig::default()
        };
        let specs = fleet.cities();
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 30, "city ids must be unique");
        assert_eq!(specs[0].id, "00-torino");
        assert_eq!(specs[12].id, "12-torino-2");
    }

    #[test]
    fn cities_vary_in_size_climate_and_mix() {
        let specs = FleetConfig {
            n_cities: 12,
            ..FleetConfig::default()
        }
        .cities();
        let sizes: std::collections::BTreeSet<usize> =
            specs.iter().map(|s| s.synth.n_records).collect();
        assert!(sizes.len() > 1, "size classes should differ");
        let climates: std::collections::BTreeSet<u64> = specs
            .iter()
            .map(|s| (s.synth.climate_factor * 100.0) as u64)
            .collect();
        assert!(climates.len() > 1, "climates should differ");
        assert!(specs.iter().any(|s| s.synth.archetype_skew < 0.0));
        assert!(specs.iter().any(|s| s.synth.archetype_skew > 0.0));
    }

    #[test]
    fn different_seeds_give_different_fleets() {
        let a = FleetConfig {
            seed: 1,
            ..FleetConfig::default()
        }
        .cities();
        let b = FleetConfig {
            seed: 2,
            ..FleetConfig::default()
        }
        .cities();
        assert_ne!(a, b);
    }
}
