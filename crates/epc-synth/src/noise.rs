//! The corruption model: makes the clean synthetic collection as messy as
//! the real one, with ground truth recorded so the cleaning and
//! outlier-detection stages can be scored.
//!
//! Corruption kinds (rates configurable):
//! * street-name typos (character swaps/deletions/replacements) and
//!   odonym abbreviations (`Corso` → `C.so`);
//! * missing ZIP codes and implausible ZIP codes;
//! * missing or displaced coordinates;
//! * univariate attribute outliers (scaled U-values / EPH);
//! * multivariate outliers (jointly inconsistent attribute combinations).

use crate::epcgen::SyntheticCollection;
use epc_model::{wellknown as wk, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise-injection rates (fractions of records, each drawn independently).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Fraction of records whose street gets typos.
    pub typo_rate: f64,
    /// Fraction of records whose street is abbreviated (`Corso` → `C.so`).
    pub abbreviation_rate: f64,
    /// Fraction of records losing their ZIP code.
    pub zip_missing_rate: f64,
    /// Fraction of records with a corrupted (wrong) ZIP code.
    pub zip_wrong_rate: f64,
    /// Fraction of records losing their coordinates.
    pub coord_missing_rate: f64,
    /// Fraction of records with displaced coordinates (≥ ~1 km).
    pub coord_wrong_rate: f64,
    /// Fraction of records turned into univariate outliers.
    pub univariate_outlier_rate: f64,
    /// Fraction of records turned into multivariate outliers.
    pub multivariate_outlier_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            typo_rate: 0.12,
            abbreviation_rate: 0.10,
            zip_missing_rate: 0.06,
            zip_wrong_rate: 0.02,
            coord_missing_rate: 0.05,
            coord_wrong_rate: 0.03,
            univariate_outlier_rate: 0.01,
            multivariate_outlier_rate: 0.005,
            seed: 77,
        }
    }
}

impl NoiseConfig {
    /// A configuration that corrupts nothing (for ablations).
    pub fn none() -> Self {
        NoiseConfig {
            typo_rate: 0.0,
            abbreviation_rate: 0.0,
            zip_missing_rate: 0.0,
            zip_wrong_rate: 0.0,
            coord_missing_rate: 0.0,
            coord_wrong_rate: 0.0,
            univariate_outlier_rate: 0.0,
            multivariate_outlier_rate: 0.0,
            seed: 0,
        }
    }
}

/// Applies the corruption model in place, recording affected rows in the
/// collection's ground truth (`corrupted_addresses`, `injected_outliers`).
pub fn apply_noise(collection: &mut SyntheticCollection, config: &NoiseConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = collection.dataset.schema_arc();
    let addr_id = schema.require(wk::ADDRESS).unwrap();
    let zip_id = schema.require(wk::ZIP_CODE).unwrap();
    let lat_id = schema.require(wk::LATITUDE).unwrap();
    let lon_id = schema.require(wk::LONGITUDE).unwrap();
    let uw_id = schema.require(wk::U_WINDOWS).unwrap();
    let uo_id = schema.require(wk::U_OPAQUE).unwrap();
    let eph_id = schema.require(wk::EPH).unwrap();
    let eta_id = schema.require(wk::ETA_H).unwrap();
    let sr_id = schema.require(wk::HEAT_SURFACE).unwrap();

    let n = collection.dataset.n_rows();
    for row in 0..n {
        let mut address_touched = false;

        // --- Street corruption ---
        if rng.gen::<f64>() < config.abbreviation_rate {
            let street = collection.dataset.cat(row, addr_id).unwrap().to_owned();
            let abbreviated = abbreviate(&street);
            if abbreviated != street {
                collection
                    .dataset
                    .set_value(row, addr_id, Value::cat(abbreviated))
                    .unwrap();
                // Abbreviations normalize back losslessly, so they are not
                // counted as corruption needing fuzzy repair.
            }
        }
        if rng.gen::<f64>() < config.typo_rate {
            let street = collection.dataset.cat(row, addr_id).unwrap().to_owned();
            let n_typos = 1 + usize::from(rng.gen::<f64>() < 0.3);
            let noisy = add_typos(&street, n_typos, &mut rng);
            if noisy != street {
                collection
                    .dataset
                    .set_value(row, addr_id, Value::cat(noisy))
                    .unwrap();
                address_touched = true;
            }
        }

        // --- ZIP corruption ---
        if rng.gen::<f64>() < config.zip_missing_rate {
            collection
                .dataset
                .set_value(row, zip_id, Value::Missing)
                .unwrap();
            address_touched = true;
        } else if rng.gen::<f64>() < config.zip_wrong_rate {
            let wrong = format!("{}", 10000 + rng.gen_range(0..90000));
            collection
                .dataset
                .set_value(row, zip_id, Value::cat(wrong))
                .unwrap();
            address_touched = true;
        }

        // --- Coordinate corruption ---
        if rng.gen::<f64>() < config.coord_missing_rate {
            collection
                .dataset
                .set_value(row, lat_id, Value::Missing)
                .unwrap();
            collection
                .dataset
                .set_value(row, lon_id, Value::Missing)
                .unwrap();
            address_touched = true;
        } else if rng.gen::<f64>() < config.coord_wrong_rate {
            let lat = collection.dataset.num(row, lat_id).unwrap();
            let lon = collection.dataset.num(row, lon_id).unwrap();
            // Displace by 1-20 km in a random direction.
            let d_lat = (rng.gen::<f64>() - 0.5) * 0.3;
            let d_lon = (rng.gen::<f64>() - 0.5) * 0.3;
            collection
                .dataset
                .set_value(
                    row,
                    lat_id,
                    Value::num(lat + d_lat.signum() * d_lat.abs().max(0.01)),
                )
                .unwrap();
            collection
                .dataset
                .set_value(
                    row,
                    lon_id,
                    Value::num(lon + d_lon.signum() * d_lon.abs().max(0.01)),
                )
                .unwrap();
            address_touched = true;
        }
        if address_touched {
            collection.truth.corrupted_addresses.push(row);
        }

        // --- Univariate outliers: blow up one thermo-physical attribute ---
        if rng.gen::<f64>() < config.univariate_outlier_rate {
            let which = rng.gen_range(0..3);
            // Scale up and force the value beyond the attribute's physical
            // range, so injected outliers are unambiguous ground truth.
            let (id, factor_range, floor): (_, (f64, f64), f64) = match which {
                0 => (uw_id, (3.0, 8.0), 7.0),
                1 => (uo_id, (4.0, 10.0), 1.6),
                _ => (eph_id, (4.0, 10.0), 600.0),
            };
            let x = collection.dataset.num(row, id).unwrap();
            let factor = rng.gen_range(factor_range.0..factor_range.1);
            collection
                .dataset
                .set_value(row, id, Value::num((x * factor).max(floor)))
                .unwrap();
            collection.truth.injected_outliers.push(row);
        }
        // --- Multivariate outliers: jointly impossible combination ---
        else if rng.gen::<f64>() < config.multivariate_outlier_rate {
            // A "perfect envelope with terrible consumption" record: each
            // attribute is within range, but the combination is isolated in
            // feature space.
            collection
                .dataset
                .set_value(row, uw_id, Value::num(1.15))
                .unwrap();
            collection
                .dataset
                .set_value(row, uo_id, Value::num(0.16))
                .unwrap();
            collection
                .dataset
                .set_value(row, eta_id, Value::num(1.05))
                .unwrap();
            collection
                .dataset
                .set_value(row, eph_id, Value::num(480.0))
                .unwrap();
            collection
                .dataset
                .set_value(row, sr_id, Value::num(1_900.0))
                .unwrap();
            collection.truth.injected_outliers.push(row);
        }
    }
}

/// Italian odonym abbreviation (the lossless kind of mess).
fn abbreviate(street: &str) -> String {
    for (full, abbr) in [
        ("Corso ", "C.so "),
        ("Via ", "V. "),
        ("Piazza ", "P.za "),
        ("Viale ", "V.le "),
        ("Largo ", "L.go "),
    ] {
        if let Some(rest) = street.strip_prefix(full) {
            return format!("{abbr}{rest}");
        }
    }
    street.to_owned()
}

/// Injects `n` random character-level typos (swap / delete / replace /
/// duplicate), never touching the first character.
fn add_typos(street: &str, n: usize, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = street.chars().collect();
    for _ in 0..n {
        if chars.len() < 3 {
            break;
        }
        let pos = rng.gen_range(1..chars.len());
        match rng.gen_range(0..4) {
            0 => {
                // swap with neighbour
                if pos + 1 < chars.len() {
                    chars.swap(pos, pos + 1);
                }
            }
            1 => {
                chars.remove(pos);
            }
            2 => {
                let c = (b'a' + rng.gen_range(0..26)) as char;
                chars[pos] = c;
            }
            _ => {
                let c = chars[pos];
                chars.insert(pos, c);
            }
        }
    }
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityConfig;
    use crate::epcgen::{EpcGenerator, SynthConfig};
    use epc_geo::levenshtein::similarity;

    fn collection() -> SyntheticCollection {
        EpcGenerator::new(SynthConfig {
            n_records: 800,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate()
    }

    #[test]
    fn noise_rates_are_roughly_respected() {
        let mut c = collection();
        apply_noise(&mut c, &NoiseConfig::default());
        let n = c.dataset.n_rows() as f64;
        let corrupted = c.truth.corrupted_addresses.len() as f64 / n;
        // typo 12% + zip 8% + coord 8% minus overlaps: expect 15-35%.
        assert!(
            (0.10..0.45).contains(&corrupted),
            "corrupted fraction {corrupted}"
        );
        let outliers = c.truth.injected_outliers.len() as f64 / n;
        assert!(
            (0.005..0.03).contains(&outliers),
            "outlier fraction {outliers}"
        );
    }

    #[test]
    fn none_config_is_a_noop() {
        let mut c = collection();
        let before = c.dataset.clone();
        apply_noise(&mut c, &NoiseConfig::none());
        assert_eq!(c.dataset, before);
        assert!(c.truth.corrupted_addresses.is_empty());
        assert!(c.truth.injected_outliers.is_empty());
    }

    #[test]
    fn typos_stay_close_to_the_original() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let noisy = add_typos("Corso Vittorio Emanuele II", 1, &mut rng);
            assert!(
                similarity("Corso Vittorio Emanuele II", &noisy) >= 0.85,
                "{noisy}"
            );
        }
    }

    #[test]
    fn two_typos_are_messier_but_recoverable() {
        let mut rng = StdRng::seed_from_u64(9);
        let noisy = add_typos("Via Garibaldi", 2, &mut rng);
        assert_ne!(noisy, "Via Garibaldi");
        assert!(similarity("Via Garibaldi", &noisy) >= 0.6, "{noisy}");
    }

    #[test]
    fn abbreviations_expand_back() {
        assert_eq!(abbreviate("Corso Francia"), "C.so Francia");
        assert_eq!(abbreviate("Via Roma"), "V. Roma");
        assert_eq!(abbreviate("Strada Comunale"), "Strada Comunale");
        // Round trip through the normalizer.
        assert_eq!(
            epc_geo::address::normalize_street(&abbreviate("Corso Francia")),
            epc_geo::address::normalize_street("Corso Francia")
        );
    }

    #[test]
    fn injected_univariate_outliers_are_extreme() {
        let mut c = collection();
        apply_noise(
            &mut c,
            &NoiseConfig {
                univariate_outlier_rate: 0.05,
                multivariate_outlier_rate: 0.0,
                ..NoiseConfig::none()
            },
        );
        assert!(!c.truth.injected_outliers.is_empty());
        let s = c.dataset.schema();
        let uw_id = s.require(wk::U_WINDOWS).unwrap();
        let uo_id = s.require(wk::U_OPAQUE).unwrap();
        let eph_id = s.require(wk::EPH).unwrap();
        // Every injected row has at least one attribute far outside the
        // paper's bins.
        for &row in &c.truth.injected_outliers {
            let uw = c.dataset.num(row, uw_id).unwrap();
            let uo = c.dataset.num(row, uo_id).unwrap();
            let eph = c.dataset.num(row, eph_id).unwrap();
            assert!(
                uw >= 7.0 || uo >= 1.6 || eph >= 600.0,
                "row {row}: uw {uw}, uo {uo}, eph {eph}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = collection();
        let mut b = collection();
        apply_noise(&mut a, &NoiseConfig::default());
        apply_noise(&mut b, &NoiseConfig::default());
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.truth.injected_outliers, b.truth.injected_outliers);
    }

    #[test]
    fn missing_coordinates_show_up() {
        let mut c = collection();
        apply_noise(
            &mut c,
            &NoiseConfig {
                coord_missing_rate: 0.2,
                ..NoiseConfig::none()
            },
        );
        let s = c.dataset.schema();
        let lat_id = s.require(wk::LATITUDE).unwrap();
        let missing = c.dataset.column(lat_id).unwrap().missing_count();
        let frac = missing as f64 / c.dataset.n_rows() as f64;
        assert!((0.12..0.28).contains(&frac), "missing lat fraction {frac}");
    }
}
