//! Durable pipeline execution: journaled checkpoint/resume.
//!
//! A durable run owns a *run directory*. After each stage completes, its
//! product is serialized ([`crate::checkpoint`]) and committed with the
//! atomic write-fsync-rename protocol of [`epc_journal`]; the stage's
//! journal line (appended to `run.manifest.jsonl` *after* the checkpoints
//! are durable) is the commit point. An interrupted run — crash, kill,
//! power loss, torn write — resumes with [`DurableOptions::resume`]: every
//! journal entry is validated (sequence position, stage name, config
//! fingerprint, input hash, and a byte-level hash check of every
//! checkpoint file) and the pipeline replays from the first entry that
//! fails validation. Because the pipeline is bitwise-deterministic and the
//! journal carries no timestamps, a resumed run's directory — artifacts,
//! checkpoints, and the journal itself — is byte-identical to an
//! uninterrupted run's.
//!
//! The runner also hosts the stage deadline watchdog
//! ([`crate::pipeline::StageDeadline`]) and honours injected crash points
//! ([`epc_faults::CrashSpec`]) for durability testing.

use crate::analytics::AnalyticsOutput;
use crate::checkpoint;
use crate::config::IndiceConfig;
use crate::error::IndiceError;
use crate::pipeline::{
    execute_stage_supervised, finish_outcome, supervised_stages, PipelineContext, RunOutcome,
    StageDeadline, StageExec,
};
use crate::preprocess::PreprocessOutput;
use epc_faults::{CrashSpec, FaultInjector};
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_journal::{hash_hex, write_atomic, ArtifactRecord, Journal, StageEntry};
use epc_model::{csv::to_csv, Dataset, Quarantine};
use epc_query::stakeholder::Stakeholder;
use epc_runtime::{PipelineReport, RuntimeConfig, StageReport};
use epc_viz::dashboard::Dashboard;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Subdirectory of the run directory holding stage checkpoints.
pub const CHECKPOINT_DIR: &str = "checkpoints";

/// Name of the rendered dashboard artifact at the run-directory root.
pub const DASHBOARD_FILE: &str = "dashboard.html";

/// How a durable run executes.
pub struct DurableOptions<'a> {
    /// The run directory (journal, checkpoints, and artifacts live here).
    pub run_dir: PathBuf,
    /// Resume from the directory's journal instead of starting over.
    pub resume: bool,
    /// Optional per-stage deadline watchdog.
    pub deadline: Option<StageDeadline<'a>>,
    /// Optional injected crash point (durability testing).
    pub crash: Option<&'a CrashSpec>,
    /// Optional fault injector (chaos testing).
    pub injector: Option<&'a dyn FaultInjector>,
    /// Optional observability bundle: stage spans, journal hit/commit
    /// points, and checkpoint byte counters land here.
    pub obs: Option<&'a epc_obs::Obs<'a>>,
}

impl<'a> DurableOptions<'a> {
    /// Fresh (non-resuming) options for a run directory.
    pub fn new(run_dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            run_dir: run_dir.into(),
            resume: false,
            deadline: None,
            crash: None,
            injector: None,
            obs: None,
        }
    }

    /// Resume from the directory's journal (builder style).
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Attaches a deadline watchdog (builder style).
    pub fn with_deadline(mut self, deadline: StageDeadline<'a>) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches an injected crash point (builder style).
    pub fn with_crash(mut self, crash: &'a CrashSpec) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Attaches a fault injector (builder style).
    pub fn with_injector(mut self, injector: &'a dyn FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attaches an observability bundle (builder style).
    pub fn with_obs(mut self, obs: &'a epc_obs::Obs<'a>) -> Self {
        self.obs = Some(obs);
        self
    }
}

/// The result of a durable run.
#[derive(Debug)]
pub struct DurableOutput {
    /// How the run ended (identical to an uninterrupted supervised run).
    pub outcome: RunOutcome,
    /// Per-stage instrumentation. Stages satisfied from the journal appear
    /// with zero wall time and their journaled counts.
    pub report: PipelineReport,
    /// Stage-1 product (run or rehydrated).
    pub preprocess: Option<PreprocessOutput>,
    /// Stage-2 product (run or rehydrated).
    pub analytics: Option<AnalyticsOutput>,
    /// Stage-3 dashboard — only when the stage ran in this process (a
    /// journal-hit dashboard stage leaves its artifacts on disk instead).
    pub dashboard: Option<Dashboard>,
    /// Standalone artifacts, file name → content.
    pub artifacts: BTreeMap<String, String>,
    /// Records diverted out of the run, with their faults.
    pub quarantine: Quarantine,
    /// Stages the supervisor degraded.
    pub degraded_stages: Vec<String>,
    /// Stages satisfied from the journal without re-running.
    pub journal_hits: Vec<String>,
    /// Stages actually executed by this process.
    pub replayed: Vec<String>,
    /// Why resume validation dropped a journal suffix, when it did — the
    /// message names the run directory and the offending seq.
    pub resume_rejection: Option<String>,
    /// `true` when loading the journal discarded a torn trailing line (a
    /// crash-during-append artifact). The recovery is sound — the run
    /// replays from the last committed stage — but it is surfaced here so
    /// the CLI can warn instead of swallowing it.
    pub recovered_torn_tail: bool,
}

/// Borrowed engine state a durable run needs ([`crate::engine::Indice`]
/// fields are private to the engine module).
pub(crate) struct DurableInputs<'a> {
    pub dataset: &'a Dataset,
    pub street_map: &'a StreetMap,
    pub hierarchy: &'a RegionHierarchy,
    pub config: IndiceConfig,
    pub runtime: RuntimeConfig,
}

fn dur<T>(r: std::io::Result<T>, what: &str) -> Result<T, IndiceError> {
    r.map_err(|e| IndiceError::Durability(format!("{what}: {e}")))
}

/// Fingerprint of the effective computation: configuration, stakeholder,
/// and the reference inputs (street map, hierarchy). Deliberately excludes
/// the runtime thread budget — outputs are bitwise thread-count-invariant,
/// so a run may be resumed at a different parallelism.
pub(crate) fn config_fingerprint(
    config: &IndiceConfig,
    stakeholder: Stakeholder,
    street_map: &StreetMap,
    hierarchy: &RegionHierarchy,
) -> Result<String, IndiceError> {
    let streets = street_map
        .to_text()
        .map_err(|e| IndiceError::Durability(format!("street map not serializable: {e}")))?;
    let regions = serde_json::to_string(hierarchy)
        .map_err(|e| IndiceError::Durability(format!("hierarchy not serializable: {e}")))?;
    let text = format!("{config:?}|{stakeholder:?}|{streets}|{regions}");
    Ok(hash_hex(text.as_bytes()))
}

/// Validates journal entries against the expected stage sequence and the
/// current inputs; returns the length of the longest trustworthy prefix
/// plus, when a suffix is dropped, a rejection message naming the run
/// directory and the offending seq — multi-directory fleet runs are
/// undebuggable when the message only says *why*, not *where*.
fn validate_prefix(
    entries: &[StageEntry],
    expected: &[&str],
    config_fp: &str,
    input_hash: &str,
    run_dir: &Path,
) -> (usize, Option<String>) {
    let reject = |i: usize, entry: &StageEntry, why: String| {
        (
            i,
            Some(format!(
                "run {}: journal entry seq {} ({}) rejected: {why}",
                run_dir.display(),
                entry.seq,
                entry.stage
            )),
        )
    };
    for (i, entry) in entries.iter().enumerate() {
        if i >= expected.len() || entry.seq != i {
            return reject(
                i,
                entry,
                format!("expected seq {i} of {} stages", expected.len()),
            );
        }
        if entry.stage != expected[i] {
            return reject(i, entry, format!("expected stage '{}'", expected[i]));
        }
        if entry.config_fingerprint != config_fp {
            return reject(i, entry, "stale config fingerprint".to_owned());
        }
        if entry.input_hash != input_hash {
            return reject(i, entry, "stale input hash".to_owned());
        }
        for rec in &entry.checkpoints {
            if let Err(e) = rec.read_verified(run_dir) {
                return reject(i, entry, e.to_string());
            }
        }
    }
    (entries.len(), None)
}

/// Writes the checkpoints capturing a stage's product, if the product is
/// present in the context. File paths in the returned records are relative
/// to the run directory.
fn commit_checkpoints(
    name: &str,
    ctx: &PipelineContext<'_>,
    run_dir: &Path,
) -> Result<Option<Vec<ArtifactRecord>>, IndiceError> {
    let ckpt_dir = run_dir.join(CHECKPOINT_DIR);
    let under_ckpt = |rec: ArtifactRecord| ArtifactRecord {
        file: format!("{CHECKPOINT_DIR}/{}", rec.file),
        ..rec
    };
    match name {
        "preprocess" => {
            let Some(p) = ctx.preprocess.as_ref() else {
                return Ok(None);
            };
            let text = checkpoint::encode_preprocess(p, &ctx.quarantine);
            let rec = dur(
                write_atomic(&ckpt_dir, "preprocess.ckpt.json", text.as_bytes()),
                "writing preprocess checkpoint",
            )?;
            Ok(Some(vec![under_ckpt(rec)]))
        }
        "analytics" => {
            let Some(a) = ctx.analytics.as_ref() else {
                return Ok(None);
            };
            let text = checkpoint::encode_analytics(a);
            let rec = dur(
                write_atomic(&ckpt_dir, "analytics.ckpt.json", text.as_bytes()),
                "writing analytics checkpoint",
            )?;
            Ok(Some(vec![under_ckpt(rec)]))
        }
        "dashboard" => {
            let Some(d) = ctx.dashboard.as_ref() else {
                return Ok(None);
            };
            let mut records = Vec::with_capacity(ctx.artifacts.len() + 1);
            records.push(dur(
                write_atomic(run_dir, DASHBOARD_FILE, d.render_html().as_bytes()),
                "writing dashboard.html",
            )?);
            for (file, content) in &ctx.artifacts {
                records.push(dur(
                    write_atomic(run_dir, file, content.as_bytes()),
                    "writing artifact",
                )?);
            }
            Ok(Some(records))
        }
        other => Err(IndiceError::Internal(format!(
            "no checkpoint codec for stage '{other}'"
        ))),
    }
}

/// Truncates a committed checkpoint to half its recorded length — the torn
/// write a [`CrashSpec::Torn`] leaves behind. The journal entry keeps the
/// full-content hash, so resume validation must catch the mismatch.
pub(crate) fn tear_checkpoint(run_dir: &Path, rec: &ArtifactRecord) -> Result<(), IndiceError> {
    let path = run_dir.join(&rec.file);
    let f = dur(
        fs::OpenOptions::new().write(true).open(&path),
        "opening checkpoint for torn-write injection",
    )?;
    dur(f.set_len(rec.bytes / 2), "truncating checkpoint")?;
    dur(f.sync_all(), "syncing torn checkpoint")?;
    Ok(())
}

/// Rehydrates a journal-hit stage's product into the context.
fn rehydrate(
    entry: &StageEntry,
    ctx: &mut PipelineContext<'_>,
    run_dir: &Path,
) -> Result<(), IndiceError> {
    let where_ = format!("seq {} of run {}", entry.seq, run_dir.display());
    let read = |rec: &ArtifactRecord| -> Result<String, IndiceError> {
        let bytes = dur(
            rec.read_verified(run_dir),
            &format!("re-reading checkpoint for {where_}"),
        )?;
        String::from_utf8(bytes)
            .map_err(|e| IndiceError::Durability(format!("checkpoint for {where_} not UTF-8: {e}")))
    };
    let decode_err = |e: serde::Error| {
        IndiceError::Durability(format!(
            "decoding {} checkpoint at {where_}: {e}",
            entry.stage
        ))
    };
    match entry.stage.as_str() {
        "preprocess" => {
            let rec = entry.checkpoints.first().ok_or_else(|| {
                IndiceError::Durability("preprocess journal entry has no checkpoint".into())
            })?;
            let (out, quarantine) =
                checkpoint::decode_preprocess(&read(rec)?).map_err(decode_err)?;
            ctx.preprocess = Some(out);
            ctx.quarantine = quarantine;
        }
        "analytics" => {
            let rec = entry.checkpoints.first().ok_or_else(|| {
                IndiceError::Durability("analytics journal entry has no checkpoint".into())
            })?;
            ctx.analytics = Some(checkpoint::decode_analytics(&read(rec)?).map_err(decode_err)?);
        }
        "dashboard" => {
            for rec in &entry.checkpoints {
                if rec.file != DASHBOARD_FILE {
                    ctx.artifacts.insert(rec.file.clone(), read(rec)?);
                }
            }
        }
        other => {
            return Err(IndiceError::Durability(format!(
                "journal names unknown stage '{other}'"
            )))
        }
    }
    Ok(())
}

/// Whether the stage's product is present in the context (used to decide
/// between a checkpointed and a product-less degraded journal entry).
pub(crate) fn product_present(ctx: &PipelineContext<'_>, name: &str) -> bool {
    match name {
        "preprocess" => ctx.preprocess.is_some(),
        "analytics" => ctx.analytics.is_some(),
        "dashboard" => ctx.dashboard.is_some(),
        _ => false,
    }
}

pub(crate) fn run_durable_inner(
    inputs: DurableInputs<'_>,
    stakeholder: Stakeholder,
    opts: &DurableOptions<'_>,
) -> Result<DurableOutput, IndiceError> {
    let run_dir = opts.run_dir.as_path();
    dur(
        fs::create_dir_all(run_dir.join(CHECKPOINT_DIR)),
        "creating run directory",
    )?;

    let config_fp = config_fingerprint(
        &inputs.config,
        stakeholder,
        inputs.street_map,
        inputs.hierarchy,
    )?;
    let input_hash = hash_hex(to_csv(inputs.dataset).as_bytes());

    let stages = supervised_stages();
    let expected: Vec<&str> = stages.iter().map(|(s, _)| s.name()).collect();

    let journal = Journal::at(run_dir);
    let loaded = dur(
        journal.load(),
        &format!("loading journal of run {}", run_dir.display()),
    )?;
    let entries = loaded.entries;
    let recovered_torn_tail = loaded.recovered_torn_tail;
    if recovered_torn_tail {
        if let Some(obs) = opts.obs {
            obs.metrics().inc("journal_torn_tail_recovered", 1);
        }
    }
    let (valid, resume_rejection) = if opts.resume {
        validate_prefix(&entries, &expected, &config_fp, &input_hash, run_dir)
    } else {
        (0, None)
    };
    if valid < entries.len() {
        dur(
            journal.rewrite(&entries[..valid]),
            &format!(
                "rewriting journal of run {} to drop entries from seq {valid}",
                run_dir.display()
            ),
        )?;
    }

    let mut ctx = PipelineContext::new(
        inputs.dataset,
        inputs.street_map,
        inputs.hierarchy,
        inputs.config,
        stakeholder,
        inputs.runtime,
    );
    if let Some(injector) = opts.injector {
        ctx = ctx.with_injector(injector);
    }
    if let Some(obs) = opts.obs {
        ctx = ctx.with_obs(obs);
    }
    let mut report = PipelineReport::new(ctx.runtime.threads);
    let mut reasons: Vec<String> = Vec::new();
    let mut journal_hits = Vec::new();
    let mut replayed = Vec::new();

    for (i, (stage, policy)) in stages.iter().enumerate() {
        let name = stage.name();
        if let Some(entry) = entries[..valid].get(i) {
            // Journal hit: the stage's commit is on disk and validated.
            if entry.degraded {
                ctx.degraded_stages.push(name.to_owned());
            } else {
                rehydrate(entry, &mut ctx, run_dir)?;
            }
            reasons.extend(entry.reasons.iter().cloned());
            if let Some(obs) = ctx.obs {
                let bytes: u64 = entry.checkpoints.iter().map(|r| r.bytes).sum();
                obs.point(
                    "journal:hit",
                    &[("bytes", bytes.into()), ("stage", name.into())],
                );
                let m = obs.metrics();
                m.inc("resume_journal_hits", 1);
                m.inc("resume_rehydrated_bytes", bytes);
            }
            report.push(StageReport {
                name: name.to_owned(),
                wall: Duration::ZERO,
                records_in: entry.records_in,
                records_out: entry.records_out,
                quarantined: entry.quarantined,
                faults: entry.faults.clone(),
            });
            journal_hits.push(name.to_owned());
            continue;
        }

        let crash_here = opts.crash.filter(|spec| spec.stage() == name);
        if let Some(spec @ CrashSpec::Before { .. }) = crash_here {
            return Err(IndiceError::CrashInjected {
                stage: name.to_owned(),
                point: spec.point().to_owned(),
            });
        }

        let exec = execute_stage_supervised(
            *stage,
            *policy,
            &mut ctx,
            &mut report,
            opts.deadline.as_ref(),
        );
        replayed.push(name.to_owned());
        if let Some(obs) = ctx.obs {
            obs.metrics().inc("resume_replayed", 1);
        }
        let stage_reasons = match &exec {
            StageExec::Succeeded => Vec::new(),
            StageExec::Degraded(reason) => vec![reason.clone()],
            StageExec::Failed(e) => {
                // A failed required stage commits nothing; the journal keeps
                // the prefix so a rerun replays from here.
                let outcome = RunOutcome::Failed(e.clone());
                return Ok(DurableOutput {
                    outcome,
                    report,
                    preprocess: ctx.preprocess,
                    analytics: ctx.analytics,
                    dashboard: ctx.dashboard,
                    artifacts: ctx.artifacts,
                    quarantine: ctx.quarantine,
                    degraded_stages: ctx.degraded_stages,
                    journal_hits,
                    replayed,
                    resume_rejection: resume_rejection.clone(),
                    recovered_torn_tail,
                });
            }
        };
        reasons.extend(stage_reasons.iter().cloned());

        // Commit: checkpoint files first, then the journal line.
        let checkpoints = commit_checkpoints(name, &ctx, run_dir)?;
        let sr = report
            .stages
            .last()
            .ok_or_else(|| IndiceError::Internal("stage executed without a report entry".into()))?;
        let entry = StageEntry {
            seq: i,
            stage: name.to_owned(),
            config_fingerprint: config_fp.clone(),
            input_hash: input_hash.clone(),
            degraded: !product_present(&ctx, name),
            reasons: stage_reasons,
            records_in: sr.records_in,
            records_out: sr.records_out,
            quarantined: sr.quarantined,
            faults: sr.faults.clone(),
            checkpoints: checkpoints.unwrap_or_default(),
        };
        if let Some(obs) = ctx.obs {
            let bytes: u64 = entry.checkpoints.iter().map(|r| r.bytes).sum();
            obs.point(
                "journal:commit",
                &[
                    ("bytes", bytes.into()),
                    ("files", entry.checkpoints.len().into()),
                    ("stage", name.into()),
                ],
            );
            let m = obs.metrics();
            m.inc("checkpoint_files_total", entry.checkpoints.len() as u64);
            m.inc("checkpoint_bytes_total", bytes);
        }
        if let Some(spec @ CrashSpec::Torn { .. }) = crash_here {
            if let Some(first) = entry.checkpoints.first() {
                tear_checkpoint(run_dir, first)?;
            }
            dur(journal.append(&entry), "appending journal entry")?;
            return Err(IndiceError::CrashInjected {
                stage: name.to_owned(),
                point: spec.point().to_owned(),
            });
        }
        dur(journal.append(&entry), "appending journal entry")?;
        if let Some(spec @ CrashSpec::After { .. }) = crash_here {
            return Err(IndiceError::CrashInjected {
                stage: name.to_owned(),
                point: spec.point().to_owned(),
            });
        }
    }

    let outcome = finish_outcome(&ctx, reasons);
    Ok(DurableOutput {
        outcome,
        report,
        preprocess: ctx.preprocess,
        analytics: ctx.analytics,
        dashboard: ctx.dashboard,
        artifacts: ctx.artifacts,
        quarantine: ctx.quarantine,
        degraded_stages: ctx.degraded_stages,
        journal_hits,
        replayed,
        resume_rejection,
        recovered_torn_tail,
    })
}
