//! The staged pipeline executor behind [`crate::engine::Indice`].
//!
//! The paper's Figure-1 architecture is three sequential blocks. This
//! module makes each block a first-class [`Stage`] over a shared
//! [`PipelineContext`], so stages can be instrumented, re-run with a
//! changed configuration, or skipped when their inputs are already cached
//! in the context — without re-running the whole pipeline.
//!
//! [`run_pipeline`] executes a stage sequence, timing each stage with
//! [`epc_runtime::StageTimer`] and collecting a per-stage
//! [`epc_runtime::PipelineReport`]. All intra-stage data-parallelism goes
//! through [`epc_runtime`]'s deterministic primitives, so a pipeline run
//! produces bitwise-identical outputs for any thread budget.

use crate::analytics::AnalyticsOutput;
use crate::config::IndiceConfig;
use crate::dashboard::{
    build_dashboard_degraded_with_engine, build_dashboard_with_engine,
    drilldown_series_detailed_with_runtime,
};
use crate::error::IndiceError;
use crate::preprocess::{preprocess_observed, PreprocessOutput};
use epc_faults::FaultInjector;
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_model::{wellknown as wk, Dataset, Quarantine};
use epc_obs::{Obs, SpanGuard};
use epc_query::predicate::Predicate;
use epc_query::query::Query;
use epc_query::stakeholder::Stakeholder;
use epc_runtime::{Clock, PipelineReport, RuntimeConfig, StageTimer};
use epc_viz::dashboard::Dashboard;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Shared state flowing through the stages: immutable inputs plus the
/// intermediate products each stage fills in.
pub struct PipelineContext<'a> {
    /// The raw input dataset (before category selection).
    pub dataset: &'a Dataset,
    /// The referenced street map used by the cleaning pass.
    pub street_map: &'a StreetMap,
    /// The region hierarchy of the city under analysis.
    pub hierarchy: &'a RegionHierarchy,
    /// The effective configuration (expert suggestions already applied).
    pub config: IndiceConfig,
    /// The stakeholder the dashboards are built for.
    pub stakeholder: Stakeholder,
    /// The execution runtime every stage's kernels run under.
    pub runtime: RuntimeConfig,
    /// Stage-1 product: cleaned, outlier-free data plus reports.
    pub preprocess: Option<PreprocessOutput>,
    /// Stage-2 product: clusters, rules, correlations.
    pub analytics: Option<AnalyticsOutput>,
    /// Stage-3 product: the assembled dashboard.
    pub dashboard: Option<Dashboard>,
    /// Stage-3 product: standalone artifacts, file name → content.
    pub artifacts: BTreeMap<String, String>,
    /// Fault injector consulted at record, geocode, and stage boundaries
    /// (`None` in production runs).
    pub injector: Option<&'a dyn FaultInjector>,
    /// Records diverted out of the pipeline, with their faults.
    pub quarantine: Quarantine,
    /// Names of stages the supervisor degraded (skipped after failure).
    pub degraded_stages: Vec<String>,
    /// How many times each stage has been invoked on this context (drives
    /// the injector's Nth-invocation stage kills).
    pub stage_invocations: BTreeMap<&'static str, usize>,
    /// The clock stage timers sample. Defaults to the shared process
    /// [`epc_runtime::wall_clock`]; [`PipelineContext::with_obs`] swaps in
    /// the observability bundle's clock so every time reading in a run
    /// flows through one injectable source.
    pub clock: &'a dyn Clock,
    /// Observability bundle recording spans, points, and metrics
    /// (`None`: no recording).
    pub obs: Option<&'a Obs<'a>>,
    /// Centroids from a previous generation's K-means fit. When set (and
    /// shape-compatible with the chosen K), the analytics stage
    /// warm-starts Lloyd's algorithm from them instead of re-seeding —
    /// the incremental-ingest `warm` recompute mode.
    pub warm_centroids: Option<epc_mining::Matrix>,
}

impl<'a> PipelineContext<'a> {
    /// A fresh context with no stage products yet.
    pub fn new(
        dataset: &'a Dataset,
        street_map: &'a StreetMap,
        hierarchy: &'a RegionHierarchy,
        config: IndiceConfig,
        stakeholder: Stakeholder,
        runtime: RuntimeConfig,
    ) -> Self {
        PipelineContext {
            dataset,
            street_map,
            hierarchy,
            config,
            stakeholder,
            runtime,
            preprocess: None,
            analytics: None,
            dashboard: None,
            artifacts: BTreeMap::new(),
            injector: None,
            quarantine: Quarantine::new(),
            degraded_stages: Vec::new(),
            stage_invocations: BTreeMap::new(),
            clock: epc_runtime::wall_clock(),
            obs: None,
            warm_centroids: None,
        }
    }

    /// Attaches a fault injector; stages consult it at record, geocode,
    /// and stage boundaries.
    pub fn with_injector(mut self, injector: &'a dyn FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Swaps the clock stage timers read (deterministic timing under
    /// [`epc_runtime::ManualClock`]).
    pub fn with_clock(mut self, clock: &'a dyn Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Attaches an observability bundle. The bundle's clock becomes the
    /// context clock, so stage timers and trace events share one time
    /// source.
    pub fn with_obs(mut self, obs: &'a Obs<'a>) -> Self {
        self.clock = obs.clock();
        self.obs = Some(obs);
        self
    }

    /// The cleaned dataset, or an error naming the stage that should have
    /// produced it.
    fn cleaned_dataset(&self) -> Result<&Dataset, IndiceError> {
        self.preprocess
            .as_ref()
            .map(|p| &p.dataset)
            .ok_or(IndiceError::EmptyCollection("preprocess stage not run"))
    }
}

/// Record counts a stage reports for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Records entering the stage.
    pub records_in: usize,
    /// Records (or artifacts, for the dashboard stage) leaving it.
    pub records_out: usize,
}

/// One pipeline block: reads its inputs from the context, writes its
/// product back, and reports record counts.
pub trait Stage {
    /// The stage name shown in [`PipelineReport`]s.
    fn name(&self) -> &'static str;

    /// Executes the stage over `ctx`.
    fn run(&self, ctx: &mut PipelineContext<'_>) -> Result<StageStats, IndiceError>;
}

/// Stage 1 — category selection (§2.2.1) followed by geospatial cleaning
/// and outlier removal (§2.1). Fills [`PipelineContext::preprocess`].
pub struct PreprocessStage;

impl Stage for PreprocessStage {
    fn name(&self) -> &'static str {
        "preprocess"
    }

    fn run(&self, ctx: &mut PipelineContext<'_>) -> Result<StageStats, IndiceError> {
        // Data selection: the case study filters on E.1.1. Under the
        // columnar engine the predicate runs as a selection-bitmap scan
        // with zone-map block skipping; matching rows are identical.
        let selected = match &ctx.config.building_category {
            Some(cat) => {
                let query = Query::filtered(Predicate::eq(wk::BUILDING_CATEGORY, cat));
                match ctx.runtime.engine {
                    epc_runtime::Engine::Row => query.run(ctx.dataset)?,
                    epc_runtime::Engine::Columnar => {
                        let store = epc_columnar::DatasetColumnarExt::to_columns(ctx.dataset);
                        let mut scan = epc_columnar::ScanStats::default();
                        let rows =
                            epc_query::columnar::matching_rows_columnar(&query, &store, &mut scan)?;
                        if let Some(obs) = ctx.obs {
                            crate::columnar::record_store_stats(obs, &store.stats());
                            crate::columnar::record_scan_stats(obs, &scan);
                        }
                        ctx.dataset.select_rows(&rows)?
                    }
                }
            }
            None => ctx.dataset.clone(),
        };
        if selected.is_empty() {
            return Err(IndiceError::EmptyCollection("category selection"));
        }
        let records_in = selected.n_rows();
        let quarantined_before = ctx.quarantine.len();
        let (out, quarantine) = preprocess_observed(
            selected,
            ctx.street_map,
            &ctx.config,
            &ctx.runtime,
            ctx.injector,
            ctx.obs,
        )?;
        let records_out = out.dataset.n_rows();
        ctx.preprocess = Some(out);
        ctx.quarantine.merge(quarantine);
        if let Some(obs) = ctx.obs {
            // Per-rule quarantine counters (kind → count this invocation).
            for (kind, n) in ctx.quarantine.histogram_from(quarantined_before) {
                obs.metrics().inc(&format!("quarantine_{kind}"), n as u64);
            }
        }
        Ok(StageStats {
            records_in,
            records_out,
        })
    }
}

/// Stage 2 — correlation screening, clustering, discretization, and rule
/// mining (§2.2). Fills [`PipelineContext::analytics`].
pub struct AnalyticsStage;

impl Stage for AnalyticsStage {
    fn name(&self) -> &'static str {
        "analytics"
    }

    fn run(&self, ctx: &mut PipelineContext<'_>) -> Result<StageStats, IndiceError> {
        let cleaned = ctx.cleaned_dataset()?;
        let records_in = cleaned.n_rows();
        let warm = ctx.warm_centroids.as_ref();
        let out = crate::analytics::analyze_observed_from(
            cleaned,
            &ctx.config,
            &ctx.runtime,
            ctx.obs,
            warm,
        )?;
        let records_out = out.feature_rows.len();
        ctx.analytics = Some(out);
        Ok(StageStats {
            records_in,
            records_out,
        })
    }
}

/// Stage 3 — the stakeholder dashboard plus the per-zoom drill-down pages
/// and standalone artifacts (§2.3). Fills [`PipelineContext::dashboard`]
/// and [`PipelineContext::artifacts`].
pub struct DashboardStage;

impl Stage for DashboardStage {
    fn name(&self) -> &'static str {
        "dashboard"
    }

    fn run(&self, ctx: &mut PipelineContext<'_>) -> Result<StageStats, IndiceError> {
        let cleaned = ctx.cleaned_dataset()?;
        let records_in = cleaned.n_rows();
        let Some(analytics) = ctx.analytics.as_ref() else {
            // A missing analytics product is an ordering error — unless the
            // supervisor degraded that stage, in which case the dashboard
            // still renders its analytics-free panels.
            if ctx.degraded_stages.is_empty() {
                return Err(IndiceError::EmptyCollection("analytics stage not run"));
            }
            let reasons: Vec<String> = ctx
                .degraded_stages
                .iter()
                .map(|s| format!("stage '{s}' failed and was skipped"))
                .collect();
            let out = build_dashboard_degraded_with_engine(
                cleaned,
                ctx.hierarchy,
                ctx.stakeholder,
                ctx.config.rule_stage.top_k,
                &reasons,
                ctx.runtime.engine,
            )?;
            if let Some(obs) = ctx.obs {
                obs.point("dashboard:main", &[("markers", out.n_markers.into())]);
                obs.metrics()
                    .inc("dashboard_markers_main", out.n_markers as u64);
            }
            let records_out = out.artifacts.len();
            ctx.artifacts = out.artifacts;
            ctx.dashboard = Some(out.dashboard);
            return Ok(StageStats {
                records_in,
                records_out,
            });
        };
        let out = build_dashboard_with_engine(
            cleaned,
            ctx.hierarchy,
            analytics,
            ctx.stakeholder,
            ctx.config.rule_stage.top_k,
            ctx.runtime.engine,
        )?;
        if let Some(obs) = ctx.obs {
            obs.point("dashboard:main", &[("markers", out.n_markers.into())]);
            obs.metrics()
                .inc("dashboard_markers_main", out.n_markers as u64);
        }
        let mut artifacts = out.artifacts;
        // The drill-down zoom series (one coarse task per level).
        let pages = drilldown_series_detailed_with_runtime(
            cleaned,
            ctx.hierarchy,
            analytics,
            ctx.stakeholder,
            ctx.config.rule_stage.top_k,
            &ctx.runtime,
        )?;
        for page in pages {
            if let Some(obs) = ctx.obs {
                obs.point(
                    "dashboard:zoom",
                    &[
                        ("level", page.level.to_string().into()),
                        ("markers", page.markers.into()),
                    ],
                );
                obs.metrics()
                    .inc("dashboard_markers_zoom", page.markers as u64);
            }
            artifacts.insert(page.file, page.html);
        }
        let records_out = artifacts.len();
        ctx.dashboard = Some(out.dashboard);
        ctx.artifacts = artifacts;
        Ok(StageStats {
            records_in,
            records_out,
        })
    }
}

/// Runs `stages` in order over `ctx`, timing each one. A failing stage
/// aborts the run and propagates its error.
pub fn run_pipeline(
    stages: &[&dyn Stage],
    ctx: &mut PipelineContext<'_>,
) -> Result<PipelineReport, IndiceError> {
    let mut report = PipelineReport::new(ctx.runtime.threads);
    for stage in stages {
        let name = stage.name();
        let span = open_stage_span(ctx, name);
        let timer = StageTimer::start_with(name, ctx.clock);
        let stats = match stage.run(ctx) {
            Ok(stats) => stats,
            Err(e) => {
                if let Some(span) = span {
                    span.finish("error", &[]);
                }
                return Err(e);
            }
        };
        report.push(timer.finish(stats.records_in, stats.records_out));
        if let Some(obs) = ctx.obs {
            record_stage_metrics(obs, name, stats);
        }
        if let Some(span) = span {
            span.finish(
                "ok",
                &[
                    ("records_in", stats.records_in.into()),
                    ("records_out", stats.records_out.into()),
                ],
            );
        }
    }
    Ok(report)
}

/// Opens the `stage:<name>` span when the context carries an
/// observability bundle.
fn open_stage_span<'a>(ctx: &PipelineContext<'a>, name: &str) -> Option<SpanGuard<'a, 'a>> {
    ctx.obs.map(|o| o.span(&format!("stage:{name}")))
}

/// Histogram bounds for per-stage record counts (records leaving a stage).
const STAGE_RECORDS_BOUNDS: &[u64] = &[10, 100, 1_000, 10_000, 100_000];

/// Records the per-stage counters and the stage-size histogram.
fn record_stage_metrics(obs: &Obs<'_>, name: &str, stats: StageStats) {
    let m = obs.metrics();
    m.inc(&format!("stage_{name}_records_in"), stats.records_in as u64);
    m.inc(
        &format!("stage_{name}_records_out"),
        stats.records_out as u64,
    );
    m.observe(
        "stage_records_out",
        STAGE_RECORDS_BOUNDS,
        stats.records_out as u64,
    );
}

/// The standard three-block sequence of Figure 1.
pub fn standard_stages() -> [&'static dyn Stage; 3] {
    [&PreprocessStage, &AnalyticsStage, &DashboardStage]
}

/// What the supervisor does when a stage fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagePolicy {
    /// Failure aborts the run: later stages cannot do without this one.
    Required,
    /// Failure is recorded and the run continues; downstream stages render
    /// what they can without this stage's product.
    Degradable,
}

/// How a supervised run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Every stage succeeded and nothing was quarantined or degraded.
    Complete,
    /// The pipeline produced output, but parts are missing or approximate;
    /// each reason says why.
    Degraded(Vec<String>),
    /// A required stage failed; no usable output.
    Failed(IndiceError),
}

impl RunOutcome {
    /// `true` unless the run failed outright.
    pub fn produced_output(&self) -> bool {
        !matches!(self, RunOutcome::Failed(_))
    }

    /// Process exit code the CLI maps this outcome to: 0 complete,
    /// 3 degraded, 1 failed.
    pub fn exit_code(&self) -> u8 {
        match self {
            RunOutcome::Complete => 0,
            RunOutcome::Degraded(_) => 3,
            RunOutcome::Failed(_) => 1,
        }
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Complete => write!(f, "complete"),
            RunOutcome::Degraded(reasons) => {
                write!(f, "degraded ({})", reasons.join("; "))
            }
            RunOutcome::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// The standard stage sequence with its failure policies: preprocessing
/// and the dashboard are load-bearing, analytics can be skipped (the
/// dashboard then renders maps and distributions without cluster panels).
pub fn supervised_stages() -> [(&'static dyn Stage, StagePolicy); 3] {
    [
        (&PreprocessStage, StagePolicy::Required),
        (&AnalyticsStage, StagePolicy::Degradable),
        (&DashboardStage, StagePolicy::Required),
    ]
}

/// Per-stage wall-clock budget, enforced by sampling `clock` immediately
/// before and after each stage. The clock is injectable so deadline
/// behaviour is deterministic under test ([`epc_runtime::ManualClock`])
/// while production uses [`epc_runtime::WallClock`] — this module itself
/// never reads the wall clock (lint rule D2).
pub struct StageDeadline<'a> {
    /// Budget each stage may spend, in milliseconds.
    pub budget_ms: u64,
    /// The clock sampled at stage boundaries.
    pub clock: &'a dyn Clock,
}

/// How one supervised stage execution ended.
pub(crate) enum StageExec {
    /// The stage produced its product; its report entry is pushed.
    Succeeded,
    /// The stage failed, panicked, or overran its deadline, and the
    /// supervisor degraded it; the reason belongs in the run outcome.
    Degraded(String),
    /// A required stage failed; the run cannot continue.
    Failed(IndiceError),
}

/// Drops the product a degraded stage wrote into the context, so
/// downstream stages (and resumed runs) behave exactly as if the stage
/// had failed outright.
fn discard_product(ctx: &mut PipelineContext<'_>, name: &str) {
    match name {
        "preprocess" => ctx.preprocess = None,
        "analytics" => ctx.analytics = None,
        "dashboard" => {
            ctx.dashboard = None;
            ctx.artifacts.clear();
        }
        _ => {}
    }
}

/// Executes one stage under the supervisor: injector stage-kills fire as
/// panics, panics are caught, quarantine deltas are accounted, and — when
/// a [`StageDeadline`] is given — the stage's boundary-to-boundary time is
/// checked against the budget. An overrunning [`StagePolicy::Degradable`]
/// stage has its product discarded (the watchdog treats "too slow" as
/// "failed"); an overrunning required stage keeps its product but still
/// degrades the run outcome.
pub(crate) fn execute_stage_supervised(
    stage: &dyn Stage,
    policy: StagePolicy,
    ctx: &mut PipelineContext<'_>,
    report: &mut PipelineReport,
    deadline: Option<&StageDeadline<'_>>,
) -> StageExec {
    let name = stage.name();
    let invocation = ctx.stage_invocations.entry(name).or_insert(0);
    *invocation += 1;
    let kill = ctx
        .injector
        .and_then(|inj| inj.fail_stage(name, *invocation));
    let quarantined_before = ctx.quarantine.len();
    let started_ms = deadline.map(|d| d.clock.now_ms());
    let span = open_stage_span(ctx, name);
    let timer = StageTimer::start_with(name, ctx.clock);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(msg) = kill {
            panic!("{msg}");
        }
        stage.run(ctx)
    }));
    let quarantine_delta = ctx.quarantine.len().saturating_sub(quarantined_before);
    let faults = ctx.quarantine.histogram_from(quarantined_before);
    match outcome {
        Ok(Ok(stats)) => {
            report.push(timer.finish_detailed(
                stats.records_in,
                stats.records_out,
                quarantine_delta,
                faults,
            ));
            if let Some(obs) = ctx.obs {
                record_stage_metrics(obs, name, stats);
                obs.metrics().inc(
                    &format!("stage_{name}_quarantined"),
                    quarantine_delta as u64,
                );
            }
            let span_fields = [
                ("quarantined", quarantine_delta.into()),
                ("records_in", stats.records_in.into()),
                ("records_out", stats.records_out.into()),
            ];
            if let (Some(d), Some(started)) = (deadline, started_ms) {
                let elapsed = d.clock.now_ms().saturating_sub(started);
                if elapsed > d.budget_ms {
                    if let Some(span) = span {
                        span.finish("deadline_overrun", &span_fields);
                    }
                    return match policy {
                        StagePolicy::Degradable => {
                            discard_product(ctx, name);
                            ctx.degraded_stages.push(name.to_owned());
                            StageExec::Degraded(format!(
                                "stage '{name}' exceeded its deadline \
                                 ({elapsed} ms > budget {} ms); product discarded",
                                d.budget_ms
                            ))
                        }
                        StagePolicy::Required => StageExec::Degraded(format!(
                            "stage '{name}' exceeded its deadline \
                             ({elapsed} ms > budget {} ms); required product kept",
                            d.budget_ms
                        )),
                    };
                }
            }
            if let Some(span) = span {
                span.finish("ok", &span_fields);
            }
            StageExec::Succeeded
        }
        Ok(Err(e)) => {
            report.push(timer.finish_detailed(0, 0, quarantine_delta, faults));
            if let Some(span) = span {
                span.finish("error", &[("quarantined", quarantine_delta.into())]);
            }
            match policy {
                StagePolicy::Required => StageExec::Failed(e),
                StagePolicy::Degradable => {
                    ctx.degraded_stages.push(name.to_owned());
                    StageExec::Degraded(format!("stage '{name}' failed: {e}"))
                }
            }
        }
        Err(payload) => {
            let message = panic_message(payload);
            report.push(timer.finish_detailed(0, 0, quarantine_delta, faults));
            if let Some(span) = span {
                span.finish("panicked", &[("quarantined", quarantine_delta.into())]);
            }
            match policy {
                StagePolicy::Required => StageExec::Failed(IndiceError::StagePanicked {
                    stage: name.to_owned(),
                    message,
                }),
                StagePolicy::Degradable => {
                    ctx.degraded_stages.push(name.to_owned());
                    StageExec::Degraded(format!("stage '{name}' panicked: {message}"))
                }
            }
        }
    }
}

/// Appends the run-level degradation reasons derived from the final
/// context state (degraded geocodes, quarantined records) and folds
/// everything into the run outcome. Shared by the supervised and durable
/// runners so resumed runs report identical outcomes.
pub(crate) fn finish_outcome(ctx: &PipelineContext<'_>, mut reasons: Vec<String>) -> RunOutcome {
    if let Some(p) = &ctx.preprocess {
        if p.cleaning.degraded > 0 {
            reasons.push(format!(
                "{} record(s) geocoded to district centroids after retry exhaustion",
                p.cleaning.degraded
            ));
        }
    }
    if reasons.is_empty() && !ctx.quarantine.is_empty() {
        reasons.push(format!(
            "{} record(s) quarantined during preprocessing",
            ctx.quarantine.len()
        ));
    }
    if reasons.is_empty() {
        RunOutcome::Complete
    } else {
        RunOutcome::Degraded(reasons)
    }
}

/// Runs `stages` under a supervisor: stage panics are caught, failures of
/// [`StagePolicy::Degradable`] stages turn into degradation reasons
/// instead of aborting, and per-stage quarantine deltas land in the
/// report. Never returns `Err` — failure is the
/// [`RunOutcome::Failed`] variant, paired with the partial report.
pub fn run_pipeline_supervised(
    stages: &[(&dyn Stage, StagePolicy)],
    ctx: &mut PipelineContext<'_>,
) -> (RunOutcome, PipelineReport) {
    run_pipeline_supervised_with(stages, ctx, None)
}

/// [`run_pipeline_supervised`] with an optional per-stage deadline budget:
/// the watchdog samples the injected clock around each stage and degrades
/// overrunning stages (see [`StageDeadline`]).
pub fn run_pipeline_supervised_with(
    stages: &[(&dyn Stage, StagePolicy)],
    ctx: &mut PipelineContext<'_>,
    deadline: Option<&StageDeadline<'_>>,
) -> (RunOutcome, PipelineReport) {
    let mut report = PipelineReport::new(ctx.runtime.threads);
    let mut reasons: Vec<String> = Vec::new();
    for (stage, policy) in stages {
        match execute_stage_supervised(*stage, *policy, ctx, &mut report, deadline) {
            StageExec::Succeeded => {}
            StageExec::Degraded(reason) => reasons.push(reason),
            StageExec::Failed(e) => return (RunOutcome::Failed(e), report),
        }
    }
    (finish_outcome(ctx, reasons), report)
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};
    use epc_synth::noise::{apply_noise, NoiseConfig};

    fn collection() -> epc_synth::epcgen::SyntheticCollection {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 700,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        apply_noise(&mut c, &NoiseConfig::default());
        c
    }

    #[test]
    fn full_pipeline_reports_every_stage() {
        let c = collection();
        let mut ctx = PipelineContext::new(
            &c.dataset,
            &c.city.street_map,
            &c.city.hierarchy,
            IndiceConfig::default(),
            Stakeholder::PublicAdministration,
            RuntimeConfig::sequential(),
        );
        let report = run_pipeline(&standard_stages(), &mut ctx).unwrap();
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[0].name, "preprocess");
        assert_eq!(report.stages[1].name, "analytics");
        assert_eq!(report.stages[2].name, "dashboard");
        assert!(report.stage("preprocess").unwrap().records_in > 0);
        assert!(ctx.preprocess.is_some());
        assert!(ctx.analytics.is_some());
        assert!(ctx.dashboard.is_some());
        assert!(!ctx.artifacts.is_empty());
        // The drill-down pages ride along as artifacts.
        assert!(ctx.artifacts.contains_key("dashboard_district.html"));
    }

    #[test]
    fn stages_out_of_order_fail_cleanly() {
        let c = collection();
        let mut ctx = PipelineContext::new(
            &c.dataset,
            &c.city.street_map,
            &c.city.hierarchy,
            IndiceConfig::default(),
            Stakeholder::Citizen,
            RuntimeConfig::sequential(),
        );
        assert!(AnalyticsStage.run(&mut ctx).is_err());
        assert!(DashboardStage.run(&mut ctx).is_err());
    }

    #[test]
    fn a_stage_can_be_rerun_on_cached_inputs() {
        let c = collection();
        let mut ctx = PipelineContext::new(
            &c.dataset,
            &c.city.street_map,
            &c.city.hierarchy,
            IndiceConfig::default(),
            Stakeholder::PublicAdministration,
            RuntimeConfig::sequential(),
        );
        run_pipeline(&standard_stages(), &mut ctx).unwrap();
        let first_k = ctx.analytics.as_ref().unwrap().chosen_k;

        // Re-run analytics alone with a fixed K — preprocessing is reused
        // from the context, untouched.
        let cleaned_rows = ctx.preprocess.as_ref().unwrap().dataset.n_rows();
        ctx.config.analytics.k = crate::config::KSelection::Fixed(first_k + 1);
        let stats = AnalyticsStage.run(&mut ctx).unwrap();
        assert_eq!(stats.records_in, cleaned_rows);
        assert_eq!(ctx.analytics.as_ref().unwrap().chosen_k, first_k + 1);
        assert_eq!(
            ctx.preprocess.as_ref().unwrap().dataset.n_rows(),
            cleaned_rows
        );
    }
}
