//! Errors of the INDICE pipeline.

use epc_model::ModelError;
use epc_query::QueryError;
use std::fmt;

/// Anything that can go wrong while running the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum IndiceError {
    /// A data-model operation failed.
    Model(ModelError),
    /// A query failed.
    Query(QueryError),
    /// The pipeline was asked to run on an empty (or fully filtered-out)
    /// collection.
    EmptyCollection(&'static str),
    /// Clustering could not run (e.g. fewer complete rows than K).
    Clustering(String),
    /// Configuration is inconsistent.
    Config(String),
    /// A pipeline stage finished without producing the output a later
    /// consumer depends on, or an output artifact could not be rendered.
    Internal(String),
    /// A supervised stage panicked; the supervisor converted the panic
    /// into this error instead of unwinding the whole process.
    StagePanicked {
        /// Name of the stage that panicked.
        stage: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A durable run's journal, checkpoint, or artifact I/O failed.
    Durability(String),
    /// An injected crash point fired ([`epc_faults::CrashSpec`]); the run
    /// "died" here and is expected to be resumed.
    CrashInjected {
        /// Stage whose commit the crash targeted.
        stage: String,
        /// Crash point (`before`, `after`, `torn`).
        point: String,
    },
}

impl fmt::Display for IndiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndiceError::Model(e) => write!(f, "model error: {e}"),
            IndiceError::Query(e) => write!(f, "{e}"),
            IndiceError::EmptyCollection(stage) => {
                write!(f, "no records left at stage: {stage}")
            }
            IndiceError::Clustering(msg) => write!(f, "clustering error: {msg}"),
            IndiceError::Config(msg) => write!(f, "configuration error: {msg}"),
            IndiceError::Internal(msg) => write!(f, "internal pipeline error: {msg}"),
            IndiceError::StagePanicked { stage, message } => {
                write!(f, "stage '{stage}' panicked: {message}")
            }
            IndiceError::Durability(msg) => write!(f, "durability error: {msg}"),
            IndiceError::CrashInjected { stage, point } => {
                write!(
                    f,
                    "injected crash fired at stage '{stage}' ({point} commit)"
                )
            }
        }
    }
}

impl std::error::Error for IndiceError {}

impl From<ModelError> for IndiceError {
    fn from(e: ModelError) -> Self {
        IndiceError::Model(e)
    }
}

impl From<QueryError> for IndiceError {
    fn from(e: QueryError) -> Self {
        IndiceError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IndiceError::EmptyCollection("clustering");
        assert!(e.to_string().contains("clustering"));
        let e = IndiceError::Config("k_min > k_max".into());
        assert!(e.to_string().contains("k_min"));
        let e: IndiceError = ModelError::UnknownAttribute("x".into()).into();
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn conversions() {
        let q: IndiceError = QueryError::Model(ModelError::SchemaMismatch).into();
        assert!(matches!(q, IndiceError::Query(_)));
    }
}
