//! Columnar-engine glue: observability counters for the columnar paths.
//!
//! The engine choice ([`epc_runtime::Engine`]) is an execution knob like
//! the thread budget: it must never change what the pipeline computes,
//! only how. These helpers therefore emit **metrics only** — no trace
//! points — and are called exclusively from columnar branches, so the
//! golden logical traces and every row-engine artifact stay byte-identical.

use epc_columnar::{ScanStats, StoreStats};
use epc_geo::StreetDedupStats;
use epc_obs::Obs;

/// Counters describing a [`epc_columnar::ColumnStore`] built for a stage:
/// compression effectiveness and dictionary width.
pub(crate) fn record_store_stats(obs: &Obs<'_>, stats: &StoreStats) {
    let m = obs.metrics();
    m.inc("columnar_stores_built", 1);
    m.inc("columnar_columns", stats.columns as u64);
    m.inc("columnar_blocks", stats.blocks as u64);
    m.inc("columnar_dict_entries", stats.dict_entries);
    m.inc("columnar_bytes_plain", stats.bytes_plain);
    m.inc("columnar_bytes_encoded", stats.bytes_encoded);
}

/// Zone-map pushdown effectiveness of the filter kernels.
pub(crate) fn record_scan_stats(obs: &Obs<'_>, stats: &ScanStats) {
    let m = obs.metrics();
    m.inc("columnar_blocks_scanned", stats.blocks_scanned);
    m.inc("columnar_blocks_skipped", stats.blocks_skipped);
}

/// Street-string deduplication of the columnar cleaning pass.
pub(crate) fn record_dedup_stats(obs: &Obs<'_>, stats: &StreetDedupStats) {
    let m = obs.metrics();
    m.inc("columnar_clean_streets_total", stats.total as u64);
    m.inc(
        "columnar_clean_streets_distinct",
        stats.distinct_streets as u64,
    );
}
