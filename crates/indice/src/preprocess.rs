//! Stage 1 — data pre-processing (§2.1): geospatial cleaning followed by
//! outlier detection and removal. "Independently of the adopted strategies,
//! values labelled as outliers are not considered in the subsequent steps
//! of analysis."
//!
//! The fault-tolerant entry point is [`preprocess_faulty`]: malformed or
//! corrupted records are diverted into an [`epc_model::Quarantine`] instead
//! of panicking or poisoning downstream statistics, and (with an injector)
//! transient geocoder failures are retried and finally degraded to
//! district-centroid coordinates.

use crate::config::IndiceConfig;
use crate::error::IndiceError;
use epc_faults::{corrupt_dataset, FaultInjector, FaultyGeocoder};
use epc_geo::address::Address;
use epc_geo::cleaning::{
    clean_addresses_columnar, clean_addresses_degradable, AddressQuery, CleanedAddress,
    CleaningOutcome, CleaningReport, DegradedFallback, StreetDedupStats,
};
use epc_geo::geocode::{Backoff, Geocoder, QuotaGeocoder, RetryGeocoder, SimulatedGeocoder};
use epc_geo::point::GeoPoint;
use epc_geo::streetmap::StreetMap;
use epc_mining::dbscan::{dbscan_with_runtime, DbscanConfig};
use epc_mining::kdistance::estimate_dbscan_params;
use epc_mining::matrix::Matrix;
use epc_model::{
    scan_faults, wellknown as wk, Dataset, Quarantine, RecordFault, ValidationPolicy, Value,
};
use epc_obs::Obs;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Result of the pre-processing stage.
#[derive(Debug, Clone)]
pub struct PreprocessOutput {
    /// The cleaned, outlier-free dataset.
    pub dataset: Dataset,
    /// For each kept row, its index in the input dataset.
    pub kept_rows: Vec<usize>,
    /// Cleaning statistics (§2.1.1).
    pub cleaning: CleaningReport,
    /// Rows flagged per univariate attribute (input-dataset indices).
    pub univariate_flagged: BTreeMap<String, Vec<usize>>,
    /// Rows flagged by DBSCAN (input-dataset indices).
    pub multivariate_flagged: Vec<usize>,
    /// The DBSCAN parameters actually used, when multivariate detection
    /// ran.
    pub dbscan_params: Option<DbscanConfig>,
    /// Union of all removed rows (input-dataset indices, ascending).
    pub removed_rows: Vec<usize>,
    /// Rows kept with *degraded* provenance: their geocoding failed
    /// transiently even after retries, so their coordinates are the
    /// district centroid (input-dataset indices, ascending).
    pub degraded_rows: Vec<usize>,
}

/// Maximum sample used for DBSCAN parameter estimation (the k-distance
/// graph is O(n²); the estimate stabilizes long before 25 000 points).
const PARAM_ESTIMATION_SAMPLE: usize = 1_500;

/// Runs stage 1 over `dataset` (consumed), using `street_map` both as the
/// referenced map and as the simulated geocoder's ground truth.
pub fn preprocess(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
) -> Result<PreprocessOutput, IndiceError> {
    preprocess_with_runtime(
        dataset,
        street_map,
        config,
        &epc_runtime::RuntimeConfig::sequential(),
    )
}

/// [`preprocess`] with an explicit execution runtime: the per-record
/// Levenshtein matching of the cleaning pass and DBSCAN's region queries
/// run data-parallel under `runtime`, with outputs bitwise identical to
/// the sequential run.
pub fn preprocess_with_runtime(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<PreprocessOutput, IndiceError> {
    // The plain path deliberately skips the validation quarantine — it
    // predates fault tolerance and callers rely on row indices matching
    // the raw input.
    let clean = clean_phase_inner(
        dataset,
        street_map,
        config,
        runtime,
        None,
        None,
        config.geocoder_quota,
        false,
    )?;
    outlier_phase(clean, config, runtime, None).map(|(out, _)| out)
}

/// The fault-tolerant stage-1 entry point.
///
/// Before the standard pipeline runs, records with non-finite values in
/// numeric attributes (whether present in the input or planted by the
/// fault `injector`) are diverted into the returned [`Quarantine`] —
/// keyed by certificate id — and excluded from every downstream
/// statistic. With an injector present, the geocoder fallback is wrapped
/// in failure injection plus retry/backoff, and records whose geocoding
/// keeps failing degrade to district-centroid coordinates instead of
/// being dropped.
///
/// With `injector = None` and a clean input, the output is bitwise
/// identical to [`preprocess_with_runtime`].
pub fn preprocess_faulty(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    injector: Option<&dyn FaultInjector>,
) -> Result<(PreprocessOutput, Quarantine), IndiceError> {
    preprocess_observed(dataset, street_map, config, runtime, injector, None)
}

/// [`preprocess_faulty`] with an optional observability bundle: cleaning,
/// univariate, and DBSCAN statistics are recorded as trace points and
/// counters. All emission happens orchestrator-side, after the
/// data-parallel kernels return, so the logical event stream is identical
/// for any thread budget.
pub fn preprocess_observed(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    injector: Option<&dyn FaultInjector>,
    obs: Option<&Obs<'_>>,
) -> Result<(PreprocessOutput, Quarantine), IndiceError> {
    // Stage 1 is literally the composition of its two phases; incremental
    // ingest runs the clean phase per batch and the outlier phase over the
    // merged cumulative data, which is what makes batched == one-shot.
    let clean = clean_phase(
        dataset,
        street_map,
        config,
        runtime,
        injector,
        obs,
        config.geocoder_quota,
    )?;
    outlier_phase(clean, config, runtime, obs)
}

/// Output of [`clean_phase`]: the per-record, batch-composable first half
/// of stage 1 (fault corruption hook, validation quarantine, §2.1.1
/// geospatial cleaning). Outlier detection is a *global* property of the
/// cumulative data and deliberately lives in [`outlier_phase`].
///
/// Clean phases over consecutive input chunks compose: merging their
/// outputs ([`merge_clean_phases`]) equals one clean phase over the
/// concatenated input, provided each later phase's geocoder `quota` is
/// reduced by the requests earlier phases consumed — the quota counter is
/// the only cross-record state in the phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanPhase {
    /// The validated, geospatially cleaned dataset (quarantined rows
    /// removed; outliers still present).
    pub dataset: Dataset,
    /// For each row of `dataset`, its index in the phase's input.
    pub orig_of: Vec<usize>,
    /// Rows in the phase's input (before validation filtering).
    pub input_rows: usize,
    /// Cleaning statistics (§2.1.1); every field is additive across
    /// batches.
    pub cleaning: CleaningReport,
    /// Rows of `dataset` resolved with degraded provenance (district
    /// centroids after exhausted retries), ascending.
    pub degraded_rows: Vec<usize>,
    /// Rows of `dataset` whose address stayed unresolved, ascending.
    pub unresolved_rows: Vec<usize>,
    /// Validation faults diverted out of the phase (row indices and
    /// synthetic keys are in input coordinates).
    pub quarantine: Quarantine,
}

/// Runs the batch-composable first half of stage 1. `quota` is the
/// geocoder budget granted to *this* phase — the full
/// `config.geocoder_quota` for a one-shot run, the remaining balance for
/// an ingest batch.
pub fn clean_phase(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    injector: Option<&dyn FaultInjector>,
    obs: Option<&Obs<'_>>,
    quota: usize,
) -> Result<CleanPhase, IndiceError> {
    clean_phase_inner(
        dataset, street_map, config, runtime, injector, obs, quota, true,
    )
}

#[allow(clippy::too_many_arguments)]
fn clean_phase_inner(
    mut dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    injector: Option<&dyn FaultInjector>,
    obs: Option<&Obs<'_>>,
    quota: usize,
    validate: bool,
) -> Result<CleanPhase, IndiceError> {
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("preprocess"));
    }
    let input_rows = dataset.n_rows();
    let mut quarantine = Quarantine::new();

    let (mut dataset, orig_of) = if validate {
        // Record-boundary fault hook: corrupt before validation so every
        // injected fault flows through the same quarantine path real bad
        // input would.
        if let Some(inj) = injector {
            corrupt_dataset(&mut dataset, inj)?;
        }

        // Validation scan: non-finite values are always faults (they would
        // poison means, distances, and histograms downstream).
        let faults = scan_faults(&dataset, &ValidationPolicy::minimal());
        let bad_rows: BTreeSet<usize> = faults.iter().map(|(row, _)| *row).collect();
        for (row, fault) in faults {
            quarantine.push(record_key(&dataset, row), Some(row), fault);
        }

        // Divert quarantined rows out of the pipeline; remember the
        // original index of every surviving row so reports stay in input
        // coordinates.
        if bad_rows.is_empty() {
            let n = dataset.n_rows();
            (dataset, (0..n).collect::<Vec<usize>>())
        } else {
            let mask: Vec<bool> = (0..dataset.n_rows())
                .map(|r| !bad_rows.contains(&r))
                .collect();
            let orig_of: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i))
                .collect();
            (dataset.filter_mask(&mask)?, orig_of)
        }
    } else {
        let n = dataset.n_rows();
        (dataset, (0..n).collect::<Vec<usize>>())
    };
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("record validation"));
    }

    let (cleaning, degraded_rows, unresolved_rows, dedup) =
        clean_geospatial(&mut dataset, street_map, config, runtime, injector, quota)?;
    if let Some(obs) = obs {
        record_cleaning(obs, &cleaning);
        if let Some(dedup) = &dedup {
            crate::columnar::record_dedup_stats(obs, dedup);
        }
    }
    Ok(CleanPhase {
        dataset,
        orig_of,
        input_rows,
        cleaning,
        degraded_rows,
        unresolved_rows,
        quarantine,
    })
}

/// Merges clean phases of consecutive input chunks into the clean phase
/// of the concatenated input: datasets are appended, row indices and
/// synthetic quarantine keys are rebased onto cumulative coordinates, and
/// the cleaning report is summed field-wise.
pub fn merge_clean_phases(parts: Vec<CleanPhase>) -> Result<CleanPhase, IndiceError> {
    let mut iter = parts.into_iter();
    let Some(mut merged) = iter.next() else {
        return Err(IndiceError::EmptyCollection("merge_clean_phases"));
    };
    for part in iter {
        let input_offset = merged.input_rows;
        let row_offset = merged.dataset.n_rows();
        merged.dataset.append(&part.dataset)?;
        merged
            .orig_of
            .extend(part.orig_of.iter().map(|&r| r + input_offset));
        merged.input_rows += part.input_rows;
        merged.cleaning.merge(&part.cleaning);
        merged
            .degraded_rows
            .extend(part.degraded_rows.iter().map(|&r| r + row_offset));
        merged
            .unresolved_rows
            .extend(part.unresolved_rows.iter().map(|&r| r + row_offset));
        let mut q = part.quarantine;
        q.rebase_rows(input_offset);
        merged.quarantine.merge(q);
    }
    Ok(merged)
}

/// Runs the global second half of stage 1 over a (possibly merged) clean
/// phase: univariate and multivariate outlier detection, opt-in
/// unresolved-address quarantine, and the final row filter. Returns the
/// stage output (row indices in input coordinates) plus the full
/// quarantine — the phase's validation faults followed by any unresolved
/// addresses, exactly the order a one-shot run produces.
pub fn outlier_phase(
    clean: CleanPhase,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    obs: Option<&Obs<'_>>,
) -> Result<(PreprocessOutput, Quarantine), IndiceError> {
    let CleanPhase {
        dataset,
        orig_of,
        input_rows: _,
        cleaning,
        degraded_rows,
        unresolved_rows,
        mut quarantine,
    } = clean;

    let (mut out, unresolved) = detect_and_remove_outliers(
        dataset,
        cleaning,
        degraded_rows,
        unresolved_rows,
        config,
        runtime,
        obs,
    )?;

    // Unresolved-address quarantine (opt-in): rows the cleaning pass
    // could not place anywhere, now also flagged in `removed_rows`.
    for (row, key) in unresolved {
        quarantine.push(
            key,
            orig_of.get(row).copied(),
            RecordFault::UnresolvableAddress,
        );
    }

    // Map every row index in the output back to input coordinates.
    let remap = |rows: &mut Vec<usize>| {
        for r in rows.iter_mut() {
            // lint:allow(D4, D7): the outlier pass only emits row indices of the filtered dataset, orig_of has exactly one entry per filtered row, and the closure calls nothing — no callee can widen the panic surface
            *r = orig_of[*r];
        }
    };
    remap(&mut out.kept_rows);
    remap(&mut out.multivariate_flagged);
    remap(&mut out.removed_rows);
    remap(&mut out.degraded_rows);
    for rows in out.univariate_flagged.values_mut() {
        remap(rows);
    }
    Ok((out, quarantine))
}

/// The stable quarantine key of a row: its certificate id, else a
/// positional fallback.
fn record_key(dataset: &Dataset, row: usize) -> String {
    dataset
        .schema()
        .attr_id(wk::CERTIFICATE_ID)
        .and_then(|id| dataset.cat(row, id).map(str::to_owned))
        .unwrap_or_else(|| format!("row:{row}"))
}

/// The outlier half of stage 1: univariate + multivariate detection and
/// the final row filter over an already-cleaned dataset. Returns the
/// output (row indices relative to *this* input) plus the rows whose
/// address stayed unresolved, when the configuration quarantines them.
fn detect_and_remove_outliers(
    dataset: Dataset,
    cleaning: CleaningReport,
    degraded_rows: Vec<usize>,
    unresolved_rows: Vec<usize>,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    obs: Option<&Obs<'_>>,
) -> Result<(PreprocessOutput, Vec<(usize, String)>), IndiceError> {
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("preprocess"));
    }

    // --- Univariate outliers ---
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut univariate_flagged = BTreeMap::new();
    for (attr, method) in &config.outliers.univariate {
        let id = dataset.schema().require(attr)?;
        let (values, rows) = dataset.numeric_with_rows(id);
        let hits: Vec<usize> = method
            .detect(&values)
            .into_iter()
            .filter_map(|i| rows.get(i).copied())
            .collect();
        flagged.extend(hits.iter().copied());
        univariate_flagged.insert(attr.clone(), hits);
    }
    if let Some(obs) = obs {
        obs.point(
            "preprocess:univariate",
            &[
                ("attrs", univariate_flagged.len().into()),
                ("flagged", flagged.len().into()),
            ],
        );
        obs.metrics()
            .inc("outliers_univariate_flagged", flagged.len() as u64);
    }

    // --- Multivariate outliers (DBSCAN, §2.1.2) ---
    let mut multivariate_flagged = Vec::new();
    let mut dbscan_params = None;
    if config.outliers.multivariate {
        let feature_ids: Vec<_> = config
            .analytics
            .features
            .iter()
            .map(|f| dataset.schema().require(f))
            .collect::<Result<_, _>>()?;
        // Complete rows only. The columnar engine gathers each feature
        // column contiguously instead of one point-lookup per cell; both
        // paths produce the same rows and data bit-for-bit.
        let (rows, data) = match runtime.engine {
            epc_runtime::Engine::Row => {
                let mut rows = Vec::new();
                let mut data = Vec::new();
                for r in 0..dataset.n_rows() {
                    let vals: Option<Vec<f64>> =
                        feature_ids.iter().map(|&id| dataset.num(r, id)).collect();
                    if let Some(v) = vals {
                        rows.push(r);
                        data.extend(v);
                    }
                }
                (rows, data)
            }
            epc_runtime::Engine::Columnar => {
                let store = epc_columnar::DatasetColumnarExt::to_columns(&dataset);
                if let Some(obs) = obs {
                    crate::columnar::record_store_stats(obs, &store.stats());
                }
                epc_columnar::kernels::gather_complete_rows(&store, &feature_ids)
            }
        };
        if rows.len() >= 10 {
            let matrix = Matrix::from_vec(data, rows.len(), feature_ids.len());
            // Scale features so DBSCAN's Euclidean radius is meaningful.
            let (_, scaled) = epc_mining::normalize::MinMaxScaler::fit_transform(&matrix)
                .ok_or_else(|| {
                    IndiceError::Clustering("feature scaling failed: empty matrix".into())
                })?;
            // Parameter estimation on a stride-sample.
            let params = {
                let stride = (rows.len() / PARAM_ESTIMATION_SAMPLE).max(1);
                let sample_rows: Vec<Vec<f64>> = (0..rows.len())
                    .step_by(stride)
                    .map(|i| scaled.row(i).to_vec())
                    .collect();
                let sample = Matrix::from_rows(&sample_rows);
                estimate_dbscan_params(
                    &sample,
                    &config.outliers.min_points_candidates,
                    config.outliers.stability_tol,
                )
            };
            if let Some(params) = params {
                let result = dbscan_with_runtime(&scaled, &params, runtime);
                if let Some(obs) = obs {
                    obs.point(
                        "preprocess:dbscan",
                        &[
                            ("eps", params.eps.into()),
                            ("min_points", params.min_points.into()),
                            ("neighbour_links", result.neighbour_links.into()),
                            ("noise", result.noise_indices().len().into()),
                            ("points", result.labels.len().into()),
                            ("region_queries", result.region_queries.into()),
                        ],
                    );
                    let m = obs.metrics();
                    m.inc("dbscan_region_queries", result.region_queries as u64);
                    m.inc("dbscan_neighbour_links", result.neighbour_links as u64);
                    m.inc(
                        "outliers_multivariate_flagged",
                        result.noise_indices().len() as u64,
                    );
                }
                multivariate_flagged = result
                    .noise_indices()
                    .into_iter()
                    .filter_map(|i| rows.get(i).copied())
                    .collect();
                flagged.extend(multivariate_flagged.iter().copied());
                dbscan_params = Some(params);
            }
        }
    }

    // Opt-in: unresolved addresses leave the analysis too (they are
    // reported back for quarantine by the caller).
    let mut quarantined_unresolved = Vec::new();
    if config.fault_tolerance.quarantine_unresolved {
        for &row in &unresolved_rows {
            flagged.insert(row);
            quarantined_unresolved.push((row, record_key(&dataset, row)));
        }
    }

    let removed_rows: Vec<usize> = flagged.into_iter().collect();
    let mask: Vec<bool> = (0..dataset.n_rows())
        .map(|r| removed_rows.binary_search(&r).is_err())
        .collect();
    let kept_rows: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &keep)| keep.then_some(i))
        .collect();
    let dataset = dataset.filter_mask(&mask)?;
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("outlier removal"));
    }
    Ok((
        PreprocessOutput {
            dataset,
            kept_rows,
            cleaning,
            univariate_flagged,
            multivariate_flagged,
            dbscan_params,
            removed_rows,
            degraded_rows,
        },
        quarantined_unresolved,
    ))
}

/// Records the cleaning report as one trace point plus geocoder counters.
fn record_cleaning(obs: &Obs<'_>, report: &CleaningReport) {
    obs.point(
        "preprocess:cleaning",
        &[
            ("by_geocoder", report.by_geocoder.into()),
            ("by_reference", report.by_reference.into()),
            ("coords_fixed", report.coords_fixed.into()),
            ("degraded", report.degraded.into()),
            ("exact_matches", report.exact_matches.into()),
            ("geocoder_requests", report.geocoder_requests.into()),
            ("geocoder_retries", report.geocoder_retries.into()),
            ("streets_fixed", report.streets_fixed.into()),
            ("total", report.total.into()),
            ("unresolved", report.unresolved.into()),
            ("zips_fixed", report.zips_fixed.into()),
        ],
    );
    let m = obs.metrics();
    m.inc("geocoder_requests", report.geocoder_requests as u64);
    m.inc("geocoder_retries", report.geocoder_retries as u64);
    m.inc("geocode_degraded", report.degraded as u64);
    m.inc("geocode_unresolved", report.unresolved as u64);
}

/// What [`clean_geospatial`] reports back: the cleaning report, the rows
/// resolved with degraded provenance, the rows left unresolved (both
/// relative to the dataset), and — columnar engine only — the
/// street-dedup accounting.
type CleanedGeo = (
    CleaningReport,
    Vec<usize>,
    Vec<usize>,
    Option<StreetDedupStats>,
);

/// The §2.1.1 geospatial-cleaning pass, applied in place. Returns the
/// cleaning report plus the rows resolved with degraded provenance and the
/// rows left unresolved (both relative to `dataset`). `quota` is the
/// geocoder budget granted to this pass; `config.geocoder_quota` stays the
/// on/off switch, so an exhausted quota (0 remaining) still routes through
/// a `QuotaGeocoder` — exactly how a one-shot run behaves after using up
/// its budget mid-stream.
fn clean_geospatial(
    dataset: &mut Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    injector: Option<&dyn FaultInjector>,
    quota: usize,
) -> Result<CleanedGeo, IndiceError> {
    let schema = dataset.schema_arc();
    let addr_id = schema.require(wk::ADDRESS)?;
    let hn_id = schema.require(wk::HOUSE_NUMBER)?;
    let zip_id = schema.require(wk::ZIP_CODE)?;
    let lat_id = schema.require(wk::LATITUDE)?;
    let lon_id = schema.require(wk::LONGITUDE)?;
    let district_id = schema.require(wk::DISTRICT)?;
    let neigh_id = schema.require(wk::NEIGHBOURHOOD)?;

    let queries: Vec<AddressQuery> = (0..dataset.n_rows())
        .map(|row| {
            let street = dataset.cat(row, addr_id).unwrap_or("").to_owned();
            let house = dataset.cat(row, hn_id).map(str::to_owned);
            let zip = dataset.cat(row, zip_id).map(str::to_owned);
            let point = match (dataset.num(row, lat_id), dataset.num(row, lon_id)) {
                (Some(lat), Some(lon)) => Some(GeoPoint { lat, lon }),
                _ => None,
            };
            AddressQuery {
                id: row,
                address: Address {
                    street,
                    house_number: house,
                    zip,
                },
                point,
            }
        })
        .collect();

    // The geocoder fallback: more tolerant than the local φ match, but
    // quota-limited (§2.1.1). Ground truth is the referenced map itself —
    // what a production geocoder effectively holds.
    let geocoder = QuotaGeocoder::new(
        SimulatedGeocoder::new(street_map.clone(), 0.55, 0.02),
        quota,
    );
    // Engine dispatch: the columnar path deduplicates the Levenshtein
    // scan per distinct street string; its output is bitwise identical
    // (gated by tests/columnar.rs), so the choice never leaks downstream.
    let clean_with_engine = |geocoder_ref: Option<&dyn Geocoder>,
                             fallback: Option<&DegradedFallback>|
     -> (
        Vec<CleanedAddress>,
        CleaningReport,
        Option<StreetDedupStats>,
    ) {
        match runtime.engine {
            epc_runtime::Engine::Row => {
                let (cleaned, report) = clean_addresses_degradable(
                    &queries,
                    street_map,
                    geocoder_ref,
                    &config.cleaning,
                    runtime,
                    fallback,
                );
                (cleaned, report, None)
            }
            epc_runtime::Engine::Columnar => {
                let (cleaned, report, stats) = clean_addresses_columnar(
                    &queries,
                    street_map,
                    geocoder_ref,
                    &config.cleaning,
                    runtime,
                    fallback,
                );
                (cleaned, report, Some(stats))
            }
        }
    };
    let (cleaned, report, dedup) = match injector {
        Some(inj) => {
            // Under fault injection, calls may fail transiently: retry
            // them with the deterministic backoff, and degrade exhausted
            // records to their district's centroid.
            let retry = RetryGeocoder::new(
                FaultyGeocoder::new(geocoder, inj),
                config.fault_tolerance.geocode_retries,
                Backoff::default(),
            );
            let geocoder_ref: Option<&dyn Geocoder> = if config.geocoder_quota > 0 {
                Some(&retry)
            } else {
                None
            };
            let fallback = district_fallback(dataset, street_map, district_id);
            clean_with_engine(geocoder_ref, Some(&fallback))
        }
        None => {
            let geocoder_ref: Option<&dyn Geocoder> = if config.geocoder_quota > 0 {
                Some(&geocoder)
            } else {
                None
            };
            clean_with_engine(geocoder_ref, None)
        }
    };

    let mut degraded_rows = Vec::new();
    let mut unresolved_rows = Vec::new();
    for c in cleaned {
        let row = c.id;
        match c.outcome {
            CleaningOutcome::Unresolved => {
                unresolved_rows.push(row);
                continue;
            }
            CleaningOutcome::Degraded => degraded_rows.push(row),
            _ => {}
        }
        dataset.set_value(row, addr_id, Value::cat(c.address.street.clone()))?;
        if let Some(hn) = &c.address.house_number {
            dataset.set_value(row, hn_id, Value::cat(hn.clone()))?;
        }
        if let Some(zip) = &c.address.zip {
            dataset.set_value(row, zip_id, Value::cat(zip.clone()))?;
        }
        if let Some(p) = c.point {
            dataset.set_value(row, lat_id, Value::num(p.lat))?;
            dataset.set_value(row, lon_id, Value::num(p.lon))?;
        }
        if let Some(d) = &c.district {
            dataset.set_value(row, district_id, Value::cat(d.clone()))?;
        }
        if let Some(n) = &c.neighbourhood {
            dataset.set_value(row, neigh_id, Value::cat(n.clone()))?;
        }
    }
    degraded_rows.sort_unstable();
    unresolved_rows.sort_unstable();
    Ok((report, degraded_rows, unresolved_rows, dedup))
}

/// District-centroid fallback for degraded geocoding: centroids averaged
/// from the referenced street map's entries, hints read from each row's
/// district column.
fn district_fallback(
    dataset: &Dataset,
    street_map: &StreetMap,
    district_id: epc_model::AttrId,
) -> DegradedFallback {
    let mut sums: BTreeMap<String, (f64, f64, usize)> = BTreeMap::new();
    for entry in street_map.entries() {
        let slot = sums.entry(entry.district.clone()).or_insert((0.0, 0.0, 0));
        slot.0 += entry.point.lat;
        slot.1 += entry.point.lon;
        slot.2 += 1;
    }
    let centroids: BTreeMap<String, GeoPoint> = sums
        .into_iter()
        .filter(|(_, (_, _, n))| *n > 0)
        .map(|(district, (lat, lon, n))| {
            (
                district,
                GeoPoint {
                    lat: lat / n as f64,
                    lon: lon / n as f64,
                },
            )
        })
        .collect();
    let hints: Vec<Option<String>> = (0..dataset.n_rows())
        .map(|row| dataset.cat(row, district_id).map(str::to_owned))
        .collect();
    DegradedFallback { centroids, hints }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use epc_faults::DeterministicInjector;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};
    use epc_synth::noise::{apply_noise, NoiseConfig};

    fn collection(noise: bool) -> epc_synth::epcgen::SyntheticCollection {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 600,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        if noise {
            apply_noise(&mut c, &NoiseConfig::default());
        }
        c
    }

    #[test]
    fn clean_collection_loses_almost_nothing() {
        let c = collection(false);
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        assert_eq!(out.cleaning.unresolved, 0, "all addresses are canonical");
        // Only statistical false positives may be removed (MAD tails and
        // DBSCAN low-density points) — keep them under ~12%.
        assert!(
            out.removed_rows.len() < 72,
            "removed {} of 600",
            out.removed_rows.len()
        );
        assert_eq!(out.kept_rows.len(), out.dataset.n_rows());
    }

    #[test]
    fn noisy_addresses_are_repaired() {
        let c = collection(true);
        let before_truth = c.truth.clone();
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        // Most corrupted addresses must be resolved (reference or geocoder).
        let resolved = out.cleaning.by_reference + out.cleaning.by_geocoder;
        assert!(
            resolved as f64 >= 0.95 * out.cleaning.total as f64,
            "resolved {resolved}/{}",
            out.cleaning.total
        );
        // Spot-check street restoration against ground truth.
        let s = out.dataset.schema();
        let addr_id = s.require(wk::ADDRESS).unwrap();
        let mut correct = 0;
        let mut checked = 0;
        for (new_row, &orig_row) in out.kept_rows.iter().enumerate() {
            checked += 1;
            if out.dataset.cat(new_row, addr_id) == Some(before_truth.streets[orig_row].as_str()) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 > 0.9 * checked as f64,
            "street accuracy {correct}/{checked}"
        );
    }

    #[test]
    fn injected_outliers_are_mostly_removed() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                univariate_outlier_rate: 0.03,
                ..NoiseConfig::none()
            },
        );
        let injected: BTreeSet<usize> = c.truth.injected_outliers.iter().copied().collect();
        assert!(!injected.is_empty());
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        let removed: BTreeSet<usize> = out.removed_rows.iter().copied().collect();
        let caught = injected.intersection(&removed).count();
        // Injected univariate outliers target Uw/Uo/EPH; the default
        // config watches Uw/Uo (not EPH), so expect to catch most of ~2/3.
        assert!(
            caught as f64 >= 0.5 * injected.len() as f64,
            "caught {caught}/{}",
            injected.len()
        );
    }

    #[test]
    fn zero_quota_disables_geocoder() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                typo_rate: 0.5,
                ..NoiseConfig::none()
            },
        );
        let cfg = IndiceConfig {
            geocoder_quota: 0,
            ..IndiceConfig::default()
        };
        let out = preprocess(c.dataset.clone(), &c.city.street_map, &cfg).unwrap();
        assert_eq!(out.cleaning.by_geocoder, 0);
        assert_eq!(out.cleaning.geocoder_requests, 0);
    }

    #[test]
    fn multivariate_can_be_disabled() {
        let c = collection(false);
        let cfg = IndiceConfig {
            outliers: crate::config::OutlierConfig {
                multivariate: false,
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        let out = preprocess(c.dataset.clone(), &c.city.street_map, &cfg).unwrap();
        assert!(out.multivariate_flagged.is_empty());
        assert!(out.dbscan_params.is_none());
    }

    #[test]
    fn empty_dataset_errors() {
        let c = collection(false);
        let empty = Dataset::new(c.dataset.schema_arc());
        let err = preprocess(empty, &c.city.street_map, &IndiceConfig::default()).unwrap_err();
        assert_eq!(err, IndiceError::EmptyCollection("preprocess"));
    }

    #[test]
    fn faulty_with_no_injector_matches_plain_preprocess() {
        let c = collection(true);
        let plain = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        let (faulty, quarantine) = preprocess_faulty(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
            &epc_runtime::RuntimeConfig::sequential(),
            None,
        )
        .unwrap();
        assert!(quarantine.is_empty());
        assert_eq!(faulty.kept_rows, plain.kept_rows);
        assert_eq!(faulty.removed_rows, plain.removed_rows);
        assert_eq!(faulty.cleaning, plain.cleaning);
        assert!(faulty.degraded_rows.is_empty());
    }

    #[test]
    fn corrupted_records_are_quarantined_exactly() {
        let c = collection(false);
        let inj = DeterministicInjector::new(1234).with_record_rate(0.1);
        // Predict the corrupted keys independently of the pipeline.
        let id = c
            .dataset
            .schema()
            .attr_id(epc_model::wellknown::CERTIFICATE_ID)
            .unwrap();
        let expected: std::collections::BTreeSet<String> = (0..c.dataset.n_rows())
            .filter_map(|r| c.dataset.cat(r, id).map(str::to_owned))
            .filter(|k| {
                use epc_faults::FaultInjector;
                inj.corrupt_record(k).is_some()
            })
            .collect();
        assert!(!expected.is_empty());
        let (out, quarantine) = preprocess_faulty(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
            &epc_runtime::RuntimeConfig::sequential(),
            Some(&inj),
        )
        .unwrap();
        let got: std::collections::BTreeSet<String> =
            quarantine.keys().iter().map(|k| k.to_string()).collect();
        assert_eq!(
            got, expected,
            "quarantine must hit exactly the corrupted keys"
        );
        assert_eq!(quarantine.histogram()["non_finite"], expected.len());
        // Quarantined rows are gone from the analysis.
        assert_eq!(
            out.kept_rows.len() + out.removed_rows.len() + quarantine.len(),
            c.dataset.n_rows()
        );
    }

    #[test]
    fn geocode_faults_degrade_records_to_district_centroids() {
        let mut c = collection(false);
        // Heavy typos force many records to the geocoder fallback...
        apply_noise(
            &mut c,
            &NoiseConfig {
                typo_rate: 0.5,
                ..NoiseConfig::none()
            },
        );
        // ...and a 100% geocode failure rate with zero retries makes every
        // fallback call fail permanently-transiently.
        let inj = DeterministicInjector::new(7).with_geocode_rate(1.0);
        let cfg = IndiceConfig {
            fault_tolerance: crate::config::FaultToleranceConfig {
                geocode_retries: 0,
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        let (out, _) = preprocess_faulty(
            c.dataset.clone(),
            &c.city.street_map,
            &cfg,
            &epc_runtime::RuntimeConfig::sequential(),
            Some(&inj),
        )
        .unwrap();
        assert!(
            out.cleaning.degraded > 0,
            "expected degraded records, got report {:?}",
            out.cleaning
        );
        assert_eq!(out.degraded_rows.len(), out.cleaning.degraded);
        assert_eq!(
            out.cleaning.unresolved, 0,
            "centroids exist for every district"
        );
    }

    #[test]
    fn quarantine_unresolved_diverts_unresolvable_addresses() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                typo_rate: 0.5,
                ..NoiseConfig::none()
            },
        );
        // No geocoder, strict φ: plenty of addresses stay unresolved.
        let cfg = IndiceConfig {
            geocoder_quota: 0,
            fault_tolerance: crate::config::FaultToleranceConfig {
                quarantine_unresolved: true,
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        let (out, quarantine) = preprocess_faulty(
            c.dataset.clone(),
            &c.city.street_map,
            &cfg,
            &epc_runtime::RuntimeConfig::sequential(),
            None,
        )
        .unwrap();
        assert!(!quarantine.is_empty() || out.cleaning.unresolved == 0);
        assert_eq!(quarantine.len(), out.cleaning.unresolved);
        assert_eq!(
            quarantine.histogram().get("unresolvable_address").copied(),
            (!quarantine.is_empty()).then_some(quarantine.len())
        );
    }

    /// Splits a dataset into `k` contiguous chunks.
    fn chunks_of(dataset: &Dataset, k: usize) -> Vec<Dataset> {
        let n = dataset.n_rows();
        (0..k)
            .map(|i| {
                let (a, b) = (i * n / k, (i + 1) * n / k);
                let mask: Vec<bool> = (0..n).map(|r| r >= a && r < b).collect();
                dataset.filter_mask(&mask).unwrap()
            })
            .collect()
    }

    /// Field-wise equality of two clean phases. The dataset is compared
    /// through its CSV projection: the columnar dictionary *order* is an
    /// interning artifact (a one-shot clean keeps dict entries for dirty
    /// strings later repaired in place; a merged clean re-interns only
    /// final values) that the outlier phase's row filter canonicalizes
    /// away before anything is persisted.
    fn assert_clean_phases_equivalent(merged: &CleanPhase, one: &CleanPhase) {
        assert_eq!(
            epc_model::csv::to_csv(&merged.dataset),
            epc_model::csv::to_csv(&one.dataset)
        );
        assert_eq!(merged.orig_of, one.orig_of);
        assert_eq!(merged.input_rows, one.input_rows);
        assert_eq!(merged.cleaning, one.cleaning);
        assert_eq!(merged.degraded_rows, one.degraded_rows);
        assert_eq!(merged.unresolved_rows, one.unresolved_rows);
        assert_eq!(merged.quarantine, one.quarantine);
    }

    /// The load-bearing ingest invariant at the phase level: clean phases
    /// over chunks, merged, equal one clean phase over the whole input —
    /// provided the geocoder quota is carried across chunks.
    #[test]
    fn clean_phases_compose_across_chunks() {
        let c = collection(true);
        let cfg = IndiceConfig::default();
        let rt = epc_runtime::RuntimeConfig::sequential();
        let one = clean_phase(
            c.dataset.clone(),
            &c.city.street_map,
            &cfg,
            &rt,
            None,
            None,
            cfg.geocoder_quota,
        )
        .unwrap();
        let mut parts = Vec::new();
        let mut used = 0;
        for chunk in chunks_of(&c.dataset, 3) {
            let part = clean_phase(
                chunk,
                &c.city.street_map,
                &cfg,
                &rt,
                None,
                None,
                cfg.geocoder_quota.saturating_sub(used),
            )
            .unwrap();
            used += part.cleaning.geocoder_requests;
            parts.push(part);
        }
        let merged = merge_clean_phases(parts).unwrap();
        assert_clean_phases_equivalent(&merged, &one);
    }

    /// Composition holds even when the quota runs dry mid-stream: the
    /// carried balance makes a later batch's exhausted geocoder behave
    /// exactly like the one-shot run's exhausted geocoder.
    #[test]
    fn clean_phases_compose_when_quota_exhausts_mid_stream() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                typo_rate: 0.5,
                ..NoiseConfig::none()
            },
        );
        let cfg = IndiceConfig {
            geocoder_quota: 20,
            ..IndiceConfig::default()
        };
        let rt = epc_runtime::RuntimeConfig::sequential();
        let one = clean_phase(
            c.dataset.clone(),
            &c.city.street_map,
            &cfg,
            &rt,
            None,
            None,
            cfg.geocoder_quota,
        )
        .unwrap();
        assert_eq!(
            one.cleaning.geocoder_requests, 20,
            "test needs the one-shot quota to exhaust"
        );
        let mut parts = Vec::new();
        let mut used = 0;
        for chunk in chunks_of(&c.dataset, 4) {
            let part = clean_phase(
                chunk,
                &c.city.street_map,
                &cfg,
                &rt,
                None,
                None,
                cfg.geocoder_quota.saturating_sub(used),
            )
            .unwrap();
            used += part.cleaning.geocoder_requests;
            parts.push(part);
        }
        let merged = merge_clean_phases(parts).unwrap();
        assert_clean_phases_equivalent(&merged, &one);
    }

    /// The full stage composes too: clean per chunk, merge, one outlier
    /// pass — identical to `preprocess_observed` over the whole input.
    #[test]
    fn chunked_clean_plus_merged_outliers_equals_one_shot() {
        let c = collection(true);
        let cfg = IndiceConfig::default();
        let rt = epc_runtime::RuntimeConfig::sequential();
        let (one, one_q) =
            preprocess_observed(c.dataset.clone(), &c.city.street_map, &cfg, &rt, None, None)
                .unwrap();
        let mut parts = Vec::new();
        let mut used = 0;
        for chunk in chunks_of(&c.dataset, 3) {
            let part = clean_phase(
                chunk,
                &c.city.street_map,
                &cfg,
                &rt,
                None,
                None,
                cfg.geocoder_quota.saturating_sub(used),
            )
            .unwrap();
            used += part.cleaning.geocoder_requests;
            parts.push(part);
        }
        let merged = merge_clean_phases(parts).unwrap();
        let (batched, batched_q) = outlier_phase(merged, &cfg, &rt, None).unwrap();
        assert_eq!(batched.dataset, one.dataset);
        assert_eq!(batched.kept_rows, one.kept_rows);
        assert_eq!(batched.removed_rows, one.removed_rows);
        assert_eq!(batched.cleaning, one.cleaning);
        assert_eq!(batched_q, one_q);
    }

    #[test]
    fn report_indices_are_within_input_bounds() {
        let mut c = collection(true);
        apply_noise(&mut c, &NoiseConfig::default());
        let n = c.dataset.n_rows();
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        for &r in &out.removed_rows {
            assert!(r < n);
        }
        for rows in out.univariate_flagged.values() {
            for &r in rows {
                assert!(r < n);
            }
        }
        assert_eq!(out.kept_rows.len() + out.removed_rows.len(), n);
    }
}
