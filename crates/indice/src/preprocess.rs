//! Stage 1 — data pre-processing (§2.1): geospatial cleaning followed by
//! outlier detection and removal. "Independently of the adopted strategies,
//! values labelled as outliers are not considered in the subsequent steps
//! of analysis."

use crate::config::IndiceConfig;
use crate::error::IndiceError;
use epc_geo::address::Address;
use epc_geo::cleaning::{AddressQuery, CleaningReport};
use epc_geo::geocode::{QuotaGeocoder, SimulatedGeocoder};
use epc_geo::point::GeoPoint;
use epc_geo::streetmap::StreetMap;
use epc_mining::dbscan::{dbscan_with_runtime, DbscanConfig};
use epc_mining::kdistance::estimate_dbscan_params;
use epc_mining::matrix::Matrix;
use epc_model::{wellknown as wk, Dataset, Value};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Result of the pre-processing stage.
#[derive(Debug, Clone)]
pub struct PreprocessOutput {
    /// The cleaned, outlier-free dataset.
    pub dataset: Dataset,
    /// For each kept row, its index in the input dataset.
    pub kept_rows: Vec<usize>,
    /// Cleaning statistics (§2.1.1).
    pub cleaning: CleaningReport,
    /// Rows flagged per univariate attribute (input-dataset indices).
    pub univariate_flagged: BTreeMap<String, Vec<usize>>,
    /// Rows flagged by DBSCAN (input-dataset indices).
    pub multivariate_flagged: Vec<usize>,
    /// The DBSCAN parameters actually used, when multivariate detection
    /// ran.
    pub dbscan_params: Option<DbscanConfig>,
    /// Union of all removed rows (input-dataset indices, ascending).
    pub removed_rows: Vec<usize>,
}

/// Maximum sample used for DBSCAN parameter estimation (the k-distance
/// graph is O(n²); the estimate stabilizes long before 25 000 points).
const PARAM_ESTIMATION_SAMPLE: usize = 1_500;

/// Runs stage 1 over `dataset` (consumed), using `street_map` both as the
/// referenced map and as the simulated geocoder's ground truth.
pub fn preprocess(
    dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
) -> Result<PreprocessOutput, IndiceError> {
    preprocess_with_runtime(
        dataset,
        street_map,
        config,
        &epc_runtime::RuntimeConfig::sequential(),
    )
}

/// [`preprocess`] with an explicit execution runtime: the per-record
/// Levenshtein matching of the cleaning pass and DBSCAN's region queries
/// run data-parallel under `runtime`, with outputs bitwise identical to
/// the sequential run.
pub fn preprocess_with_runtime(
    mut dataset: Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<PreprocessOutput, IndiceError> {
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("preprocess"));
    }
    let cleaning = clean_geospatial(&mut dataset, street_map, config, runtime)?;

    // --- Univariate outliers ---
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut univariate_flagged = BTreeMap::new();
    for (attr, method) in &config.outliers.univariate {
        let id = dataset.schema().require(attr)?;
        let (values, rows) = dataset.numeric_with_rows(id);
        let hits: Vec<usize> = method
            .detect(&values)
            .into_iter()
            .map(|i| rows[i])
            .collect();
        flagged.extend(hits.iter().copied());
        univariate_flagged.insert(attr.clone(), hits);
    }

    // --- Multivariate outliers (DBSCAN, §2.1.2) ---
    let mut multivariate_flagged = Vec::new();
    let mut dbscan_params = None;
    if config.outliers.multivariate {
        let feature_ids: Vec<_> = config
            .analytics
            .features
            .iter()
            .map(|f| dataset.schema().require(f))
            .collect::<Result<_, _>>()?;
        // Complete rows only.
        let mut rows = Vec::new();
        let mut data = Vec::new();
        for r in 0..dataset.n_rows() {
            let vals: Option<Vec<f64>> = feature_ids.iter().map(|&id| dataset.num(r, id)).collect();
            if let Some(v) = vals {
                rows.push(r);
                data.extend(v);
            }
        }
        if rows.len() >= 10 {
            let matrix = Matrix::from_vec(data, rows.len(), feature_ids.len());
            // Scale features so DBSCAN's Euclidean radius is meaningful.
            let (_, scaled) = epc_mining::normalize::MinMaxScaler::fit_transform(&matrix)
                .expect("non-empty matrix");
            // Parameter estimation on a stride-sample.
            let params = {
                let stride = (rows.len() / PARAM_ESTIMATION_SAMPLE).max(1);
                let sample_rows: Vec<Vec<f64>> = (0..rows.len())
                    .step_by(stride)
                    .map(|i| scaled.row(i).to_vec())
                    .collect();
                let sample = Matrix::from_rows(&sample_rows);
                estimate_dbscan_params(
                    &sample,
                    &config.outliers.min_points_candidates,
                    config.outliers.stability_tol,
                )
            };
            if let Some(params) = params {
                let result = dbscan_with_runtime(&scaled, &params, runtime);
                multivariate_flagged = result
                    .noise_indices()
                    .into_iter()
                    .map(|i| rows[i])
                    .collect();
                flagged.extend(multivariate_flagged.iter().copied());
                dbscan_params = Some(params);
            }
        }
    }

    let removed_rows: Vec<usize> = flagged.into_iter().collect();
    let mask: Vec<bool> = (0..dataset.n_rows())
        .map(|r| removed_rows.binary_search(&r).is_err())
        .collect();
    let kept_rows: Vec<usize> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &keep)| keep.then_some(i))
        .collect();
    let dataset = dataset.filter_mask(&mask)?;
    if dataset.is_empty() {
        return Err(IndiceError::EmptyCollection("outlier removal"));
    }
    Ok(PreprocessOutput {
        dataset,
        kept_rows,
        cleaning,
        univariate_flagged,
        multivariate_flagged,
        dbscan_params,
        removed_rows,
    })
}

/// The §2.1.1 geospatial-cleaning pass, applied in place.
fn clean_geospatial(
    dataset: &mut Dataset,
    street_map: &StreetMap,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<CleaningReport, IndiceError> {
    let schema = dataset.schema_arc();
    let addr_id = schema.require(wk::ADDRESS)?;
    let hn_id = schema.require(wk::HOUSE_NUMBER)?;
    let zip_id = schema.require(wk::ZIP_CODE)?;
    let lat_id = schema.require(wk::LATITUDE)?;
    let lon_id = schema.require(wk::LONGITUDE)?;
    let district_id = schema.require(wk::DISTRICT)?;
    let neigh_id = schema.require(wk::NEIGHBOURHOOD)?;

    let queries: Vec<AddressQuery> = (0..dataset.n_rows())
        .map(|row| {
            let street = dataset.cat(row, addr_id).unwrap_or("").to_owned();
            let house = dataset.cat(row, hn_id).map(str::to_owned);
            let zip = dataset.cat(row, zip_id).map(str::to_owned);
            let point = match (dataset.num(row, lat_id), dataset.num(row, lon_id)) {
                (Some(lat), Some(lon)) => Some(GeoPoint { lat, lon }),
                _ => None,
            };
            AddressQuery {
                id: row,
                address: Address {
                    street,
                    house_number: house,
                    zip,
                },
                point,
            }
        })
        .collect();

    // The geocoder fallback: more tolerant than the local φ match, but
    // quota-limited (§2.1.1). Ground truth is the referenced map itself —
    // what a production geocoder effectively holds.
    let geocoder = QuotaGeocoder::new(
        SimulatedGeocoder::new(street_map.clone(), 0.55, 0.02),
        config.geocoder_quota,
    );
    let geocoder_ref: Option<&dyn epc_geo::geocode::Geocoder> = if config.geocoder_quota > 0 {
        Some(&geocoder)
    } else {
        None
    };
    let (cleaned, report) = epc_geo::cleaning::clean_addresses_with_runtime(
        &queries,
        street_map,
        geocoder_ref,
        &config.cleaning,
        runtime,
    );

    for c in cleaned {
        let row = c.id;
        if matches!(c.outcome, epc_geo::cleaning::CleaningOutcome::Unresolved) {
            continue;
        }
        dataset.set_value(row, addr_id, Value::cat(c.address.street.clone()))?;
        if let Some(hn) = &c.address.house_number {
            dataset.set_value(row, hn_id, Value::cat(hn.clone()))?;
        }
        if let Some(zip) = &c.address.zip {
            dataset.set_value(row, zip_id, Value::cat(zip.clone()))?;
        }
        if let Some(p) = c.point {
            dataset.set_value(row, lat_id, Value::num(p.lat))?;
            dataset.set_value(row, lon_id, Value::num(p.lon))?;
        }
        if let Some(d) = &c.district {
            dataset.set_value(row, district_id, Value::cat(d.clone()))?;
        }
        if let Some(n) = &c.neighbourhood {
            dataset.set_value(row, neigh_id, Value::cat(n.clone()))?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};
    use epc_synth::noise::{apply_noise, NoiseConfig};

    fn collection(noise: bool) -> epc_synth::epcgen::SyntheticCollection {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 600,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        if noise {
            apply_noise(&mut c, &NoiseConfig::default());
        }
        c
    }

    #[test]
    fn clean_collection_loses_almost_nothing() {
        let c = collection(false);
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        assert_eq!(out.cleaning.unresolved, 0, "all addresses are canonical");
        // Only statistical false positives may be removed (MAD tails and
        // DBSCAN low-density points) — keep them under ~12%.
        assert!(
            out.removed_rows.len() < 72,
            "removed {} of 600",
            out.removed_rows.len()
        );
        assert_eq!(out.kept_rows.len(), out.dataset.n_rows());
    }

    #[test]
    fn noisy_addresses_are_repaired() {
        let c = collection(true);
        let before_truth = c.truth.clone();
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        // Most corrupted addresses must be resolved (reference or geocoder).
        let resolved = out.cleaning.by_reference + out.cleaning.by_geocoder;
        assert!(
            resolved as f64 >= 0.95 * out.cleaning.total as f64,
            "resolved {resolved}/{}",
            out.cleaning.total
        );
        // Spot-check street restoration against ground truth.
        let s = out.dataset.schema();
        let addr_id = s.require(wk::ADDRESS).unwrap();
        let mut correct = 0;
        let mut checked = 0;
        for (new_row, &orig_row) in out.kept_rows.iter().enumerate() {
            checked += 1;
            if out.dataset.cat(new_row, addr_id) == Some(before_truth.streets[orig_row].as_str()) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 > 0.9 * checked as f64,
            "street accuracy {correct}/{checked}"
        );
    }

    #[test]
    fn injected_outliers_are_mostly_removed() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                univariate_outlier_rate: 0.03,
                ..NoiseConfig::none()
            },
        );
        let injected: BTreeSet<usize> = c.truth.injected_outliers.iter().copied().collect();
        assert!(!injected.is_empty());
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        let removed: BTreeSet<usize> = out.removed_rows.iter().copied().collect();
        let caught = injected.intersection(&removed).count();
        // Injected univariate outliers target Uw/Uo/EPH; the default
        // config watches Uw/Uo (not EPH), so expect to catch most of ~2/3.
        assert!(
            caught as f64 >= 0.5 * injected.len() as f64,
            "caught {caught}/{}",
            injected.len()
        );
    }

    #[test]
    fn zero_quota_disables_geocoder() {
        let mut c = collection(false);
        apply_noise(
            &mut c,
            &NoiseConfig {
                typo_rate: 0.5,
                ..NoiseConfig::none()
            },
        );
        let cfg = IndiceConfig {
            geocoder_quota: 0,
            ..IndiceConfig::default()
        };
        let out = preprocess(c.dataset.clone(), &c.city.street_map, &cfg).unwrap();
        assert_eq!(out.cleaning.by_geocoder, 0);
        assert_eq!(out.cleaning.geocoder_requests, 0);
    }

    #[test]
    fn multivariate_can_be_disabled() {
        let c = collection(false);
        let cfg = IndiceConfig {
            outliers: crate::config::OutlierConfig {
                multivariate: false,
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        let out = preprocess(c.dataset.clone(), &c.city.street_map, &cfg).unwrap();
        assert!(out.multivariate_flagged.is_empty());
        assert!(out.dbscan_params.is_none());
    }

    #[test]
    fn empty_dataset_errors() {
        let c = collection(false);
        let empty = Dataset::new(c.dataset.schema_arc());
        let err = preprocess(empty, &c.city.street_map, &IndiceConfig::default()).unwrap_err();
        assert_eq!(err, IndiceError::EmptyCollection("preprocess"));
    }

    #[test]
    fn report_indices_are_within_input_bounds() {
        let mut c = collection(true);
        apply_noise(&mut c, &NoiseConfig::default());
        let n = c.dataset.n_rows();
        let out = preprocess(
            c.dataset.clone(),
            &c.city.street_map,
            &IndiceConfig::default(),
        )
        .unwrap();
        for &r in &out.removed_rows {
            assert!(r < n);
        }
        for rows in out.univariate_flagged.values() {
            for &r in rows {
                assert!(r < n);
            }
        }
        assert_eq!(out.kept_rows.len() + out.removed_rows.len(), n);
    }
}
