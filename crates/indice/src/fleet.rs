//! Multi-city fleet runs: the EPC pipeline behind an [`epc_coord`]
//! shard coordinator.
//!
//! One fleet run expands an [`epc_synth::FleetConfig`] into N per-city
//! collections and runs each city's full durable pipeline as a supervised
//! shard under `<fleet dir>/cities/<city id>/`. Shard attempts always
//! start *fresh* (the city directory is wiped first): per-city resume
//! would leave resume counters in the shard metrics and break the
//! byte-equality between interrupted and uninterrupted fleets — fleet
//! crash safety comes from the fleet journal, not from per-city resume.
//!
//! After the coordinator returns, the per-city `epc-obs` metric
//! registries are merged from disk with the conservation-tested
//! [`MetricsRegistry::merge`] into `fleet.metrics.json`, and a cross-city
//! comparison dashboard is rendered to `fleet_dashboard.html` — abandoned
//! cities appear as explicit "unavailable" panels, mirroring the
//! analytics degradation pattern of single-city dashboards.

use crate::config::IndiceConfig;
use crate::durable::DurableOptions;
use crate::engine::Indice;
use crate::error::IndiceError;
use crate::pipeline::RunOutcome;
use epc_coord::{
    CoordCrash, CoordError, FleetOptions, FleetResult, RetryPolicy, ShardAttempt, ShardReport,
    ShardRunner, ShardStatus,
};
use epc_faults::FleetFaults;
use epc_journal::{hash_hex, write_atomic, ArtifactRecord};
use epc_obs::{Histogram, MetricsRegistry, MetricsSnapshot, Obs};
use epc_query::stakeholder::Stakeholder;
use epc_runtime::{Clock, RuntimeConfig};
use epc_synth::noise::{apply_noise, NoiseConfig};
use epc_synth::{CitySpec, EpcGenerator, FleetConfig};
use serde::Deserialize;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Subdirectory of the fleet directory holding per-city run directories.
pub const CITIES_DIR: &str = "cities";

/// Merged cross-city metrics artifact at the fleet-directory root.
pub const FLEET_METRICS_FILE: &str = "fleet.metrics.json";

/// Cross-city comparison dashboard at the fleet-directory root.
pub const FLEET_DASHBOARD_FILE: &str = "fleet_dashboard.html";

/// Per-city metrics snapshot inside each committed city directory.
pub const CITY_METRICS_FILE: &str = "metrics.json";

/// How a fleet run executes.
pub struct FleetRunOptions<'a> {
    /// Fleet run directory (fleet journal, merged artifacts, and the
    /// per-city subdirectories live here).
    pub dir: PathBuf,
    /// Resume from the fleet journal instead of starting fresh.
    pub resume: bool,
    /// The fleet plan (cities, sizes, seeds).
    pub fleet: FleetConfig,
    /// Stakeholder every shard runs for.
    pub stakeholder: Stakeholder,
    /// Retry budget and deterministic backoff schedule.
    pub policy: RetryPolicy,
    /// Abandoned-city tolerance before the fleet fails outright.
    pub max_failed: Option<usize>,
    /// Per-city fault plan (chaos testing).
    pub faults: Option<&'a FleetFaults>,
    /// Injected coordinator crash point (chaos testing).
    pub crash: Option<CoordCrash>,
    /// Clock for shard observability (tests pass a manual clock).
    pub clock: &'a dyn Clock,
    /// Intra-shard thread budget; fleet outputs are bitwise invariant to
    /// it.
    pub runtime: RuntimeConfig,
}

impl<'a> FleetRunOptions<'a> {
    /// Fresh-run options with default policy, no faults, no tolerance
    /// limit.
    pub fn new(dir: impl Into<PathBuf>, fleet: FleetConfig, clock: &'a dyn Clock) -> Self {
        FleetRunOptions {
            dir: dir.into(),
            resume: false,
            fleet,
            stakeholder: Stakeholder::PublicAdministration,
            policy: RetryPolicy::default(),
            max_failed: None,
            faults: None,
            crash: None,
            clock,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// The result of a fleet run.
#[derive(Debug)]
pub struct FleetRunOutput {
    /// Coordinator result: outcome ladder, per-city reports, journal
    /// hit/replay sets.
    pub result: FleetResult,
    /// The merged cross-city metrics (also written to
    /// [`FLEET_METRICS_FILE`]).
    pub metrics: MetricsSnapshot,
}

/// Fingerprint of the effective fleet computation: plan, stakeholder,
/// retry policy, and fault plan — anything that changes shard outputs.
/// Deliberately excludes the thread budget and the abandoned-city
/// tolerance (neither changes a committed shard's bytes).
fn fleet_fingerprint(opts: &FleetRunOptions<'_>) -> String {
    let faults = opts
        .faults
        .map(|f| format!("{f:?}"))
        .unwrap_or_else(|| "none".to_owned());
    let text = format!(
        "{:?}|{:?}|{:?}|{faults}",
        opts.stakeholder, opts.fleet, opts.policy
    );
    hash_hex(text.as_bytes())
}

fn dur_io(what: String, e: std::io::Error) -> IndiceError {
    IndiceError::Durability(format!("{what}: {e}"))
}

/// Hashes an existing file under the fleet directory into an
/// [`ArtifactRecord`] (path kept relative to the fleet directory).
/// Missing files yield `None` — a degraded shard may not have rendered a
/// dashboard.
fn record_existing(fleet_dir: &Path, rel: &str) -> Result<Option<ArtifactRecord>, CoordError> {
    match fs::read(fleet_dir.join(rel)) {
        Ok(bytes) => Ok(Some(ArtifactRecord {
            file: rel.to_owned(),
            sha256: hash_hex(&bytes),
            bytes: bytes.len() as u64,
        })),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(CoordError::Io(format!("hashing shard artifact {rel}: {e}"))),
    }
}

/// Runs one city's full pipeline as a coordinator shard.
struct PipelineShardRunner<'a> {
    opts: &'a FleetRunOptions<'a>,
    specs: BTreeMap<String, CitySpec>,
}

impl ShardRunner for PipelineShardRunner<'_> {
    fn run_attempt(&self, city: &str, attempt: u32) -> Result<ShardAttempt, CoordError> {
        let Some(spec) = self.specs.get(city) else {
            return Err(CoordError::Io(format!("no spec for city '{city}'")));
        };
        let city_rel = format!("{CITIES_DIR}/{city}");
        let city_dir = self.opts.dir.join(&city_rel);
        // Always start fresh: a half-written attempt must not leak state
        // (or resume counters) into this one.
        if city_dir.exists() {
            fs::remove_dir_all(&city_dir).map_err(|e| {
                CoordError::Io(format!(
                    "wiping shard directory {}: {e}",
                    city_dir.display()
                ))
            })?;
        }

        let mut collection = EpcGenerator::new(spec.synth.clone()).generate();
        apply_noise(&mut collection, &NoiseConfig::default());
        let n_input = collection.dataset.n_rows();
        let engine = Indice::from_collection(collection, IndiceConfig::default())
            .with_runtime(self.opts.runtime);

        let obs = Obs::new(self.opts.clock);
        let injector = self
            .opts
            .faults
            .map(|faults| faults.injector_for(city, attempt));
        let mut dopts = DurableOptions::new(&city_dir).with_obs(&obs);
        if let Some(injector) = &injector {
            dopts = dopts.with_injector(injector);
        }
        let output = match engine.run_durable(self.opts.stakeholder, &dopts) {
            Ok(output) => output,
            // Shard-level durability errors are retriable failures, not
            // coordinator crashes.
            Err(e) => {
                return Ok(ShardAttempt::Failed {
                    reason: e.to_string(),
                })
            }
        };

        let (degraded, reasons) = match &output.outcome {
            RunOutcome::Complete => (false, Vec::new()),
            RunOutcome::Degraded(reasons) => (true, reasons.clone()),
            RunOutcome::Failed(e) => {
                return Ok(ShardAttempt::Failed {
                    reason: e.to_string(),
                })
            }
        };

        let mut summary = BTreeMap::new();
        summary.insert("city".to_owned(), spec.synth.city.name.clone());
        summary.insert("records".to_owned(), n_input.to_string());
        let kept = output
            .preprocess
            .as_ref()
            .map(|p| p.dataset.n_rows())
            .unwrap_or(0);
        summary.insert("kept".to_owned(), kept.to_string());
        summary.insert(
            "chosen_k".to_owned(),
            output
                .analytics
                .as_ref()
                .map(|a| a.chosen_k.to_string())
                .unwrap_or_else(|| "-".to_owned()),
        );
        summary.insert(
            "rules".to_owned(),
            output
                .analytics
                .as_ref()
                .map(|a| a.rules.len().to_string())
                .unwrap_or_else(|| "-".to_owned()),
        );
        summary.insert(
            "quarantined".to_owned(),
            output.quarantine.len().to_string(),
        );
        summary.insert("outcome".to_owned(), output.outcome.to_string());

        // Commit artifacts the fleet journal will verify on resume: the
        // shard's metrics snapshot, its run journal, and its dashboard.
        let metrics_rec = write_atomic(
            &city_dir,
            CITY_METRICS_FILE,
            obs.metrics().to_json().as_bytes(),
        )
        .map_err(|e| CoordError::Io(format!("writing shard metrics for {city}: {e}")))?;
        let mut checkpoints = vec![ArtifactRecord {
            file: format!("{city_rel}/{CITY_METRICS_FILE}"),
            ..metrics_rec
        }];
        for rel in [
            format!("{city_rel}/{}", epc_journal::MANIFEST_FILE),
            format!("{city_rel}/{}", crate::durable::DASHBOARD_FILE),
        ] {
            if let Some(rec) = record_existing(&self.opts.dir, &rel)? {
                checkpoints.push(rec);
            }
        }

        Ok(ShardAttempt::Committed {
            degraded,
            reasons,
            summary,
            checkpoints,
        })
    }
}

/// JSON shape of [`MetricsRegistry::to_json`], for reading shard
/// snapshots back off disk.
#[derive(Deserialize)]
struct MetricsJson {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramJson>,
}

#[derive(Deserialize)]
struct HistogramJson {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

fn parse_metrics(text: &str, what: &str) -> Result<MetricsSnapshot, IndiceError> {
    let raw: MetricsJson = serde_json::from_str(text)
        .map_err(|e| IndiceError::Durability(format!("parsing {what}: {e}")))?;
    let mut histograms = BTreeMap::new();
    for (name, h) in raw.histograms {
        let hist = Histogram::from_parts(h.bounds, h.counts, h.sum, h.count).ok_or_else(|| {
            IndiceError::Durability(format!("inconsistent histogram '{name}' in {what}"))
        })?;
        histograms.insert(name, hist);
    }
    Ok(MetricsSnapshot {
        counters: raw.counters,
        gauges: raw.gauges,
        histograms,
    })
}

/// Merges every committed shard's on-disk metrics (journal hits and
/// replays read the same bytes, so resumed fleets merge identically) and
/// layers the fleet-level counters derived from the final reports on top.
fn merge_fleet_metrics(
    fleet_dir: &Path,
    shards: &[ShardReport],
) -> Result<MetricsSnapshot, IndiceError> {
    let registry = MetricsRegistry::new();
    let mut committed = 0u64;
    let mut abandoned = 0u64;
    let mut retries = 0u64;
    for shard in shards {
        retries += u64::from(shard.attempts.saturating_sub(1));
        match &shard.status {
            ShardStatus::Committed => {
                committed += 1;
                let rel = format!("{CITIES_DIR}/{}/{CITY_METRICS_FILE}", shard.city);
                let text = fs::read_to_string(fleet_dir.join(&rel))
                    .map_err(|e| dur_io(format!("reading shard metrics {rel}"), e))?;
                registry.merge(&parse_metrics(&text, &rel)?);
            }
            ShardStatus::Abandoned { .. } => abandoned += 1,
        }
    }
    registry.inc("fleet_cities_total", shards.len() as u64);
    registry.inc("fleet_cities_committed", committed);
    registry.inc("fleet_cities_abandoned", abandoned);
    registry.inc("fleet_retries_total", retries);
    Ok(registry.snapshot())
}

fn html_escape(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the cross-city comparison dashboard as a pure function of the
/// shard reports — committed cities get a summary panel, abandoned cities
/// an explicit "unavailable" panel with the final failure reason.
fn render_fleet_dashboard(shards: &[ShardReport], outcome_line: &str) -> String {
    let mut panels = String::new();
    for shard in shards {
        let title = shard
            .summary
            .get("city")
            .cloned()
            .unwrap_or_else(|| shard.city.clone());
        match &shard.status {
            ShardStatus::Committed => {
                let mut rows = String::new();
                for (key, value) in &shard.summary {
                    if key == "city" {
                        continue;
                    }
                    rows.push_str(&format!(
                        "<tr><th>{}</th><td>{}</td></tr>",
                        html_escape(key),
                        html_escape(value)
                    ));
                }
                rows.push_str(&format!(
                    "<tr><th>attempts</th><td>{}</td></tr>",
                    shard.attempts
                ));
                let badge = if shard.degraded {
                    " <span class=\"badge degraded\">degraded</span>"
                } else {
                    ""
                };
                panels.push_str(&format!(
                    "<section class=\"city\" id=\"{id}\"><h2>{title}{badge}</h2>\
                     <table>{rows}</table></section>\n",
                    id = html_escape(&shard.city),
                    title = html_escape(&title),
                ));
            }
            ShardStatus::Abandoned { reason } => {
                panels.push_str(&format!(
                    "<section class=\"city unavailable\" id=\"{id}\"><h2>{title}</h2>\
                     <p class=\"reason\">city unavailable after {attempts} attempt(s): {reason}</p>\
                     </section>\n",
                    id = html_escape(&shard.city),
                    title = html_escape(&title),
                    attempts = shard.attempts,
                    reason = html_escape(reason),
                ));
            }
        }
    }
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>INDICE fleet dashboard</title>\n<style>\n\
         body {{ font-family: sans-serif; margin: 2rem; }}\n\
         section.city {{ border: 1px solid #ccc; border-radius: 6px; \
         padding: 1rem; margin-bottom: 1rem; }}\n\
         section.unavailable {{ border-color: #c00; background: #fff4f4; }}\n\
         .badge.degraded {{ color: #a60; font-size: 0.8em; }}\n\
         th {{ text-align: left; padding-right: 1rem; }}\n\
         </style></head><body>\n<h1>INDICE fleet dashboard</h1>\n\
         <p class=\"outcome\">{outcome}</p>\n{panels}</body></html>\n",
        outcome = html_escape(outcome_line),
        panels = panels,
    )
}

/// Runs a multi-city fleet: expands the plan, shards each city through
/// the supervised durable pipeline under the [`epc_coord`] coordinator,
/// merges metrics, and renders the cross-city dashboard. `Err` is
/// reserved for fleet-level I/O failures and injected coordinator crash
/// points; per-city failures degrade the [`epc_coord::FleetOutcome`]
/// inside the output.
pub fn run_fleet(opts: &FleetRunOptions<'_>) -> Result<FleetRunOutput, IndiceError> {
    let specs = opts.fleet.cities();
    let cities: Vec<String> = specs.iter().map(|s| s.id.clone()).collect();
    let specs: BTreeMap<String, CitySpec> = specs.into_iter().map(|s| (s.id.clone(), s)).collect();

    let coord_opts = FleetOptions {
        dir: opts.dir.clone(),
        resume: opts.resume,
        policy: opts.policy.clone(),
        fingerprint: fleet_fingerprint(opts),
        max_failed: opts.max_failed,
        crash: opts.crash,
    };
    let runner = PipelineShardRunner { opts, specs };
    let result = epc_coord::run_fleet(&cities, &coord_opts, &runner).map_err(|e| match e {
        CoordError::Io(msg) => IndiceError::Durability(msg),
        CoordError::CrashInjected { at } => IndiceError::CrashInjected {
            stage: "fleet".to_owned(),
            point: at,
        },
    })?;

    let metrics = merge_fleet_metrics(&opts.dir, &result.shards)?;
    let registry = MetricsRegistry::new();
    registry.merge(&metrics);
    write_atomic(&opts.dir, FLEET_METRICS_FILE, registry.to_json().as_bytes())
        .map_err(|e| dur_io(format!("writing {FLEET_METRICS_FILE}"), e))?;

    let outcome_line = match &result.outcome {
        epc_coord::FleetOutcome::Complete => {
            format!("complete: all {} cities committed", result.shards.len())
        }
        epc_coord::FleetOutcome::Degraded { failed_cities, .. } => format!(
            "degraded: {} of {} cities unavailable ({})",
            failed_cities.len(),
            result.shards.len(),
            failed_cities.join(", ")
        ),
        epc_coord::FleetOutcome::Failed(reason) => format!("failed: {reason}"),
    };
    let html = render_fleet_dashboard(&result.shards, &outcome_line);
    write_atomic(&opts.dir, FLEET_DASHBOARD_FILE, html.as_bytes())
        .map_err(|e| dur_io(format!("writing {FLEET_DASHBOARD_FILE}"), e))?;

    Ok(FleetRunOutput { result, metrics })
}
