//! Stage 2 — data selection and analytics (§2.2): correlation screening,
//! K-means clustering with automatic K selection, discretization, and
//! association-rule mining.

use crate::config::{footnote4_discretizers, IndiceConfig, KSelection};
use crate::error::IndiceError;
use epc_mining::apriori::TransactionSet;
use epc_mining::cart::RegressionTree;
use epc_mining::discretize::Discretizer;
use epc_mining::elbow::{elbow_k_by_distance, sse_curve_with_runtime};
use epc_mining::kmeans::{KMeans, KMeansConfig, KMeansModel};
use epc_mining::matrix::Matrix;
use epc_mining::normalize::MinMaxScaler;
use epc_mining::rules::{mine_rules, mine_rules_traced_with_runtime, AssociationRule};
use epc_model::Dataset;
use epc_obs::Obs;
use epc_stats::correlation::{correlation_matrix, CorrelationMatrix};
use epc_stats::quantile::quantile;

/// Interpretable description of one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Cluster index.
    pub cluster: usize,
    /// Number of certificates.
    pub size: usize,
    /// Centroid in *original* attribute units, aligned with
    /// [`AnalyticsOutput::feature_names`].
    pub centroid: Vec<f64>,
    /// Mean of the response variable over the cluster's members.
    pub mean_response: Option<f64>,
}

/// Result of the analytics stage.
#[derive(Debug, Clone)]
pub struct AnalyticsOutput {
    /// Names of the clustering features (the case-study five by default).
    pub feature_names: Vec<String>,
    /// Pairwise Pearson correlations of the features (Figure 3).
    pub correlation: CorrelationMatrix,
    /// The eligibility verdict: no |ρ| above the configured threshold.
    pub eligible: bool,
    /// The `(k, SSE)` curve (empty when K was fixed).
    pub sse_curve: Vec<(usize, f64)>,
    /// The K actually used.
    pub chosen_k: usize,
    /// The fitted K-means model (over min-max-scaled features).
    pub kmeans: KMeansModel,
    /// For each clustered point, the dataset row it came from.
    pub feature_rows: Vec<usize>,
    /// Per-cluster interpretable summaries.
    pub cluster_summaries: Vec<ClusterSummary>,
    /// The feature discretizers used for rule mining (footnote 4 + CART).
    pub discretizers: Vec<Discretizer>,
    /// The response discretizer (quantile bins).
    pub response_discretizer: Discretizer,
    /// The mined association rules, best first.
    pub rules: Vec<AssociationRule>,
}

impl AnalyticsOutput {
    /// The cluster index of a dataset row, if the row was clustered.
    pub fn cluster_of_row(&self, dataset_row: usize) -> Option<usize> {
        self.feature_rows
            .iter()
            .position(|&r| r == dataset_row)
            .map(|i| self.kmeans.assignments[i])
    }
}

/// Runs the analytics stage over a (cleaned) dataset.
pub fn analyze(dataset: &Dataset, config: &IndiceConfig) -> Result<AnalyticsOutput, IndiceError> {
    analyze_with_runtime(dataset, config, &epc_runtime::RuntimeConfig::sequential())
}

/// [`analyze`] with an explicit execution runtime: the K-means assignment
/// loops (elbow sweep and final fit) and the Apriori support counting run
/// data-parallel under `runtime`, with outputs bitwise identical to the
/// sequential run.
pub fn analyze_with_runtime(
    dataset: &Dataset,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<AnalyticsOutput, IndiceError> {
    analyze_observed(dataset, config, runtime, None)
}

/// [`analyze_with_runtime`] with an optional observability bundle:
/// per-round K-means inertia, the elbow SSE curve, and per-level Apriori
/// candidate/pruned/frequent counts are recorded as trace points and
/// counters. The analytical output is exactly what the unobserved call
/// produces; all emission happens orchestrator-side, after the kernels
/// return.
pub fn analyze_observed(
    dataset: &Dataset,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    obs: Option<&Obs<'_>>,
) -> Result<AnalyticsOutput, IndiceError> {
    analyze_observed_from(dataset, config, runtime, obs, None)
}

/// [`analyze_observed`] with an optional K-means warm start for
/// incremental ingest: when `warm_centroids` is given *and* its shape
/// matches the chosen K (elbow sweeps stay cold — K may change as data
/// accrues), the final fit seeds Lloyd from those centroids instead of the
/// seeded k-means++ initialization.
///
/// Warm centroids live in min-max-scaled feature space; a new batch can
/// stretch the scaler's ranges, so a warm fit is ε-equivalent to the cold
/// one (same basin on stable data), not bitwise identical. Passing `None`
/// — the ingest `exact` recompute mode — reproduces [`analyze_observed`]
/// byte for byte.
pub fn analyze_observed_from(
    dataset: &Dataset,
    config: &IndiceConfig,
    runtime: &epc_runtime::RuntimeConfig,
    obs: Option<&Obs<'_>>,
    warm_centroids: Option<&Matrix>,
) -> Result<AnalyticsOutput, IndiceError> {
    let a = &config.analytics;
    if a.features.is_empty() {
        return Err(IndiceError::Config(
            "no clustering features configured".into(),
        ));
    }
    let feature_ids: Vec<_> = a
        .features
        .iter()
        .map(|f| dataset.schema().require(f))
        .collect::<Result<_, _>>()?;
    let response_id = dataset.schema().require(&a.response)?;

    // --- Correlation screening (Figure 3) ---
    let columns: Vec<Vec<f64>> = feature_ids
        .iter()
        .map(|&id| {
            dataset
                .numeric_column(id)
                .iter()
                .map(|v| v.unwrap_or(f64::NAN))
                .collect()
        })
        .collect();
    let col_refs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
    let names: Vec<&str> = a.features.iter().map(String::as_str).collect();
    let correlation = correlation_matrix(&names, &col_refs);
    let eligible = correlation.eligible_for_analytics(a.correlation_threshold);
    if let Some(obs) = obs {
        obs.point(
            "analytics:correlation",
            &[
                ("eligible", u64::from(eligible).into()),
                ("features", names.len().into()),
            ],
        );
    }

    // --- Feature matrix over complete rows ---
    // Engine dispatch: the columnar path decodes each feature column once
    // and gathers contiguously (epc_mining::columnar); rows and cell
    // values are bit-identical to the per-cell row loop.
    let (feature_rows, matrix) = match runtime.engine {
        epc_runtime::Engine::Row => {
            let mut feature_rows = Vec::new();
            let mut data = Vec::new();
            for r in 0..dataset.n_rows() {
                let vals: Option<Vec<f64>> =
                    feature_ids.iter().map(|&id| dataset.num(r, id)).collect();
                if let Some(v) = vals {
                    feature_rows.push(r);
                    data.extend(v);
                }
            }
            let n = feature_rows.len();
            (feature_rows, Matrix::from_vec(data, n, feature_ids.len()))
        }
        epc_runtime::Engine::Columnar => {
            let store = epc_columnar::DatasetColumnarExt::to_columns(dataset);
            if let Some(obs) = obs {
                crate::columnar::record_store_stats(obs, &store.stats());
            }
            epc_mining::columnar::feature_matrix(&store, &feature_ids)
        }
    };
    if feature_rows.len() < 3 {
        return Err(IndiceError::Clustering(format!(
            "only {} complete rows",
            feature_rows.len()
        )));
    }
    let (scaler, scaled) = MinMaxScaler::fit_transform(&matrix)
        .ok_or_else(|| IndiceError::Clustering("scaler fit on empty feature matrix".into()))?;

    // --- K selection + final fit (§2.2.2) ---
    let base = KMeansConfig {
        k: 0,
        init: a.init,
        seed: a.seed,
        ..KMeansConfig::default()
    };
    let (chosen_k, curve) = match a.k {
        KSelection::Fixed(k) => (k, Vec::new()),
        KSelection::Elbow { k_min, k_max } => {
            if k_min >= k_max {
                return Err(IndiceError::Config("elbow needs k_min < k_max".into()));
            }
            let curve = sse_curve_with_runtime(&scaled, k_min..=k_max, &base, runtime);
            if let Some(obs) = obs {
                for &(k, sse) in &curve {
                    obs.point("kmeans:elbow", &[("k", k.into()), ("sse", sse.into())]);
                }
            }
            // Real SSE curves are smooth and convex; the geometric elbow
            // (max distance from the endpoint chord) is the stable reading
            // of the paper's "marginal decrease maximized" criterion. The
            // ratio-based variant is kept in `epc_mining::elbow` and
            // compared in the kmeans_elbow benchmark.
            let k = elbow_k_by_distance(&curve).ok_or_else(|| {
                IndiceError::Clustering("SSE curve too short for elbow selection".into())
            })?;
            (k, curve)
        }
    };
    // Warm start only when the previous centroids still describe the same
    // problem shape: K unchanged by the sweep, feature width unchanged.
    let warm = warm_centroids
        .filter(|prev| prev.n_rows() == chosen_k && prev.n_cols() == feature_ids.len());
    let estimator = KMeans::new(KMeansConfig {
        k: chosen_k,
        ..base
    });
    let (kmeans, fit_trace) = match warm {
        Some(prev) => estimator.fit_traced_from(&scaled, prev, runtime),
        None => estimator.fit_traced(&scaled, runtime),
    }
    .ok_or_else(|| {
        IndiceError::Clustering(format!(
            "cannot fit k = {chosen_k} on {} rows",
            feature_rows.len()
        ))
    })?;
    if let Some(obs) = obs {
        if warm.is_some() {
            obs.metrics().inc("kmeans_warm_starts", 1);
        }
        for (round, &inertia) in fit_trace.round_inertia.iter().enumerate() {
            obs.point(
                "kmeans:round",
                &[("inertia", inertia.into()), ("round", round.into())],
            );
        }
        let m = obs.metrics();
        m.inc("kmeans_iterations", fit_trace.round_inertia.len() as u64);
        m.set_gauge("kmeans_chosen_k", chosen_k as i64);
    }

    // --- Cluster summaries in original units ---
    let mut response_sums = vec![(0.0f64, 0usize); chosen_k];
    for (i, &row) in feature_rows.iter().enumerate() {
        if let Some(y) = dataset.num(row, response_id) {
            let c = kmeans.assignments[i];
            response_sums[c].0 += y;
            response_sums[c].1 += 1;
        }
    }
    let sizes = kmeans.cluster_sizes();
    let cluster_summaries: Vec<ClusterSummary> = (0..chosen_k)
        .map(|c| ClusterSummary {
            cluster: c,
            size: sizes[c],
            centroid: scaler.inverse_row(kmeans.centroids.row(c)),
            mean_response: if response_sums[c].1 > 0 {
                Some(response_sums[c].0 / response_sums[c].1 as f64)
            } else {
                None
            },
        })
        .collect();

    // --- Discretization (§2.2.2 + footnote 4) ---
    let discretizers = build_discretizers(dataset, &a.features, &a.response, config)?;
    let response_discretizer =
        quantile_discretizer(dataset, &a.response, config.rule_stage.response_bins)?;

    // --- Association rules ---
    let mut transactions = TransactionSet::new();
    for &row in &feature_rows {
        let mut items: Vec<String> = Vec::with_capacity(discretizers.len() + 1);
        for d in &discretizers {
            let id = dataset.schema().require(&d.attribute)?;
            if let Some(x) = dataset.num(row, id) {
                items.push(d.item(x));
            }
        }
        if let Some(y) = dataset.num(row, response_id) {
            items.push(response_discretizer.item(y));
        }
        transactions.push_owned(&items);
    }
    let (rules, apriori_trace) =
        mine_rules_traced_with_runtime(&transactions, &config.rule_stage.rules, runtime);
    if let Some(obs) = obs {
        let m = obs.metrics();
        for level in &apriori_trace.levels {
            obs.point(
                "apriori:level",
                &[
                    ("candidates", level.candidates.into()),
                    ("frequent", level.frequent.into()),
                    ("level", level.level.into()),
                    ("pruned", level.pruned.into()),
                ],
            );
            m.inc("apriori_candidates", level.candidates as u64);
            m.inc("apriori_frequent", level.frequent as u64);
            m.inc("apriori_pruned", level.pruned as u64);
        }
        m.inc("rules_mined", rules.len() as u64);
    }

    Ok(AnalyticsOutput {
        feature_names: a.features.clone(),
        correlation,
        eligible,
        sse_curve: curve,
        chosen_k,
        kmeans,
        feature_rows,
        cluster_summaries,
        discretizers,
        response_discretizer,
        rules,
    })
}

/// Mines association rules separately per spatial region ("rules can be
/// extracted at different granularity levels, e.g., for each city,
/// neighbourhood or downstream of the clustering algorithm", §2.3).
///
/// The discretizers of a *global* analytics run are reused, so the items
/// are comparable across regions. Returns `region name → rules`, skipping
/// regions with fewer than `min_region_size` certificates (tiny regions
/// yield statistically meaningless supports).
pub fn rules_by_region(
    dataset: &Dataset,
    analytics: &AnalyticsOutput,
    config: &IndiceConfig,
    level: epc_model::Granularity,
    min_region_size: usize,
) -> Result<std::collections::BTreeMap<String, Vec<AssociationRule>>, IndiceError> {
    rules_by_region_with_runtime(
        dataset,
        analytics,
        config,
        level,
        min_region_size,
        &epc_runtime::RuntimeConfig::sequential(),
    )
}

/// [`rules_by_region`] with an explicit execution runtime: each region is
/// one coarse parallel task (regions mine independently; the output map is
/// reassembled in region-name order, so results never depend on the thread
/// budget).
pub fn rules_by_region_with_runtime(
    dataset: &Dataset,
    analytics: &AnalyticsOutput,
    config: &IndiceConfig,
    level: epc_model::Granularity,
    min_region_size: usize,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<std::collections::BTreeMap<String, Vec<AssociationRule>>, IndiceError> {
    use epc_model::wellknown as wk;
    let region_attr = match level {
        epc_model::Granularity::District => wk::DISTRICT,
        epc_model::Granularity::Neighbourhood => wk::NEIGHBOURHOOD,
        epc_model::Granularity::City => wk::CITY,
        epc_model::Granularity::HousingUnit => {
            return Err(IndiceError::Config(
                "rules per housing unit are meaningless (one transaction each)".into(),
            ))
        }
    };
    let region_id = dataset.schema().require(region_attr)?;
    let response_id = dataset.schema().require(&config.analytics.response)?;

    // Group rows per region label.
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for r in 0..dataset.n_rows() {
        if let Some(label) = dataset.cat(r, region_id) {
            groups.entry(label.to_owned()).or_default().push(r);
        }
    }

    // Resolve the discretizer attribute ids up front so the parallel tasks
    // are infallible.
    let mut discretizer_ids = Vec::with_capacity(analytics.discretizers.len());
    for d in &analytics.discretizers {
        discretizer_ids.push(dataset.schema().require(&d.attribute)?);
    }

    // One region per coarse task: regions are few but each mines a full
    // Apriori lattice. BTreeMap iteration is name-ordered, so the task
    // list — and the reassembled map — is deterministic.
    let tasks: Vec<(&String, &Vec<usize>)> = groups
        .iter()
        .filter(|(_, rows)| rows.len() >= min_region_size)
        .collect();
    let mined: Vec<Vec<AssociationRule>> =
        epc_runtime::par_map_coarse(runtime, &tasks, |(_, rows)| {
            let mut transactions = TransactionSet::new();
            for &row in rows.iter() {
                let mut items: Vec<String> = Vec::new();
                for (d, &id) in analytics.discretizers.iter().zip(&discretizer_ids) {
                    if let Some(x) = dataset.num(row, id) {
                        items.push(d.item(x));
                    }
                }
                if let Some(y) = dataset.num(row, response_id) {
                    items.push(analytics.response_discretizer.item(y));
                }
                transactions.push_owned(&items);
            }
            mine_rules(&transactions, &config.rule_stage.rules)
        });

    Ok(tasks
        .into_iter()
        .map(|(region, _)| region.clone())
        .zip(mined)
        .collect())
}

/// Builds one discretizer per feature: the paper's fixed footnote-4 bins
/// where given, CART splits against the response elsewhere.
fn build_discretizers(
    dataset: &Dataset,
    features: &[String],
    response: &str,
    config: &IndiceConfig,
) -> Result<Vec<Discretizer>, IndiceError> {
    let fixed = footnote4_discretizers();
    let response_id = dataset.schema().require(response)?;
    let mut out = Vec::with_capacity(features.len());
    for f in features {
        if let Some(d) = fixed.iter().find(|d| &d.attribute == f) {
            out.push(d.clone());
            continue;
        }
        // CART discretization against the response (§2.2.2).
        let fid = dataset.schema().require(f)?;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for r in 0..dataset.n_rows() {
            if let (Some(x), Some(y)) = (dataset.num(r, fid), dataset.num(r, response_id)) {
                xs.push(x);
                ys.push(y);
            }
        }
        let d = RegressionTree::fit(&xs, &ys, &config.rule_stage.cart)
            .and_then(|t| Discretizer::with_auto_labels(f, t.split_thresholds()))
            // A single catch-all bin (no thresholds) is always constructible.
            .or_else(|| Discretizer::with_auto_labels(f, vec![]))
            .ok_or_else(|| IndiceError::Internal(format!("cannot build discretizer for {f}")))?;
        out.push(d);
    }
    Ok(out)
}

/// Quantile-based discretizer for the response variable (`n_bins` equal-
/// frequency bins; falls back to fewer bins on ties).
fn quantile_discretizer(
    dataset: &Dataset,
    response: &str,
    n_bins: usize,
) -> Result<Discretizer, IndiceError> {
    let id = dataset.schema().require(response)?;
    let values = dataset.numeric_values(id);
    let mut edges = Vec::new();
    if n_bins >= 2 && !values.is_empty() {
        for i in 1..n_bins {
            if let Some(q) = quantile(&values, i as f64 / n_bins as f64) {
                edges.push(q);
            }
        }
        edges.dedup_by(|a, b| a == b);
        // Strictly increasing required.
        edges.retain({
            let mut prev = f64::NEG_INFINITY;
            move |e| {
                let keep = *e > prev;
                if keep {
                    prev = *e;
                }
                keep
            }
        });
    }
    Discretizer::with_auto_labels(response, edges)
        .ok_or_else(|| IndiceError::Config("response discretization failed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::wellknown as wk;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};

    fn dataset() -> Dataset {
        EpcGenerator::new(SynthConfig {
            n_records: 1_200,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate()
        .dataset
    }

    #[test]
    fn full_analytics_run_produces_everything() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        assert_eq!(out.feature_names.len(), 5);
        assert_eq!(out.correlation.len(), 5);
        assert!(out.chosen_k >= 2 && out.chosen_k <= 10);
        assert_eq!(out.kmeans.k(), out.chosen_k);
        assert_eq!(
            out.feature_rows.len(),
            ds.n_rows(),
            "clean data: all rows cluster"
        );
        assert_eq!(out.cluster_summaries.len(), out.chosen_k);
        assert!(!out.rules.is_empty(), "synthetic data must yield rules");
        assert!(!out.sse_curve.is_empty());
    }

    #[test]
    fn case_study_features_are_weakly_correlated() {
        // The paper's Figure 3 message: the five features show no evident
        // linear correlation, so they are eligible for clustering.
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        assert!(out.eligible, "correlations: {:?}", out.correlation.values);
        let (_, _, max_rho) = out.correlation.max_abs_off_diagonal().unwrap();
        assert!(max_rho.abs() < 0.8, "max |rho| = {max_rho}");
    }

    #[test]
    fn cluster_summaries_are_in_original_units() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        // Centroids must live in the attribute ranges (Uw is feature 2).
        for s in &out.cluster_summaries {
            let uw = s.centroid[2];
            assert!((1.1..=5.5).contains(&uw), "Uw centroid {uw}");
            let eta = s.centroid[4];
            assert!((0.2..=1.1).contains(&eta), "ETAH centroid {eta}");
            assert!(s.size > 0);
            assert!(s.mean_response.unwrap() > 0.0);
        }
        let total: usize = out.cluster_summaries.iter().map(|s| s.size).sum();
        assert_eq!(total, out.feature_rows.len());
    }

    #[test]
    fn clusters_separate_energy_performance() {
        // The whole point of the case study: clusters differ in EPH.
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let mut means: Vec<f64> = out
            .cluster_summaries
            .iter()
            .filter_map(|s| s.mean_response)
            .collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            means.last().unwrap() > &(means.first().unwrap() * 1.5),
            "cluster EPH means too similar: {means:?}"
        );
    }

    #[test]
    fn rules_connect_thermal_quality_to_consumption() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        // Expect at least one rule linking a footnote-4 item to an EPH bin.
        let found = out.rules.iter().any(|r| {
            let mentions_feature = r.antecedent.iter().any(|i| {
                i.starts_with("u_windows=") || i.starts_with("u_opaque=") || i.starts_with("eta_h=")
            });
            let mentions_response = r.consequent.iter().any(|i| i.starts_with("eph="));
            mentions_feature && mentions_response
        });
        assert!(found, "no thermal→EPH rule among {} rules", out.rules.len());
    }

    #[test]
    fn fixed_k_skips_the_sweep() {
        let ds = dataset();
        let cfg = IndiceConfig {
            analytics: crate::config::AnalyticsConfig {
                k: KSelection::Fixed(4),
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        let out = analyze(&ds, &cfg).unwrap();
        assert_eq!(out.chosen_k, 4);
        assert!(out.sse_curve.is_empty());
    }

    #[test]
    fn cluster_of_row_round_trips() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let row = out.feature_rows[10];
        let c = out.cluster_of_row(row).unwrap();
        assert_eq!(c, out.kmeans.assignments[10]);
        assert_eq!(out.cluster_of_row(usize::MAX), None);
    }

    #[test]
    fn response_discretizer_has_requested_bins() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        assert_eq!(out.response_discretizer.n_bins(), 3);
        assert_eq!(out.response_discretizer.attribute, wk::EPH);
    }

    #[test]
    fn bad_configs_error_cleanly() {
        let ds = dataset();
        let cfg = IndiceConfig {
            analytics: crate::config::AnalyticsConfig {
                features: vec![],
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        assert!(matches!(analyze(&ds, &cfg), Err(IndiceError::Config(_))));

        let cfg = IndiceConfig {
            analytics: crate::config::AnalyticsConfig {
                k: KSelection::Elbow { k_min: 5, k_max: 5 },
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        assert!(matches!(analyze(&ds, &cfg), Err(IndiceError::Config(_))));

        let cfg = IndiceConfig {
            analytics: crate::config::AnalyticsConfig {
                features: vec!["ghost".into()],
                ..Default::default()
            },
            ..IndiceConfig::default()
        };
        assert!(matches!(analyze(&ds, &cfg), Err(IndiceError::Model(_))));
    }

    #[test]
    fn rules_differ_across_regions_but_share_vocabulary() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let by_district = rules_by_region(
            &ds,
            &out,
            &IndiceConfig::default(),
            epc_model::Granularity::District,
            50,
        )
        .unwrap();
        assert!(by_district.len() >= 2, "several districts expected");
        // Vocabulary is shared: every item uses the global discretizer
        // labels.
        for rules in by_district.values() {
            for r in rules {
                for item in r.antecedent.iter().chain(&r.consequent) {
                    assert!(item.contains('='), "item {item} not attr=Label");
                }
            }
        }
        // The historic centre and the modern periphery should not mine an
        // identical rule list.
        let lists: Vec<Vec<String>> = by_district
            .values()
            .map(|rs| rs.iter().map(|r| r.display()).collect())
            .collect();
        assert!(
            lists.windows(2).any(|w| w[0] != w[1]),
            "all districts produced identical rules"
        );
    }

    #[test]
    fn rules_by_region_rejects_housing_unit_level() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let err = rules_by_region(
            &ds,
            &out,
            &IndiceConfig::default(),
            epc_model::Granularity::HousingUnit,
            10,
        )
        .unwrap_err();
        assert!(matches!(err, IndiceError::Config(_)));
    }

    #[test]
    fn tiny_regions_are_skipped() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let by_district = rules_by_region(
            &ds,
            &out,
            &IndiceConfig::default(),
            epc_model::Granularity::District,
            usize::MAX,
        )
        .unwrap();
        assert!(by_district.is_empty());
    }

    #[test]
    fn warm_start_from_own_centroids_reproduces_the_cold_fit() {
        let ds = dataset();
        let cfg = IndiceConfig::default();
        let rt = epc_runtime::RuntimeConfig::sequential();
        let cold = analyze_observed(&ds, &cfg, &rt, None).unwrap();
        // Same data, warm-started from the converged centroids: Lloyd is a
        // fixed point, so the model matches the cold fit exactly.
        let warm =
            analyze_observed_from(&ds, &cfg, &rt, None, Some(&cold.kmeans.centroids)).unwrap();
        assert_eq!(warm.chosen_k, cold.chosen_k);
        assert_eq!(warm.kmeans.assignments, cold.kmeans.assignments);
        assert_eq!(warm.kmeans.centroids, cold.kmeans.centroids);
        assert_eq!(warm.kmeans.sse.to_bits(), cold.kmeans.sse.to_bits());
        assert_eq!(
            warm.kmeans.n_iter, 1,
            "converged start re-verifies in one round"
        );
        // Everything downstream of the fit is unchanged.
        assert_eq!(warm.rules.len(), cold.rules.len());
    }

    #[test]
    fn warm_start_with_mismatched_k_falls_back_to_cold() {
        let ds = dataset();
        let cfg = IndiceConfig::default();
        let rt = epc_runtime::RuntimeConfig::sequential();
        let cold = analyze_observed(&ds, &cfg, &rt, None).unwrap();
        // Previous centroids for a different K: ignored, cold init used.
        let stale = Matrix::from_vec(
            vec![0.5; (cold.chosen_k + 1) * cold.feature_names.len()],
            cold.chosen_k + 1,
            cold.feature_names.len(),
        );
        let out = analyze_observed_from(&ds, &cfg, &rt, None, Some(&stale)).unwrap();
        assert_eq!(out.kmeans.centroids, cold.kmeans.centroids);
        assert_eq!(out.kmeans.n_iter, cold.kmeans.n_iter);
    }

    #[test]
    fn footnote4_attributes_use_paper_bins() {
        let ds = dataset();
        let out = analyze(&ds, &IndiceConfig::default()).unwrap();
        let uw = out
            .discretizers
            .iter()
            .find(|d| d.attribute == wk::U_WINDOWS)
            .unwrap();
        assert_eq!(uw.edges, vec![2.05, 2.45, 3.35]);
        // Non-footnote features got CART or single-bin discretizers.
        let sr = out
            .discretizers
            .iter()
            .find(|d| d.attribute == wk::HEAT_SURFACE)
            .unwrap();
        assert!(sr.n_bins() >= 1);
    }
}
