//! The univariate outlier-detection methods of §2.1.2, unified behind one
//! enum so configurations can be stored, compared, and suggested to
//! non-expert users through the [`epc_query::ExpertConfigStore`].

use epc_stats::{boxplot, gesd, mad};

/// A univariate outlier-detection method with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum UnivariateMethod {
    /// Tukey boxplot fences with multiplier `k` (1.5 is customary).
    Boxplot {
        /// IQR multiplier.
        k: f64,
    },
    /// Generalized ESD with at most `max_outliers` outliers at significance
    /// `alpha`.
    Gesd {
        /// Upper bound on the number of outliers.
        max_outliers: usize,
        /// Significance level.
        alpha: f64,
    },
    /// MAD modified z-score with the given cut-off (3.5 in the paper).
    Mad {
        /// |modified z| threshold.
        cutoff: f64,
    },
}

// Configurations are stored in hash maps keyed by method; f64 params are
// finite by construction, so bit-pattern hashing/equality is sound here.
impl Eq for UnivariateMethod {}
impl std::hash::Hash for UnivariateMethod {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            UnivariateMethod::Boxplot { k } => {
                0u8.hash(state);
                k.to_bits().hash(state);
            }
            UnivariateMethod::Gesd {
                max_outliers,
                alpha,
            } => {
                1u8.hash(state);
                max_outliers.hash(state);
                alpha.to_bits().hash(state);
            }
            UnivariateMethod::Mad { cutoff } => {
                2u8.hash(state);
                cutoff.to_bits().hash(state);
            }
        }
    }
}

impl UnivariateMethod {
    /// The paper's defaults for each family.
    pub fn default_boxplot() -> Self {
        UnivariateMethod::Boxplot { k: 1.5 }
    }

    /// gESD with the conventional α = 0.05 and a 2% outlier budget lower
    /// bounded at 10.
    pub fn default_gesd_for(n: usize) -> Self {
        UnivariateMethod::Gesd {
            max_outliers: (n / 50).max(10),
            alpha: 0.05,
        }
    }

    /// MAD with the 3.5 cut-off of Iglewicz & Hoaglin used by the paper.
    pub fn default_mad() -> Self {
        UnivariateMethod::Mad { cutoff: 3.5 }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            UnivariateMethod::Boxplot { .. } => "boxplot",
            UnivariateMethod::Gesd { .. } => "gESD",
            UnivariateMethod::Mad { .. } => "MAD",
        }
    }

    /// Indices of outliers in `data` (positions in the slice, ascending).
    pub fn detect(&self, data: &[f64]) -> Vec<usize> {
        match self {
            UnivariateMethod::Boxplot { k } => boxplot::tukey_outliers(data, *k),
            UnivariateMethod::Gesd {
                max_outliers,
                alpha,
            } => gesd::gesd_outliers(data, *max_outliers, *alpha),
            UnivariateMethod::Mad { cutoff } => mad::mad_outliers(data, *cutoff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn spiky_data() -> Vec<f64> {
        let mut v: Vec<f64> = (0..200)
            .map(|i| 10.0 + ((i * 37) % 100) as f64 / 100.0)
            .collect();
        v[17] = 500.0;
        v[120] = -400.0;
        v
    }

    #[test]
    fn all_three_methods_find_the_spikes() {
        let data = spiky_data();
        for method in [
            UnivariateMethod::default_boxplot(),
            UnivariateMethod::default_gesd_for(data.len()),
            UnivariateMethod::default_mad(),
        ] {
            let found = method.detect(&data);
            assert!(
                found.contains(&17) && found.contains(&120),
                "{} missed spikes: {found:?}",
                method.name()
            );
        }
    }

    #[test]
    fn methods_disagree_on_borderline_data() {
        // Mildly heavy-tailed data: the strict boxplot flags more than gESD.
        let data: Vec<f64> = (0..300)
            .map(|i| {
                let u = (i as f64 + 0.5) / 300.0;
                (u / (1.0 - u)).ln() * 2.0
            })
            .collect();
        let bp = UnivariateMethod::Boxplot { k: 1.0 }.detect(&data).len();
        let ge = UnivariateMethod::default_gesd_for(data.len())
            .detect(&data)
            .len();
        assert!(bp > ge, "boxplot {bp} vs gESD {ge}");
    }

    #[test]
    fn methods_are_hashable_config_keys() {
        let mut counts: HashMap<UnivariateMethod, usize> = HashMap::new();
        *counts.entry(UnivariateMethod::default_mad()).or_insert(0) += 1;
        *counts.entry(UnivariateMethod::default_mad()).or_insert(0) += 1;
        *counts
            .entry(UnivariateMethod::Mad { cutoff: 4.0 })
            .or_insert(0) += 1;
        assert_eq!(counts[&UnivariateMethod::default_mad()], 2);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn names() {
        assert_eq!(UnivariateMethod::default_boxplot().name(), "boxplot");
        assert_eq!(UnivariateMethod::default_gesd_for(100).name(), "gESD");
        assert_eq!(UnivariateMethod::default_mad().name(), "MAD");
    }

    #[test]
    fn gesd_budget_scales_with_n() {
        match UnivariateMethod::default_gesd_for(25_000) {
            UnivariateMethod::Gesd { max_outliers, .. } => assert_eq!(max_outliers, 500),
            _ => unreachable!(),
        }
        match UnivariateMethod::default_gesd_for(100) {
            UnivariateMethod::Gesd { max_outliers, .. } => assert_eq!(max_outliers, 10),
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_data_is_safe() {
        for method in [
            UnivariateMethod::default_boxplot(),
            UnivariateMethod::default_gesd_for(0),
            UnivariateMethod::default_mad(),
        ] {
            assert!(method.detect(&[]).is_empty());
        }
    }
}
