//! Stage 3 — the informative dashboard (§2.3): builds the panels of
//! Figure 4 (and the map series of Figure 2) from the analytics output, and
//! emits self-contained HTML plus GeoJSON artifacts.

use crate::analytics::AnalyticsOutput;
use crate::error::IndiceError;
use epc_columnar::{ColumnStore, DatasetColumnarExt};
use epc_geo::point::GeoPoint;
use epc_geo::region::RegionHierarchy;
use epc_model::{wellknown as wk, Dataset, Granularity};
use epc_query::aggregate::{group_by, AggFn, GroupRow};
use epc_query::columnar::group_by_columnar;
use epc_query::stakeholder::{default_report_spec, ReportKind, ReportSpec, Stakeholder};
use epc_runtime::Engine;
use epc_stats::histogram::Histogram;
use epc_viz::choropleth::ChoroplethMap;
use epc_viz::clustermarker::ClusterMarkerMap;
use epc_viz::corrplot::CorrelationPlot;
use epc_viz::dashboard::{Dashboard, PanelContent};
use epc_viz::histplot::HistogramPlot;
use epc_viz::rulestable::RulesTable;
use epc_viz::scattermap::ScatterMap;
use serde_json::Map;
use std::collections::BTreeMap;

/// Everything stage 3 produces.
#[derive(Debug, Clone)]
pub struct DashboardOutput {
    /// The assembled dashboard (render with
    /// [`epc_viz::dashboard::Dashboard::render_html`]).
    pub dashboard: Dashboard,
    /// Standalone artifacts: file name → content (SVG maps of Figure 2,
    /// GeoJSON layers, the rule table as text).
    pub artifacts: BTreeMap<String, String>,
    /// Cluster-markers rendered on this dashboard's marker maps
    /// (observability: the per-zoom marker count).
    pub n_markers: usize,
}

/// Builds the dashboard for a stakeholder, following the automatically
/// proposed [`ReportSpec`] (overridable by passing a custom spec to
/// [`build_dashboard_with_spec`]).
pub fn build_dashboard(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
) -> Result<DashboardOutput, IndiceError> {
    build_dashboard_with_engine(
        dataset,
        hierarchy,
        analytics,
        stakeholder,
        top_k_rules,
        Engine::Row,
    )
}

/// [`build_dashboard`] with an explicit execution engine: under
/// [`Engine::Columnar`] the per-area aggregations run as dictionary-id
/// group-bys over a [`ColumnStore`]. The rendered dashboard and every
/// artifact are byte-identical whichever engine produced them.
pub fn build_dashboard_with_engine(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    engine: Engine,
) -> Result<DashboardOutput, IndiceError> {
    let spec = default_report_spec(stakeholder);
    build_dashboard_spec_core(
        dataset,
        hierarchy,
        Some(analytics),
        &spec,
        top_k_rules,
        &[],
        engine,
    )
}

/// Builds the dashboard from an explicit report spec.
pub fn build_dashboard_with_spec(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    spec: &ReportSpec,
    top_k_rules: usize,
) -> Result<DashboardOutput, IndiceError> {
    build_dashboard_spec_core(
        dataset,
        hierarchy,
        Some(analytics),
        spec,
        top_k_rules,
        &[],
        Engine::Row,
    )
}

/// Builds a *degraded* dashboard when the analytics stage is unavailable:
/// the map and distribution panels (which need only the cleaned dataset)
/// still render, and an "Analytics unavailable" panel explains why the
/// clustering/rules/correlation panels are missing.
pub fn build_dashboard_degraded(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    reasons: &[String],
) -> Result<DashboardOutput, IndiceError> {
    build_dashboard_degraded_with_engine(
        dataset,
        hierarchy,
        stakeholder,
        top_k_rules,
        reasons,
        Engine::Row,
    )
}

/// [`build_dashboard_degraded`] with an explicit execution engine.
pub fn build_dashboard_degraded_with_engine(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    reasons: &[String],
    engine: Engine,
) -> Result<DashboardOutput, IndiceError> {
    let spec = default_report_spec(stakeholder);
    build_dashboard_spec_core(
        dataset,
        hierarchy,
        None,
        &spec,
        top_k_rules,
        reasons,
        engine,
    )
}

/// Mean of `value_attr` grouped by `group_attr`, through whichever engine
/// is selected. Row and columnar results are identical (gated by
/// `tests/columnar.rs`); the store, when given, must be built from
/// `dataset`.
fn mean_by_group(
    dataset: &Dataset,
    store: Option<&ColumnStore>,
    group_attr: &str,
    value_attr: &str,
) -> Result<Vec<GroupRow>, IndiceError> {
    let rows = match store {
        Some(store) => group_by_columnar(store, group_attr, value_attr, &[AggFn::Mean])?,
        None => group_by(dataset, group_attr, value_attr, &[AggFn::Mean])?,
    };
    Ok(rows)
}

/// The shared dashboard builder. With `analytics = Some(..)` this is the
/// full §2.3 dashboard; with `None`, analytics-dependent panels are
/// replaced by one "Analytics unavailable" notice.
#[allow(clippy::too_many_arguments)]
fn build_dashboard_spec_core(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: Option<&AnalyticsOutput>,
    spec: &ReportSpec,
    top_k_rules: usize,
    degradation_reasons: &[String],
    engine: Engine,
) -> Result<DashboardOutput, IndiceError> {
    // One store serves every group-by of this dashboard.
    let store = (engine == Engine::Columnar).then(|| dataset.to_columns());
    let mut dashboard = Dashboard::new(
        &format!("INDICE — {}", hierarchy.city),
        &format!("{} · {} level", spec.stakeholder.name(), spec.granularity),
    );
    let mut artifacts = BTreeMap::new();
    let mut n_markers = 0usize;
    let response_label = response_axis_label(dataset, &spec.response);
    let points = certificate_points(dataset, &spec.response)?;

    for kind in &spec.reports {
        match kind {
            ReportKind::ChoroplethMap => {
                let level = match spec.granularity {
                    Granularity::City | Granularity::District => Granularity::District,
                    _ => Granularity::Neighbourhood,
                };
                let group_attr = match level {
                    Granularity::District => wk::DISTRICT,
                    _ => wk::NEIGHBOURHOOD,
                };
                let rows = mean_by_group(dataset, store.as_ref(), group_attr, &spec.response)?;
                let means: BTreeMap<&str, f64> = rows
                    .iter()
                    .filter_map(|r| r.values[0].map(|v| (r.group.as_str(), v)))
                    .collect();
                let mut map = ChoroplethMap::new(
                    &format!("Average {} by {level}", spec.response),
                    &response_label,
                );
                for region in hierarchy.regions_at(level) {
                    map.add_area(region.clone(), means.get(region.name.as_str()).copied());
                }
                let svg = map.render();
                artifacts.insert(format!("choropleth_{level}.svg"), svg.clone());
                let regions: Vec<_> = hierarchy
                    .regions_at(level)
                    .iter()
                    .map(|r| (r.clone(), means.get(r.name.as_str()).copied()))
                    .collect();
                artifacts.insert(
                    format!("choropleth_{level}.geojson"),
                    serde_json::to_string_pretty(&epc_viz::geojson::regions_feature_collection(
                        &regions,
                    ))
                    .map_err(|e| IndiceError::Internal(format!("geojson serialization: {e}")))?,
                );
                dashboard.add_panel("Choropleth map", PanelContent::Svg(svg), true);
            }
            ReportKind::ScatterMap => {
                let mut map = ScatterMap::new(
                    &format!("{} per housing unit", spec.response),
                    &response_label,
                );
                for region in hierarchy.regions_at(Granularity::District) {
                    map.add_outline(region.clone());
                }
                for (p, v, label) in &points {
                    map.add_point(*p, *v, label);
                }
                let svg = map.render();
                artifacts.insert("scatter_units.svg".into(), svg.clone());
                let geo_points: Vec<(GeoPoint, Map<String, serde_json::Value>)> = points
                    .iter()
                    .map(|(p, v, label)| {
                        let mut props = Map::new();
                        props.insert("label".into(), serde_json::json!(label));
                        props.insert(spec.response.clone(), serde_json::json!(v));
                        (*p, props)
                    })
                    .collect();
                artifacts.insert(
                    "scatter_units.geojson".into(),
                    serde_json::to_string_pretty(&epc_viz::geojson::points_feature_collection(
                        &geo_points,
                    ))
                    .map_err(|e| IndiceError::Internal(format!("geojson serialization: {e}")))?,
                );
                dashboard.add_panel("Scatter map", PanelContent::Svg(svg), true);
            }
            ReportKind::ClusterMarkerMap => {
                let mut map = ClusterMarkerMap::new(
                    &format!("{} cluster-markers", spec.response),
                    &response_label,
                    spec.granularity,
                );
                for (p, v, _) in &points {
                    map.add_point(*p, *v);
                }
                let svg = map.render();
                artifacts.insert(
                    format!("clustermarkers_{}.svg", spec.granularity),
                    svg.clone(),
                );
                let markers = map.markers();
                n_markers += markers.len();
                artifacts.insert(
                    format!("clustermarkers_{}.geojson", spec.granularity),
                    serde_json::to_string_pretty(&epc_viz::geojson::markers_feature_collection(
                        &markers,
                    ))
                    .map_err(|e| IndiceError::Internal(format!("geojson serialization: {e}")))?,
                );
                dashboard.add_panel("Cluster-marker map", PanelContent::Svg(svg), true);
            }
            ReportKind::FrequencyDistribution => {
                let response_id = dataset.schema().require(&spec.response)?;
                let all = dataset.numeric_values(response_id);
                let mut plot = HistogramPlot::new(
                    &format!("{} frequency distribution", spec.response),
                    &response_label,
                );
                if let Some(h) = Histogram::auto(&all) {
                    plot.add_series("all certificates", h);
                }
                dashboard.add_panel(
                    "Frequency distribution",
                    PanelContent::Svg(plot.render()),
                    false,
                );

                // Per-cluster distribution (Figure 4's right-hand chart).
                if let Some(analytics) = analytics.filter(|a| a.chosen_k > 1) {
                    let mut per_cluster = HistogramPlot::new(
                        &format!("{} by cluster", spec.response),
                        &response_label,
                    );
                    per_cluster.relative = true;
                    for c in 0..analytics.chosen_k {
                        let values: Vec<f64> = analytics
                            .feature_rows
                            .iter()
                            .zip(&analytics.kmeans.assignments)
                            .filter(|&(_, &a)| a == c)
                            .filter_map(|(&row, _)| dataset.num(row, response_id))
                            .collect();
                        if let Some(h) = Histogram::equal_width(&values, 12) {
                            per_cluster.add_series(&format!("cluster {c}"), h);
                        }
                    }
                    dashboard.add_panel(
                        "Distribution by cluster",
                        PanelContent::Svg(per_cluster.render()),
                        false,
                    );
                }
            }
            ReportKind::AssociationRules => {
                if let Some(analytics) = analytics {
                    let table = RulesTable {
                        title: format!("Association rules ({})", spec.response),
                        top_k: top_k_rules,
                    };
                    let html = table.render_html(&analytics.rules);
                    let text = table.render_text(&analytics.rules);
                    artifacts.insert("rules.txt".into(), text);
                    dashboard.add_panel("Association rules", PanelContent::Html(html), false);
                }
            }
            ReportKind::CorrelationMatrix => {
                if let Some(analytics) = analytics {
                    let svg = CorrelationPlot::default().render(&analytics.correlation);
                    artifacts.insert("correlation_matrix.svg".into(), svg.clone());
                    dashboard.add_panel("Correlation matrix", PanelContent::Svg(svg), false);
                }
            }
            ReportKind::ClusterSummary => {
                if let Some(analytics) = analytics {
                    dashboard.add_panel(
                        "Cluster summary",
                        PanelContent::Text(cluster_summary_text(analytics)),
                        false,
                    );
                }
            }
            ReportKind::OutlierBoxplots => {
                let mut plot = epc_viz::boxplot_svg::BoxplotPlot::new(
                    "Boxplots of the expert-analysis attributes",
                );
                for attr in wk::EXPERT_ANALYSIS_ATTRIBUTES {
                    let Ok(id) = dataset.schema().require(attr) else {
                        continue;
                    };
                    let values = dataset.numeric_values(id);
                    if let Some(summary) = epc_stats::boxplot::boxplot_summary(&values, 1.5) {
                        let outliers: Vec<f64> =
                            summary.outliers.iter().map(|&i| values[i]).collect();
                        plot.add_row(attr, summary, outliers);
                    }
                }
                let svg = plot.render();
                artifacts.insert("outlier_boxplots.svg".into(), svg.clone());
                dashboard.add_panel("Outlier boxplots", PanelContent::Svg(svg), false);
            }
        }
    }
    if analytics.is_none() {
        let mut text = String::from(
            "The analytics stage did not complete; cluster, rule, and \
             correlation panels are unavailable in this run.\n",
        );
        for reason in degradation_reasons {
            text.push_str(&format!("  - {reason}\n"));
        }
        dashboard.add_panel("Analytics unavailable", PanelContent::Text(text), false);
    }
    Ok(DashboardOutput {
        dashboard,
        artifacts,
        n_markers,
    })
}

/// Builds the *drill-down series*: one dashboard per spatial granularity,
/// cross-linked so "the user can switch from one view to another, simply by
/// changing the analysis zoom" (§2.3) — the static equivalent of the
/// paper's interactive zoom navigation.
///
/// Returns `(file name, html)` pairs; file names follow
/// `dashboard_<granularity>.html` and each page links to the other levels.
pub fn drilldown_series(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
) -> Result<BTreeMap<String, String>, IndiceError> {
    drilldown_series_with_runtime(
        dataset,
        hierarchy,
        analytics,
        stakeholder,
        top_k_rules,
        &epc_runtime::RuntimeConfig::sequential(),
    )
}

/// [`drilldown_series`] with an explicit execution runtime: each zoom
/// level renders as one coarse parallel task (the four dashboards share no
/// state, and the page map is keyed by level name, so the output never
/// depends on the thread budget).
pub fn drilldown_series_with_runtime(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<BTreeMap<String, String>, IndiceError> {
    Ok(drilldown_series_detailed_with_runtime(
        dataset,
        hierarchy,
        analytics,
        stakeholder,
        top_k_rules,
        runtime,
    )?
    .into_iter()
    .map(|page| (page.file, page.html))
    .collect())
}

/// One rendered page of the drill-down series, with its marker count.
#[derive(Debug, Clone)]
pub struct ZoomPage {
    /// Zoom level the page renders.
    pub level: Granularity,
    /// Output file name (`dashboard_<granularity>.html`).
    pub file: String,
    /// The rendered page.
    pub html: String,
    /// Cluster-markers rendered on the page's marker maps.
    pub markers: usize,
}

/// [`drilldown_series_with_runtime`], additionally reporting the per-zoom
/// marker counts for observability. Pages come back in the fixed
/// [`Granularity::ALL`] order, independent of the thread budget.
pub fn drilldown_series_detailed_with_runtime(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    runtime: &epc_runtime::RuntimeConfig,
) -> Result<Vec<ZoomPage>, IndiceError> {
    let rendered: Vec<Result<ZoomPage, IndiceError>> =
        epc_runtime::par_map_coarse(runtime, &Granularity::ALL, |&level| {
            let (page, markers) = render_zoom_page(
                dataset,
                hierarchy,
                analytics,
                stakeholder,
                top_k_rules,
                level,
                runtime.engine,
            )?;
            Ok(ZoomPage {
                level,
                file: format!("dashboard_{level}.html"),
                html: page,
                markers,
            })
        });
    rendered.into_iter().collect()
}

/// Renders the single zoom-level page of the drill-down series, nav bar
/// included. Returns the page plus its marker count.
#[allow(clippy::too_many_arguments)]
fn render_zoom_page(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    analytics: &AnalyticsOutput,
    stakeholder: Stakeholder,
    top_k_rules: usize,
    level: Granularity,
    engine: Engine,
) -> Result<(String, usize), IndiceError> {
    let spec = ReportSpec {
        granularity: level,
        ..default_report_spec(stakeholder)
    };
    let out = build_dashboard_spec_core(
        dataset,
        hierarchy,
        Some(analytics),
        &spec,
        top_k_rules,
        &[],
        engine,
    )?;
    let mut html = out.dashboard.render_html();
    // Inject the zoom-navigation bar right after the header.
    let nav: String = {
        let mut nav = String::from("<nav style=\"padding:8px 24px;background:#1b3349;\">zoom: ");
        for l in Granularity::ALL {
            if l == level {
                nav.push_str(&format!(
                    "<strong style=\"color:#fff;margin-right:12px;\">{l}</strong>"
                ));
            } else {
                nav.push_str(&format!(
                    "<a style=\"color:#9fc2e0;margin-right:12px;\" href=\"dashboard_{l}.html\">{l}</a>"
                ));
            }
        }
        nav.push_str("</nav>");
        nav
    };
    if let Some(pos) = html.find("</header>") {
        html.insert_str(pos + "</header>".len(), &nav);
    }
    Ok((html, out.n_markers))
}

/// Renders the Figure-2 map series: choropleth + scatter at housing-unit
/// and neighbourhood zoom, cluster-marker maps at district and city zoom.
pub fn figure2_maps(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    attribute: &str,
) -> Result<BTreeMap<String, String>, IndiceError> {
    figure2_maps_with_engine(dataset, hierarchy, attribute, Engine::Row)
}

/// [`figure2_maps`] with an explicit execution engine; the rendered SVGs
/// are byte-identical either way.
pub fn figure2_maps_with_engine(
    dataset: &Dataset,
    hierarchy: &RegionHierarchy,
    attribute: &str,
    engine: Engine,
) -> Result<BTreeMap<String, String>, IndiceError> {
    let store = (engine == Engine::Columnar).then(|| dataset.to_columns());
    let mut artifacts = BTreeMap::new();
    let label = response_axis_label(dataset, attribute);
    let points = certificate_points(dataset, attribute)?;

    // Upper row: choropleth (neighbourhood) + scatter (single certificate).
    let rows = mean_by_group(dataset, store.as_ref(), wk::NEIGHBOURHOOD, attribute)?;
    let means: BTreeMap<&str, f64> = rows
        .iter()
        .filter_map(|r| r.values[0].map(|v| (r.group.as_str(), v)))
        .collect();
    let mut choro = ChoroplethMap::new(&format!("Average {attribute} by neighbourhood"), &label);
    for region in hierarchy.regions_at(Granularity::Neighbourhood) {
        choro.add_area(region.clone(), means.get(region.name.as_str()).copied());
    }
    artifacts.insert("fig2_choropleth_neighbourhood.svg".into(), choro.render());

    let mut scatter = ScatterMap::new(&format!("{attribute} per housing unit"), &label);
    for (p, v, l) in &points {
        scatter.add_point(*p, *v, l);
    }
    artifacts.insert("fig2_scatter_unit.svg".into(), scatter.render());

    // Bottom row: cluster-markers at district and city level.
    for level in [Granularity::District, Granularity::City] {
        let mut map = ClusterMarkerMap::new(&format!("{attribute} cluster-markers"), &label, level);
        for (p, v, _) in &points {
            map.add_point(*p, *v);
        }
        artifacts.insert(format!("fig2_clustermarkers_{level}.svg"), map.render());
    }
    Ok(artifacts)
}

/// `(point, value, popup label)` triples for every geolocated certificate.
fn certificate_points(
    dataset: &Dataset,
    attribute: &str,
) -> Result<Vec<(GeoPoint, Option<f64>, String)>, IndiceError> {
    let lat_id = dataset.schema().require(wk::LATITUDE)?;
    let lon_id = dataset.schema().require(wk::LONGITUDE)?;
    let id_id = dataset.schema().require(wk::CERTIFICATE_ID)?;
    let attr_id = dataset.schema().require(attribute)?;
    let mut out = Vec::new();
    for r in 0..dataset.n_rows() {
        let (Some(lat), Some(lon)) = (dataset.num(r, lat_id), dataset.num(r, lon_id)) else {
            continue;
        };
        let p = GeoPoint { lat, lon };
        if !p.is_valid() {
            continue;
        }
        let v = dataset.num(r, attr_id);
        let cert = dataset.cat(r, id_id).unwrap_or("(unknown)");
        let label = match v {
            Some(v) => format!("{cert}: {attribute} = {v:.1}"),
            None => format!("{cert}: {attribute} missing"),
        };
        out.push((p, v, label));
    }
    Ok(out)
}

fn response_axis_label(dataset: &Dataset, attribute: &str) -> String {
    dataset
        .schema()
        .def_by_name(attribute)
        .map(|d| d.axis_label())
        .unwrap_or_else(|| attribute.to_owned())
}

/// The textual cluster-summary panel.
fn cluster_summary_text(analytics: &AnalyticsOutput) -> String {
    let mut out = format!(
        "K = {} (SSE elbow{})\n",
        analytics.chosen_k,
        if analytics.sse_curve.is_empty() {
            " not used: K fixed a-priori".to_owned()
        } else {
            format!(
                "; SSE at K: {:.1}",
                analytics
                    .sse_curve
                    .iter()
                    .find(|(k, _)| *k == analytics.chosen_k)
                    .map(|(_, s)| *s)
                    .unwrap_or(f64::NAN)
            )
        }
    );
    out.push_str(&format!(
        "{:<8} {:>7} {:>12}  centroid ({})\n",
        "cluster",
        "size",
        "mean resp.",
        analytics.feature_names.join(", ")
    ));
    for s in &analytics.cluster_summaries {
        let centroid: Vec<String> = s.centroid.iter().map(|v| format!("{v:.2}")).collect();
        out.push_str(&format!(
            "{:<8} {:>7} {:>12}  [{}]\n",
            s.cluster,
            s.size,
            s.mean_response
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            centroid.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytics::analyze;
    use crate::config::IndiceConfig;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};

    fn setup() -> (Dataset, RegionHierarchy, AnalyticsOutput) {
        let c = EpcGenerator::new(SynthConfig {
            n_records: 800,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        let analytics = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
        (c.dataset, c.city.hierarchy, analytics)
    }

    #[test]
    fn pa_dashboard_has_all_figure4_panels() {
        let (ds, hier, analytics) = setup();
        let out = build_dashboard(
            &ds,
            &hier,
            &analytics,
            Stakeholder::PublicAdministration,
            10,
        )
        .unwrap();
        let titles: Vec<&str> = out
            .dashboard
            .panels()
            .iter()
            .map(|p| p.title.as_str())
            .collect();
        assert!(titles.contains(&"Cluster-marker map"));
        assert!(titles.contains(&"Frequency distribution"));
        assert!(titles.contains(&"Distribution by cluster"));
        assert!(titles.contains(&"Association rules"));
        assert!(titles.contains(&"Correlation matrix"));
        assert!(titles.contains(&"Cluster summary"));
        let html = out.dashboard.render_html();
        assert!(html.contains("public administration · district level"));
    }

    #[test]
    fn citizen_dashboard_is_simpler() {
        let (ds, hier, analytics) = setup();
        let out = build_dashboard(&ds, &hier, &analytics, Stakeholder::Citizen, 10).unwrap();
        let titles: Vec<&str> = out
            .dashboard
            .panels()
            .iter()
            .map(|p| p.title.as_str())
            .collect();
        assert!(titles.contains(&"Choropleth map"));
        assert!(titles.contains(&"Scatter map"));
        assert!(!titles.contains(&"Association rules"));
    }

    #[test]
    fn artifacts_include_geojson_and_svg() {
        let (ds, hier, analytics) = setup();
        let out = build_dashboard(
            &ds,
            &hier,
            &analytics,
            Stakeholder::PublicAdministration,
            10,
        )
        .unwrap();
        assert!(out.artifacts.contains_key("clustermarkers_district.svg"));
        assert!(out
            .artifacts
            .contains_key("clustermarkers_district.geojson"));
        assert!(out.artifacts.contains_key("correlation_matrix.svg"));
        assert!(out.artifacts.contains_key("rules.txt"));
        // GeoJSON is parseable.
        let geo: serde_json::Value =
            serde_json::from_str(&out.artifacts["clustermarkers_district.geojson"]).unwrap();
        assert_eq!(geo["type"], "FeatureCollection");
    }

    #[test]
    fn figure2_series_has_all_four_maps() {
        let (ds, hier, _) = setup();
        let maps = figure2_maps(&ds, &hier, wk::U_WINDOWS).unwrap();
        assert_eq!(maps.len(), 4);
        assert!(maps.contains_key("fig2_choropleth_neighbourhood.svg"));
        assert!(maps.contains_key("fig2_scatter_unit.svg"));
        assert!(maps.contains_key("fig2_clustermarkers_district.svg"));
        assert!(maps.contains_key("fig2_clustermarkers_city.svg"));
        for svg in maps.values() {
            assert!(svg.starts_with("<svg"));
        }
    }

    #[test]
    fn drilldown_series_links_every_level() {
        let (ds, hier, analytics) = setup();
        let pages =
            drilldown_series(&ds, &hier, &analytics, Stakeholder::PublicAdministration, 8).unwrap();
        assert_eq!(pages.len(), 4);
        for level in Granularity::ALL {
            let page = &pages[&format!("dashboard_{level}.html")];
            // Each page links to the other three levels.
            for other in Granularity::ALL {
                if other != level {
                    assert!(
                        page.contains(&format!("dashboard_{other}.html")),
                        "{level} page missing link to {other}"
                    );
                }
            }
            // The current level is highlighted, not linked.
            assert!(!page.contains(&format!("href=\"dashboard_{level}.html\"")));
            assert!(page.contains("</html>"));
        }
    }

    #[test]
    fn degraded_dashboard_keeps_maps_and_explains_the_gap() {
        let (ds, hier, _) = setup();
        let out = build_dashboard_degraded(
            &ds,
            &hier,
            Stakeholder::PublicAdministration,
            10,
            &["stage 'analytics' panicked: injected fault".to_owned()],
        )
        .unwrap();
        let titles: Vec<&str> = out
            .dashboard
            .panels()
            .iter()
            .map(|p| p.title.as_str())
            .collect();
        // Data-only panels survive.
        assert!(titles.contains(&"Cluster-marker map"));
        assert!(titles.contains(&"Frequency distribution"));
        // Analytics panels are replaced by the notice.
        assert!(!titles.contains(&"Association rules"));
        assert!(!titles.contains(&"Correlation matrix"));
        assert!(titles.contains(&"Analytics unavailable"));
        let html = out.dashboard.render_html();
        assert!(html.contains("injected fault"));
        assert!(!out.artifacts.contains_key("rules.txt"));
    }

    #[test]
    fn cluster_summary_mentions_every_cluster() {
        let (_, _, analytics) = setup();
        let text = cluster_summary_text(&analytics);
        for s in &analytics.cluster_summaries {
            assert!(text.contains(&format!("\n{:<8}", s.cluster)), "{text}");
        }
        assert!(text.contains("K ="));
    }

    #[test]
    fn scatter_points_skip_missing_coordinates() {
        let (mut ds, hier, analytics) = setup();
        let lat_id = ds.schema().require(wk::LATITUDE).unwrap();
        ds.set_value(0, lat_id, epc_model::Value::Missing).unwrap();
        let out = build_dashboard(&ds, &hier, &analytics, Stakeholder::Citizen, 10).unwrap();
        let svg = &out.artifacts["scatter_units.svg"];
        assert!(svg.contains(&format!("{} certificates", ds.n_rows() - 1)));
    }
}
