//! Stage-boundary checkpoint codecs for durable runs.
//!
//! A durable run (see [`crate::durable`]) commits the product of each
//! completed stage to disk so an interrupted run can resume without
//! recomputation. The resumed pipeline must produce artifacts
//! *byte-identical* to an uninterrupted run, so these codecs are exact:
//! every `f64` goes through [`epc_model::jsonnum`] (the shim's derived
//! float encoding loses `NaN`, `±∞` and the sign of `-0.0` — and
//! `AssociationRule::conviction` is infinite for exact rules, while
//! `CorrelationMatrix` uses `NaN` for undefined pairs).
//!
//! Encodings are hand-rolled JSON `Value` trees with sorted object keys
//! (the shim's `Map` is a `BTreeMap`), so encoding is deterministic:
//! encode ∘ decode ∘ encode is the identity on bytes, which is what lets
//! CI tree-hash a resumed run directory against an uninterrupted one.

use crate::analytics::{AnalyticsOutput, ClusterSummary};
use crate::preprocess::{CleanPhase, PreprocessOutput};
use epc_mining::{AssociationRule, DbscanConfig, Discretizer, KMeansModel, Matrix};
use epc_model::jsonnum::{decode_f64, decode_opt_f64, encode_f64, encode_opt_f64};
use epc_model::{Dataset, Quarantine};
use epc_stats::CorrelationMatrix;
use serde::{Deserialize, Error, Map, Serialize, Value};

/// Format tag written into every checkpoint; bumped on layout changes so
/// a resume against a stale checkpoint fails validation instead of
/// decoding garbage.
const FORMAT: &str = "indice-checkpoint-v1";

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect::<Map<String, Value>>(),
    )
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::custom(format!("checkpoint missing field {name:?}")))
}

fn usize_field(v: &Value, name: &str) -> Result<usize, Error> {
    field(v, name)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| Error::custom(format!("checkpoint field {name:?} must be an integer")))
}

fn f64_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().copied().map(encode_f64).collect())
}

fn decode_f64_array(v: &Value) -> Result<Vec<f64>, Error> {
    v.as_array()
        .ok_or_else(|| Error::mismatch("array of f64", v))?
        .iter()
        .map(decode_f64)
        .collect()
}

fn encode_dbscan(c: &DbscanConfig) -> Value {
    obj(vec![
        ("eps", encode_f64(c.eps)),
        ("min_points", Value::Num(c.min_points as f64)),
    ])
}

fn decode_dbscan(v: &Value) -> Result<DbscanConfig, Error> {
    Ok(DbscanConfig {
        eps: decode_f64(field(v, "eps")?)?,
        min_points: usize_field(v, "min_points")?,
    })
}

fn encode_correlation(c: &CorrelationMatrix) -> Value {
    obj(vec![
        ("names", c.names.to_json_value()),
        ("values", f64_array(&c.values)),
    ])
}

fn decode_correlation(v: &Value) -> Result<CorrelationMatrix, Error> {
    let names = Vec::<String>::from_json_value(field(v, "names")?)?;
    let values = decode_f64_array(field(v, "values")?)?;
    if values.len() != names.len() * names.len() {
        return Err(Error::custom(format!(
            "correlation matrix has {} values for {} names",
            values.len(),
            names.len()
        )));
    }
    Ok(CorrelationMatrix { names, values })
}

fn encode_kmeans(m: &KMeansModel) -> Value {
    obj(vec![
        (
            "centroids",
            obj(vec![
                ("data", f64_array(m.centroids.data())),
                ("n_cols", Value::Num(m.centroids.n_cols() as f64)),
                ("n_rows", Value::Num(m.centroids.n_rows() as f64)),
            ]),
        ),
        ("assignments", m.assignments.to_json_value()),
        ("converged", Value::Bool(m.converged)),
        ("n_iter", Value::Num(m.n_iter as f64)),
        ("sse", encode_f64(m.sse)),
    ])
}

fn decode_kmeans(v: &Value) -> Result<KMeansModel, Error> {
    let c = field(v, "centroids")?;
    let data = decode_f64_array(field(c, "data")?)?;
    let n_rows = usize_field(c, "n_rows")?;
    let n_cols = usize_field(c, "n_cols")?;
    // Validate before `Matrix::from_vec`, which would panic on a mismatch.
    if data.len() != n_rows * n_cols {
        return Err(Error::custom(format!(
            "centroid matrix has {} cells for {n_rows}×{n_cols}",
            data.len()
        )));
    }
    Ok(KMeansModel {
        centroids: Matrix::from_vec(data, n_rows, n_cols),
        assignments: Vec::<usize>::from_json_value(field(v, "assignments")?)?,
        sse: decode_f64(field(v, "sse")?)?,
        n_iter: usize_field(v, "n_iter")?,
        converged: field(v, "converged")?
            .as_bool()
            .ok_or_else(|| Error::custom("converged must be a bool"))?,
    })
}

fn encode_discretizer(d: &Discretizer) -> Value {
    obj(vec![
        ("attribute", Value::Str(d.attribute.clone())),
        ("edges", f64_array(&d.edges)),
        ("labels", d.labels.to_json_value()),
    ])
}

fn decode_discretizer(v: &Value) -> Result<Discretizer, Error> {
    Ok(Discretizer {
        attribute: String::from_json_value(field(v, "attribute")?)?,
        edges: decode_f64_array(field(v, "edges")?)?,
        labels: Vec::<String>::from_json_value(field(v, "labels")?)?,
    })
}

fn encode_rule(r: &AssociationRule) -> Value {
    obj(vec![
        ("antecedent", r.antecedent.to_json_value()),
        ("confidence", encode_f64(r.confidence)),
        ("consequent", r.consequent.to_json_value()),
        ("conviction", encode_f64(r.conviction)),
        ("lift", encode_f64(r.lift)),
        ("support", encode_f64(r.support)),
    ])
}

fn decode_rule(v: &Value) -> Result<AssociationRule, Error> {
    Ok(AssociationRule {
        antecedent: Vec::<String>::from_json_value(field(v, "antecedent")?)?,
        consequent: Vec::<String>::from_json_value(field(v, "consequent")?)?,
        support: decode_f64(field(v, "support")?)?,
        confidence: decode_f64(field(v, "confidence")?)?,
        lift: decode_f64(field(v, "lift")?)?,
        conviction: decode_f64(field(v, "conviction")?)?,
    })
}

fn encode_summary(s: &ClusterSummary) -> Value {
    obj(vec![
        ("centroid", f64_array(&s.centroid)),
        ("cluster", Value::Num(s.cluster as f64)),
        ("mean_response", encode_opt_f64(s.mean_response)),
        ("size", Value::Num(s.size as f64)),
    ])
}

fn decode_summary(v: &Value) -> Result<ClusterSummary, Error> {
    Ok(ClusterSummary {
        cluster: usize_field(v, "cluster")?,
        size: usize_field(v, "size")?,
        centroid: decode_f64_array(field(v, "centroid")?)?,
        mean_response: decode_opt_f64(field(v, "mean_response")?)?,
    })
}

fn check_format(v: &Value) -> Result<(), Error> {
    match field(v, "format")?.as_str() {
        Some(FORMAT) => Ok(()),
        Some(other) => Err(Error::custom(format!(
            "checkpoint format {other:?} does not match {FORMAT:?}"
        ))),
        None => Err(Error::custom("checkpoint format tag must be a string")),
    }
}

/// Serializes the preprocess product plus the quarantine state accumulated
/// up to the end of the stage.
pub fn encode_preprocess(out: &PreprocessOutput, quarantine: &Quarantine) -> String {
    let v = obj(vec![
        ("cleaning", out.cleaning.to_json_value()),
        ("dataset", out.dataset.to_json_value()),
        (
            "dbscan_params",
            match &out.dbscan_params {
                Some(c) => encode_dbscan(c),
                None => Value::Null,
            },
        ),
        ("degraded_rows", out.degraded_rows.to_json_value()),
        ("format", Value::Str(FORMAT.to_owned())),
        ("kept_rows", out.kept_rows.to_json_value()),
        (
            "multivariate_flagged",
            out.multivariate_flagged.to_json_value(),
        ),
        ("quarantine", quarantine.to_json_value()),
        ("removed_rows", out.removed_rows.to_json_value()),
        ("univariate_flagged", out.univariate_flagged.to_json_value()),
    ]);
    v.to_compact_string()
}

/// Rehydrates a preprocess checkpoint written by [`encode_preprocess`].
pub fn decode_preprocess(text: &str) -> Result<(PreprocessOutput, Quarantine), Error> {
    let v = serde_json::from_str::<Value>(text)?;
    check_format(&v)?;
    let dbscan_params = match field(&v, "dbscan_params")? {
        Value::Null => None,
        other => Some(decode_dbscan(other)?),
    };
    let out = PreprocessOutput {
        dataset: Dataset::from_json_value(field(&v, "dataset")?)?,
        kept_rows: Deserialize::from_json_value(field(&v, "kept_rows")?)?,
        cleaning: Deserialize::from_json_value(field(&v, "cleaning")?)?,
        univariate_flagged: Deserialize::from_json_value(field(&v, "univariate_flagged")?)?,
        multivariate_flagged: Deserialize::from_json_value(field(&v, "multivariate_flagged")?)?,
        dbscan_params,
        removed_rows: Deserialize::from_json_value(field(&v, "removed_rows")?)?,
        degraded_rows: Deserialize::from_json_value(field(&v, "degraded_rows")?)?,
    };
    let quarantine = Quarantine::from_json_value(field(&v, "quarantine")?)?;
    Ok((out, quarantine))
}

/// Serializes a sealed generation's clean-phase delta (incremental
/// ingest). Everything a resuming ingest needs to re-merge the batch
/// without re-cleaning it: the validated dataset, the row provenance, the
/// additive cleaning counters, and the batch's quarantine.
pub fn encode_clean_phase(phase: &CleanPhase) -> String {
    let v = obj(vec![
        ("cleaning", phase.cleaning.to_json_value()),
        ("dataset", phase.dataset.to_json_value()),
        ("degraded_rows", phase.degraded_rows.to_json_value()),
        ("format", Value::Str(FORMAT.to_owned())),
        ("input_rows", Value::Num(phase.input_rows as f64)),
        ("orig_of", phase.orig_of.to_json_value()),
        ("quarantine", phase.quarantine.to_json_value()),
        ("unresolved_rows", phase.unresolved_rows.to_json_value()),
    ]);
    v.to_compact_string()
}

/// Rehydrates a clean-phase delta written by [`encode_clean_phase`].
pub fn decode_clean_phase(text: &str) -> Result<CleanPhase, Error> {
    let v = serde_json::from_str::<Value>(text)?;
    check_format(&v)?;
    Ok(CleanPhase {
        dataset: Dataset::from_json_value(field(&v, "dataset")?)?,
        orig_of: Deserialize::from_json_value(field(&v, "orig_of")?)?,
        input_rows: usize_field(&v, "input_rows")?,
        cleaning: Deserialize::from_json_value(field(&v, "cleaning")?)?,
        degraded_rows: Deserialize::from_json_value(field(&v, "degraded_rows")?)?,
        unresolved_rows: Deserialize::from_json_value(field(&v, "unresolved_rows")?)?,
        quarantine: Quarantine::from_json_value(field(&v, "quarantine")?)?,
    })
}

/// Serializes the analytics product.
pub fn encode_analytics(out: &AnalyticsOutput) -> String {
    let sse_curve = Value::Array(
        out.sse_curve
            .iter()
            .map(|(k, sse)| Value::Array(vec![Value::Num(*k as f64), encode_f64(*sse)]))
            .collect(),
    );
    let v = obj(vec![
        ("chosen_k", Value::Num(out.chosen_k as f64)),
        (
            "cluster_summaries",
            Value::Array(out.cluster_summaries.iter().map(encode_summary).collect()),
        ),
        ("correlation", encode_correlation(&out.correlation)),
        (
            "discretizers",
            Value::Array(out.discretizers.iter().map(encode_discretizer).collect()),
        ),
        ("eligible", Value::Bool(out.eligible)),
        ("feature_names", out.feature_names.to_json_value()),
        ("feature_rows", out.feature_rows.to_json_value()),
        ("format", Value::Str(FORMAT.to_owned())),
        ("kmeans", encode_kmeans(&out.kmeans)),
        (
            "response_discretizer",
            encode_discretizer(&out.response_discretizer),
        ),
        (
            "rules",
            Value::Array(out.rules.iter().map(encode_rule).collect()),
        ),
        ("sse_curve", sse_curve),
    ]);
    v.to_compact_string()
}

/// Rehydrates an analytics checkpoint written by [`encode_analytics`].
pub fn decode_analytics(text: &str) -> Result<AnalyticsOutput, Error> {
    let v = serde_json::from_str::<Value>(text)?;
    check_format(&v)?;
    let sse_curve = field(&v, "sse_curve")?
        .as_array()
        .ok_or_else(|| Error::custom("sse_curve must be an array"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::custom("sse_curve entries must be [k, sse] pairs"))?;
            let k = pair[0]
                .as_u64()
                .ok_or_else(|| Error::custom("sse_curve k must be an integer"))?
                as usize;
            Ok((k, decode_f64(&pair[1])?))
        })
        .collect::<Result<Vec<(usize, f64)>, Error>>()?;
    fn decode_vec<T>(
        v: &Value,
        name: &str,
        f: impl Fn(&Value) -> Result<T, Error>,
    ) -> Result<Vec<T>, Error> {
        field(v, name)?
            .as_array()
            .ok_or_else(|| Error::custom(format!("{name} must be an array")))?
            .iter()
            .map(f)
            .collect()
    }
    Ok(AnalyticsOutput {
        feature_names: Deserialize::from_json_value(field(&v, "feature_names")?)?,
        correlation: decode_correlation(field(&v, "correlation")?)?,
        eligible: field(&v, "eligible")?
            .as_bool()
            .ok_or_else(|| Error::custom("eligible must be a bool"))?,
        sse_curve,
        chosen_k: usize_field(&v, "chosen_k")?,
        kmeans: decode_kmeans(field(&v, "kmeans")?)?,
        feature_rows: Deserialize::from_json_value(field(&v, "feature_rows")?)?,
        cluster_summaries: decode_vec(&v, "cluster_summaries", decode_summary)?,
        discretizers: decode_vec(&v, "discretizers", decode_discretizer)?,
        response_discretizer: decode_discretizer(field(&v, "response_discretizer")?)?,
        rules: decode_vec(&v, "rules", decode_rule)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_analytics() -> AnalyticsOutput {
        AnalyticsOutput {
            feature_names: vec!["a".into(), "b".into()],
            correlation: CorrelationMatrix {
                names: vec!["a".into(), "b".into()],
                values: vec![1.0, f64::NAN, f64::NAN, 1.0],
            },
            eligible: true,
            sse_curve: vec![(2, 10.5), (3, 1.0 / 3.0)],
            chosen_k: 3,
            kmeans: KMeansModel {
                centroids: Matrix::from_vec(vec![0.25, -0.0, 1.0, 2.0, 3.0, 4.0], 3, 2),
                assignments: vec![0, 1, 2, 0],
                sse: 0.1,
                n_iter: 7,
                converged: true,
            },
            feature_rows: vec![0, 2, 3, 5],
            cluster_summaries: vec![ClusterSummary {
                cluster: 0,
                size: 2,
                centroid: vec![0.5, 1.5],
                mean_response: None,
            }],
            discretizers: vec![Discretizer {
                attribute: "a".into(),
                edges: vec![0.5, 1.5],
                labels: vec!["low".into(), "mid".into(), "high".into()],
            }],
            response_discretizer: Discretizer {
                attribute: "eph".into(),
                edges: vec![100.0],
                labels: vec!["low".into(), "high".into()],
            },
            rules: vec![AssociationRule {
                antecedent: vec!["a=low".into()],
                consequent: vec!["eph=low".into()],
                support: 0.5,
                confidence: 1.0,
                lift: 2.0,
                conviction: f64::INFINITY,
            }],
        }
    }

    #[test]
    fn analytics_round_trip_is_exact_and_byte_stable() {
        let out = sample_analytics();
        let text = encode_analytics(&out);
        let back = decode_analytics(&text).unwrap();
        assert_eq!(back.feature_names, out.feature_names);
        assert_eq!(back.chosen_k, 3);
        assert!(back.correlation.values[1].is_nan());
        assert_eq!(back.rules[0].conviction, f64::INFINITY);
        assert_eq!(back.sse_curve, out.sse_curve);
        assert_eq!(back.kmeans.centroids.data(), out.kmeans.centroids.data());
        assert!(back.kmeans.centroids.data()[1].is_sign_negative());
        assert_eq!(back.cluster_summaries[0].mean_response, None);
        // Determinism: re-encoding the rehydrated product is byte-identical.
        assert_eq!(encode_analytics(&back), text);
    }

    #[test]
    fn analytics_decode_rejects_corruption() {
        let good = encode_analytics(&sample_analytics());
        assert!(
            decode_analytics(&good.replace("indice-checkpoint-v1", "indice-checkpoint-v0"))
                .is_err()
        );
        assert!(decode_analytics(&good.replace("\"n_rows\":3", "\"n_rows\":4")).is_err());
        assert!(decode_analytics("{}").is_err());
        assert!(decode_analytics("not json").is_err());
    }
}
