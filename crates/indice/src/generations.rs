//! Incremental ingest: the pipeline-aware generations runner.
//!
//! [`ingest`] folds an ordered list of micro-batches into a run directory
//! that is, at every commit point, *byte-identical* to what a one-shot
//! [`crate::durable`] run over the concatenation of the folded batches
//! would have produced (exact mode; `warm` K-means recompute is
//! ε-equivalent — see DESIGN.md). The `epc-ingest` crate owns the
//! bookkeeping (generation grammar, manifest, hash chain); this module
//! owns everything pipeline-shaped:
//!
//! - the **clean phase** runs per batch with the geocoder-quota balance
//!   carried across generations, and its output is sealed as a delta
//!   under `gens/gen-%05d/` so resume never re-cleans a sealed batch;
//! - **outlier removal and analytics are global**: each generation
//!   re-runs them over the merged cumulative data (K-means optionally
//!   warm-started from the previous generation's centroids);
//! - `current/` is rebuilt as a full durable run directory (checkpoints,
//!   `dashboard.html`, artifacts, `run.manifest.jsonl`), writing only the
//!   files whose bytes changed and carrying the rest;
//! - the generation's manifest line is appended **last** — it is the
//!   commit point, mirroring `epc-journal`'s discipline.
//!
//! Crash points ([`epc_faults::IngestCrash`]) fire at every batch
//! boundary; a killed ingest resumed with [`IngestOptions::resume`]
//! finishes with a manifest and a `current/` tree byte-identical to an
//! uninterrupted ingest.

use crate::checkpoint;
use crate::config::IndiceConfig;
use crate::durable::{
    config_fingerprint, product_present, tear_checkpoint, CHECKPOINT_DIR, DASHBOARD_FILE,
};
use crate::error::IndiceError;
use crate::pipeline::{
    execute_stage_supervised, finish_outcome, supervised_stages, PipelineContext, RunOutcome,
    StageExec,
};
use crate::preprocess::{clean_phase, merge_clean_phases, outlier_phase, CleanPhase};
use epc_faults::{BatchScope, FaultInjector, IngestCrash};
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_ingest::{
    gen_dir_name, write_delta, GenerationEntry, GenerationManifest, GenerationOutcome, CURRENT_DIR,
    GENESIS, GENS_DIR,
};
use epc_journal::{hash_hex, ArtifactRecord, StageEntry, MANIFEST_FILE};
use epc_model::csv::to_csv;
use epc_model::wellknown as wk;
use epc_model::Dataset;
use epc_query::predicate::Predicate;
use epc_query::query::Query;
use epc_query::stakeholder::Stakeholder;
use epc_runtime::{PipelineReport, RuntimeConfig, StageReport};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File name of a generation's sealed clean-phase delta.
pub const CLEAN_DELTA_FILE: &str = "clean.delta.json";

/// One micro-batch of raw (uncleaned) EPC records.
#[derive(Debug, Clone)]
pub struct IngestBatch {
    /// Batch label recorded in the manifest (typically the file name).
    pub name: String,
    /// The batch's raw records, schema-compatible with its siblings.
    pub dataset: Dataset,
}

impl IngestBatch {
    /// A named batch.
    pub fn new(name: impl Into<String>, dataset: Dataset) -> Self {
        IngestBatch {
            name: name.into(),
            dataset,
        }
    }
}

/// How analytics state is recomputed when a generation folds in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeMode {
    /// Every generation recomputes analytics from scratch: `current/` is
    /// byte-identical to a one-shot run over the folded batches.
    Exact,
    /// K-means warm-starts from the previous generation's centroids (when
    /// K and feature width match). Cheaper, ε-equivalent: the relative
    /// SSE difference against a cold fit is bounded (asserted in tests).
    Warm,
}

impl RecomputeMode {
    /// Stable lowercase label recorded in the manifest.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecomputeMode::Exact => "exact",
            RecomputeMode::Warm => "warm",
        }
    }

    /// Parses `exact` / `warm` (case-insensitive).
    pub fn parse(raw: &str) -> Result<Self, String> {
        match raw.to_ascii_lowercase().as_str() {
            "exact" => Ok(RecomputeMode::Exact),
            "warm" => Ok(RecomputeMode::Warm),
            other => Err(format!(
                "invalid recompute mode {other:?}: expected \"exact\" or \"warm\""
            )),
        }
    }
}

/// The reference inputs shared by every generation of an ingest run.
pub struct IngestInputs<'a> {
    /// The referenced street map used by the cleaning pass.
    pub street_map: &'a StreetMap,
    /// The region hierarchy of the city under analysis.
    pub hierarchy: &'a RegionHierarchy,
    /// The *effective* configuration (expert suggestions already applied —
    /// [`crate::engine::Indice::config_with_suggestions`]).
    pub config: IndiceConfig,
    /// The execution runtime. Outputs are bitwise thread-count-invariant,
    /// so a run may be resumed at a different parallelism.
    pub runtime: RuntimeConfig,
}

/// How an ingest run executes.
pub struct IngestOptions<'a> {
    /// The ingest run directory (`generations.manifest.jsonl`, `gens/`,
    /// `current/`).
    pub run_dir: PathBuf,
    /// Fold the sealed generations already in `run_dir` instead of
    /// requiring it to be fresh.
    pub resume: bool,
    /// Analytics recompute mode for newly sealed generations.
    pub recompute: RecomputeMode,
    /// Injected crash point, honoured at the matching batch boundary.
    pub crash: Option<&'a IngestCrash>,
    /// Fault injector consulted while processing batches [`BatchScope`]
    /// selects (`None`: production run).
    pub injector: Option<&'a dyn FaultInjector>,
    /// Which batches the injector applies to (`None`: all of them).
    pub batch_scope: Option<&'a BatchScope>,
    /// Observability bundle (`None`: no recording).
    pub obs: Option<&'a epc_obs::Obs<'a>>,
}

impl<'a> IngestOptions<'a> {
    /// Options for a fresh, exact-mode ingest into `run_dir`.
    pub fn new(run_dir: impl Into<PathBuf>) -> Self {
        IngestOptions {
            run_dir: run_dir.into(),
            resume: false,
            recompute: RecomputeMode::Exact,
            crash: None,
            injector: None,
            batch_scope: None,
            obs: None,
        }
    }

    /// Allows folding a run directory that already holds sealed
    /// generations.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Selects the analytics recompute mode.
    pub fn with_recompute(mut self, mode: RecomputeMode) -> Self {
        self.recompute = mode;
        self
    }

    /// Injects a crash at a batch boundary.
    pub fn with_crash(mut self, crash: &'a IngestCrash) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Attaches a fault injector, active for batches in `scope` (all
    /// batches when no scope is set via [`IngestOptions::scoped_to`]).
    pub fn with_injector(mut self, injector: &'a dyn FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Restricts the injector to a subset of batch indices.
    pub fn scoped_to(mut self, scope: &'a BatchScope) -> Self {
        self.batch_scope = Some(scope);
        self
    }

    /// Attaches an observability bundle.
    pub fn with_obs(mut self, obs: &'a epc_obs::Obs<'a>) -> Self {
        self.obs = Some(obs);
        self
    }
}

/// Overall outcome of an ingest run, the worst over its generations.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// Every generation folded completely.
    Complete,
    /// At least one generation degraded; each reason says why.
    Degraded(Vec<String>),
    /// At least one batch was abandoned or a required stage failed.
    Failed(Vec<String>),
}

impl IngestOutcome {
    /// Process exit code: 0 complete, 3 degraded, 1 failed. (Injected
    /// crashes surface as `Err(IndiceError::CrashInjected)` and map
    /// to 70.)
    pub fn exit_code(&self) -> u8 {
        match self {
            IngestOutcome::Complete => 0,
            IngestOutcome::Degraded(_) => 3,
            IngestOutcome::Failed(_) => 1,
        }
    }
}

/// What an ingest run did.
#[derive(Debug)]
pub struct IngestOutput {
    /// The full generation manifest after the run (sealed prefix + newly
    /// sealed generations).
    pub entries: Vec<GenerationEntry>,
    /// The worst outcome over all generations.
    pub outcome: IngestOutcome,
    /// Batch names skipped because their sealed generation validated.
    pub sealed_skipped: Vec<String>,
    /// Batch names processed (sealed or abandoned) by this run.
    pub processed: Vec<String>,
    /// `true` when loading the generation manifest discarded a torn tail.
    pub recovered_torn_tail: bool,
    /// Why resume validation truncated the sealed prefix, if it did.
    pub resume_rejection: Option<String>,
    /// Records quarantined across all folded generations.
    pub quarantined_total: usize,
    /// `current/` files rewritten by this run.
    pub artifacts_written: usize,
    /// `current/` files carried byte-identical without rewriting.
    pub artifacts_carried: usize,
}

fn dur<T>(r: std::io::Result<T>, what: &str) -> Result<T, IndiceError> {
    r.map_err(|e| IndiceError::Durability(format!("{what}: {e}")))
}

/// The relative path of generation `seq`'s clean delta.
fn delta_rel(seq: usize) -> String {
    format!("{GENS_DIR}/{}/{CLEAN_DELTA_FILE}", gen_dir_name(seq))
}

/// An [`ArtifactRecord`] for `contents` at relative path `file`, equal to
/// what `write_atomic` would return for the same bytes.
fn record_for(file: &str, contents: &str) -> ArtifactRecord {
    ArtifactRecord {
        file: file.to_owned(),
        sha256: hash_hex(contents.as_bytes()),
        bytes: contents.len() as u64,
    }
}

/// Category selection, mirroring `PreprocessStage` exactly (the ingest
/// equivalence depends on selection commuting with concatenation, which
/// holds because it is a row-wise filter).
fn select_category(dataset: &Dataset, config: &IndiceConfig) -> Result<Dataset, IndiceError> {
    match &config.building_category {
        Some(cat) => Ok(Query::filtered(Predicate::eq(wk::BUILDING_CATEGORY, cat)).run(dataset)?),
        None => Ok(dataset.clone()),
    }
}

/// Validates the sealed prefix against the provided batches and the
/// on-disk deltas. Returns the number of trustworthy entries plus a
/// rejection message when a suffix is dropped.
fn validate_sealed_prefix(
    entries: &[GenerationEntry],
    batches: &[IngestBatch],
    batch_hashes: &[String],
    config_fp: &str,
    recompute: RecomputeMode,
    run_dir: &Path,
) -> (usize, Option<String>) {
    let reject = |i: usize, why: String| {
        (
            i,
            Some(format!(
                "ingest {}: sealed generation {i} rejected: {why}",
                run_dir.display()
            )),
        )
    };
    for (i, entry) in entries.iter().enumerate() {
        if i >= batches.len() {
            return reject(i, "no matching input batch".to_owned());
        }
        if entry.batch != batches[i].name {
            return reject(
                i,
                format!(
                    "batch name {:?} != provided {:?}",
                    entry.batch, batches[i].name
                ),
            );
        }
        if entry.batch_hash != batch_hashes[i] {
            return reject(i, "stale batch hash".to_owned());
        }
        if entry.config_fingerprint != config_fp {
            return reject(i, "stale config fingerprint".to_owned());
        }
        if entry.recompute != recompute.as_str() {
            return reject(
                i,
                format!("recompute mode changed from {:?}", entry.recompute),
            );
        }
        for rec in &entry.checkpoints {
            if let Err(e) = rec.read_verified(run_dir) {
                return reject(i, e.to_string());
            }
        }
    }
    (entries.len(), None)
}

/// Folds `batches` into `opts.run_dir` as sealed generations. See the
/// module docs for the layout and the commit-point discipline. `Err` is
/// reserved for durability I/O failures and injected crash points;
/// pipeline-level trouble (degraded stages, abandoned batches, required
/// stage failures) surfaces in the returned [`IngestOutcome`].
pub fn ingest(
    batches: &[IngestBatch],
    inputs: IngestInputs<'_>,
    stakeholder: Stakeholder,
    opts: &IngestOptions<'_>,
) -> Result<IngestOutput, IndiceError> {
    if batches.is_empty() {
        return Err(IndiceError::EmptyCollection("ingest batches"));
    }
    let run_dir = opts.run_dir.as_path();
    let current_dir = run_dir.join(CURRENT_DIR);
    dur(
        fs::create_dir_all(run_dir.join(GENS_DIR)),
        "creating ingest run directory",
    )?;
    dur(
        fs::create_dir_all(current_dir.join(CHECKPOINT_DIR)),
        "creating cumulative run directory",
    )?;

    let config_fp = config_fingerprint(
        &inputs.config,
        stakeholder,
        inputs.street_map,
        inputs.hierarchy,
    )?;
    let batch_hashes: Vec<String> = batches
        .iter()
        .map(|b| hash_hex(to_csv(&b.dataset).as_bytes()))
        .collect();

    // Load the sealed prefix; the hash chain must be intact before any
    // delta is folded.
    let manifest = GenerationManifest::at(run_dir);
    let (loaded, _tip) = manifest
        .load_validated()
        .map_err(|e| IndiceError::Durability(format!("loading generation manifest: {e}")))?;
    let recovered_torn_tail = loaded.recovered_torn_tail;
    if recovered_torn_tail {
        if let Some(obs) = opts.obs {
            obs.metrics().inc("generations_torn_tail_recovered", 1);
        }
    }
    let mut entries = loaded.entries;
    if !opts.resume && !entries.is_empty() {
        return Err(IndiceError::Durability(format!(
            "ingest run directory {} already holds {} sealed generation(s); \
             pass resume to fold them or choose a fresh directory",
            run_dir.display(),
            entries.len()
        )));
    }

    let (mut valid, mut resume_rejection) = if opts.resume {
        validate_sealed_prefix(
            &entries,
            batches,
            &batch_hashes,
            &config_fp,
            opts.recompute,
            run_dir,
        )
    } else {
        (0, None)
    };
    // When nothing is left to reprocess, the cumulative artifacts must
    // themselves verify — otherwise re-seal the last generation so the
    // rebuild heals `current/`.
    if valid == entries.len() && valid == batches.len() && valid > 0 {
        let last = &entries[valid - 1];
        if let Some(bad) = last
            .current
            .iter()
            .find(|rec| rec.read_verified(&current_dir).is_err())
        {
            valid -= 1;
            resume_rejection = Some(format!(
                "ingest {}: sealed generation {} rejected: cumulative artifact {} failed \
                 verification",
                run_dir.display(),
                valid,
                bad.file
            ));
        }
    }
    if valid < entries.len() {
        dur(
            manifest.rewrite(&entries[..valid]),
            "truncating generation manifest",
        )?;
        for entry in &entries[valid..] {
            // Dropped generations' delta dirs are rewritten on reprocess
            // (same file names); remove any that will not be.
            if entry.seq >= batches.len() {
                let _ = fs::remove_dir_all(run_dir.join(GENS_DIR).join(gen_dir_name(entry.seq)));
            }
        }
        entries.truncate(valid);
    }

    // Fold the sealed prefix: decode each generation's clean delta, carry
    // the geocoder-quota balance, and rebuild the cumulative raw input.
    let mut phases: Vec<CleanPhase> = Vec::new();
    let mut cumulative_raw: Option<Dataset> = None;
    let mut quota_used: usize = 0;
    let mut sealed_skipped: Vec<String> = Vec::new();
    let mut parent = GENESIS.to_owned();
    let mut prev_current: Vec<ArtifactRecord> = Vec::new();
    for entry in &entries {
        sealed_skipped.push(entry.batch.clone());
        parent = entry.chain_hash();
        prev_current = entry.current.clone();
        if let Some(obs) = opts.obs {
            obs.metrics().inc("ingest_generations_skipped", 1);
        }
        if entry.outcome == GenerationOutcome::Abandoned {
            continue;
        }
        let rec = entry.checkpoints.first().ok_or_else(|| {
            IndiceError::Durability(format!(
                "sealed generation {} has no clean delta checkpoint",
                entry.seq
            ))
        })?;
        let bytes = dur(
            rec.read_verified(run_dir),
            &format!("re-reading clean delta of generation {}", entry.seq),
        )?;
        let text = String::from_utf8(bytes).map_err(|e| {
            IndiceError::Durability(format!(
                "clean delta of generation {} not UTF-8: {e}",
                entry.seq
            ))
        })?;
        let phase = checkpoint::decode_clean_phase(&text).map_err(|e| {
            IndiceError::Durability(format!(
                "decoding clean delta of generation {}: {e}",
                entry.seq
            ))
        })?;
        quota_used += phase.cleaning.geocoder_requests;
        match &mut cumulative_raw {
            Some(cum) => cum.append(&batches[entry.seq].dataset)?,
            None => cumulative_raw = Some(batches[entry.seq].dataset.clone()),
        }
        phases.push(phase);
    }

    // Warm-start state for the first reprocessed generation comes from
    // the sealed cumulative analytics checkpoint, when one exists.
    let mut warm_centroids: Option<epc_mining::Matrix> = None;
    if opts.recompute == RecomputeMode::Warm && valid > 0 {
        if let Ok(text) =
            fs::read_to_string(current_dir.join(CHECKPOINT_DIR).join("analytics.ckpt.json"))
        {
            if let Ok(a) = checkpoint::decode_analytics(&text) {
                warm_centroids = Some(a.kmeans.centroids);
            }
        }
    }

    let mut processed: Vec<String> = Vec::new();
    let mut failure: Option<String> = None;
    let mut written_total = 0usize;
    let mut carried_total = 0usize;

    for (i, batch) in batches.iter().enumerate().skip(valid) {
        let crash_here = opts.crash.filter(|c| c.batch() == i);
        if let Some(c @ IngestCrash::BeforeBatch { .. }) = crash_here {
            return Err(IndiceError::CrashInjected {
                stage: format!("ingest batch {i}"),
                point: c.point().to_owned(),
            });
        }

        let injector: Option<&dyn FaultInjector> = opts
            .injector
            .filter(|_| opts.batch_scope.is_none_or(|s| s.applies_to(i)));

        // Per-batch clean phase. A batch nothing survives is abandoned:
        // its generation records the reason, and neither the cumulative
        // state nor `current/` changes.
        let selected = select_category(&batch.dataset, &inputs.config)?;
        let quota = inputs.config.geocoder_quota.saturating_sub(quota_used);
        let cleaned = if selected.is_empty() {
            Err(format!(
                "batch {:?} abandoned: no record matches the configured building category",
                batch.name
            ))
        } else {
            match clean_phase(
                selected,
                inputs.street_map,
                &inputs.config,
                &inputs.runtime,
                injector,
                opts.obs,
                quota,
            ) {
                Ok(phase) => Ok(phase),
                Err(IndiceError::EmptyCollection(what)) => Err(format!(
                    "batch {:?} abandoned: nothing survived {what}",
                    batch.name
                )),
                Err(e) => return Err(e),
            }
        };

        let entry = match cleaned {
            Err(reason) => {
                if let Some(obs) = opts.obs {
                    obs.metrics().inc("ingest_batches_abandoned", 1);
                }
                GenerationEntry {
                    seq: i,
                    batch: batch.name.clone(),
                    batch_hash: batch_hashes[i].clone(),
                    config_fingerprint: config_fp.clone(),
                    cumulative_input_hash: cumulative_raw
                        .as_ref()
                        .map(|d| hash_hex(to_csv(d).as_bytes()))
                        .unwrap_or_else(|| hash_hex(b"")),
                    parent: parent.clone(),
                    outcome: GenerationOutcome::Abandoned,
                    reasons: vec![reason],
                    recompute: opts.recompute.as_str().to_owned(),
                    records_in: batch.dataset.n_rows(),
                    records_kept: 0,
                    quarantined: 0,
                    faults: BTreeMap::new(),
                    artifacts_written: 0,
                    artifacts_carried: prev_current.len(),
                    checkpoints: Vec::new(),
                    current: prev_current.clone(),
                }
            }
            Ok(phase) => {
                let batch_input_rows = phase.input_rows;
                let batch_quarantined = phase.quarantine.len();
                let batch_faults = phase.quarantine.histogram();
                quota_used += phase.cleaning.geocoder_requests;

                // Seal the clean delta before touching cumulative state.
                let delta_text = checkpoint::encode_clean_phase(&phase);
                let rel = delta_rel(i);
                let written = dur(
                    write_delta(&run_dir.join(&rel), delta_text.as_bytes()),
                    "writing clean delta",
                )?;
                let delta_rec = ArtifactRecord {
                    file: rel,
                    sha256: written.sha256,
                    bytes: written.bytes,
                };

                // Fold the batch into the cumulative state.
                let batch_offset: usize = phases.iter().map(|p| p.input_rows).sum();
                match &mut cumulative_raw {
                    Some(cum) => cum.append(&batch.dataset)?,
                    None => cumulative_raw = Some(batch.dataset.clone()),
                }
                phases.push(phase);
                let merged = merge_clean_phases(phases.clone())?;
                let merged_input_rows = merged.input_rows;
                let cum = cumulative_raw
                    .as_ref()
                    .ok_or_else(|| IndiceError::Internal("cumulative input missing".into()))?;
                let cumulative_input_hash = hash_hex(to_csv(cum).as_bytes());

                // Rebuild the cumulative pipeline products — outliers and
                // analytics are global, so they run over the merged data.
                let (pre, quarantine) =
                    outlier_phase(merged, &inputs.config, &inputs.runtime, opts.obs)?;
                let records_kept = pre
                    .kept_rows
                    .iter()
                    .filter(|&&r| r >= batch_offset && r < batch_offset + batch_input_rows)
                    .count();

                let mut ctx = PipelineContext::new(
                    cum,
                    inputs.street_map,
                    inputs.hierarchy,
                    inputs.config.clone(),
                    stakeholder,
                    inputs.runtime,
                );
                if let Some(inj) = injector {
                    ctx = ctx.with_injector(inj);
                }
                if let Some(obs) = opts.obs {
                    ctx = ctx.with_obs(obs);
                }
                ctx.preprocess = Some(pre);
                ctx.quarantine = quarantine;
                if opts.recompute == RecomputeMode::Warm {
                    ctx.warm_centroids = warm_centroids.take();
                }

                // Synthesized preprocess stage report: identical to what a
                // one-shot run over the concatenated input records.
                let mut report = PipelineReport::new(inputs.runtime.threads);
                report.push(StageReport {
                    name: "preprocess".to_owned(),
                    wall: Duration::ZERO,
                    records_in: merged_input_rows,
                    records_out: ctx
                        .preprocess
                        .as_ref()
                        .map(|p| p.dataset.n_rows())
                        .unwrap_or(0),
                    quarantined: ctx.quarantine.len(),
                    faults: ctx.quarantine.histogram(),
                });

                // Analytics + dashboard over the cumulative data, under
                // the same supervisor policies as a one-shot run.
                let stages = supervised_stages();
                let mut stage_reasons: Vec<Vec<String>> = vec![Vec::new()];
                let mut stage_failed = None;
                for (stage, policy) in &stages[1..] {
                    match execute_stage_supervised(*stage, *policy, &mut ctx, &mut report, None) {
                        StageExec::Succeeded => stage_reasons.push(Vec::new()),
                        StageExec::Degraded(reason) => stage_reasons.push(vec![reason]),
                        StageExec::Failed(e) => {
                            stage_failed = Some(format!(
                                "batch {:?}: required stage failed: {e}",
                                batch.name
                            ));
                            break;
                        }
                    }
                }
                if let Some(why) = stage_failed {
                    // Mirror the durable runner: a failed required stage
                    // commits nothing; the sealed prefix stays intact and
                    // a rerun replays this batch.
                    failure = Some(why);
                    break;
                }
                if opts.recompute == RecomputeMode::Warm {
                    warm_centroids = ctx.analytics.as_ref().map(|a| a.kmeans.centroids.clone());
                }

                // Compose the full `current/` file set (content-first so
                // unchanged files can be carried without rewriting).
                let mut files: Vec<(String, String)> = Vec::new();
                let mut stage_ckpts: Vec<Vec<ArtifactRecord>> = Vec::new();
                {
                    let pre_ref = ctx.preprocess.as_ref().ok_or_else(|| {
                        IndiceError::Internal("preprocess product missing".into())
                    })?;
                    let path = format!("{CHECKPOINT_DIR}/preprocess.ckpt.json");
                    let text = checkpoint::encode_preprocess(pre_ref, &ctx.quarantine);
                    stage_ckpts.push(vec![record_for(&path, &text)]);
                    files.push((path, text));
                }
                match ctx.analytics.as_ref() {
                    Some(a) => {
                        let path = format!("{CHECKPOINT_DIR}/analytics.ckpt.json");
                        let text = checkpoint::encode_analytics(a);
                        stage_ckpts.push(vec![record_for(&path, &text)]);
                        files.push((path, text));
                    }
                    None => stage_ckpts.push(Vec::new()),
                }
                match ctx.dashboard.as_ref() {
                    Some(d) => {
                        let mut recs = Vec::with_capacity(ctx.artifacts.len() + 1);
                        let html = d.render_html();
                        recs.push(record_for(DASHBOARD_FILE, &html));
                        files.push((DASHBOARD_FILE.to_owned(), html));
                        for (file, content) in &ctx.artifacts {
                            recs.push(record_for(file, content));
                            files.push((file.clone(), content.clone()));
                        }
                        stage_ckpts.push(recs);
                    }
                    None => stage_ckpts.push(Vec::new()),
                }

                // The cumulative journal: byte-identical to the one a
                // one-shot durable run would have appended.
                let mut journal_text = String::new();
                for (si, ((stage, _), ckpts)) in stages.iter().zip(&stage_ckpts).enumerate() {
                    let name = stage.name();
                    let sr = report.stages.get(si).ok_or_else(|| {
                        IndiceError::Internal("stage executed without a report entry".into())
                    })?;
                    let entry = StageEntry {
                        seq: si,
                        stage: name.to_owned(),
                        config_fingerprint: config_fp.clone(),
                        input_hash: cumulative_input_hash.clone(),
                        degraded: !product_present(&ctx, name),
                        reasons: stage_reasons.get(si).cloned().unwrap_or_default(),
                        records_in: sr.records_in,
                        records_out: sr.records_out,
                        quarantined: sr.quarantined,
                        faults: sr.faults.clone(),
                        checkpoints: ckpts.clone(),
                    };
                    let line = serde_json::to_string(&entry).map_err(|e| {
                        IndiceError::Durability(format!("serializing journal entry: {e}"))
                    })?;
                    journal_text.push_str(&line);
                    journal_text.push('\n');
                }
                files.push((MANIFEST_FILE.to_owned(), journal_text));

                // Write changed files, carry the rest; drop leftovers so
                // `current/` stays tree-identical to a one-shot run dir.
                let prev_map: BTreeMap<&str, &ArtifactRecord> =
                    prev_current.iter().map(|r| (r.file.as_str(), r)).collect();
                let new_names: BTreeSet<&str> = files.iter().map(|(f, _)| f.as_str()).collect();
                for rec in &prev_current {
                    if !new_names.contains(rec.file.as_str()) {
                        let _ = fs::remove_file(current_dir.join(&rec.file));
                    }
                }
                let mut current_records = Vec::with_capacity(files.len());
                let mut written = 0usize;
                let mut carried = 0usize;
                for (file, content) in &files {
                    let rec = record_for(file, content);
                    let unchanged = prev_map.get(file.as_str()) == Some(&&rec)
                        && rec.read_verified(&current_dir).is_ok();
                    if unchanged {
                        carried += 1;
                    } else {
                        dur(
                            write_delta(&current_dir.join(file), content.as_bytes()),
                            "writing cumulative artifact",
                        )?;
                        written += 1;
                    }
                    current_records.push(rec);
                }
                written_total += written;
                carried_total += carried;
                if let Some(obs) = opts.obs {
                    let m = obs.metrics();
                    m.inc("ingest_current_written", written as u64);
                    m.inc("ingest_current_carried", carried as u64);
                }

                let gen_reasons = match finish_outcome(&ctx, stage_reasons.concat()) {
                    RunOutcome::Complete => Vec::new(),
                    RunOutcome::Degraded(rs) => rs,
                    RunOutcome::Failed(e) => {
                        return Err(IndiceError::Internal(format!(
                            "finish_outcome reported failure for a committed generation: {e}"
                        )))
                    }
                };
                let outcome = if gen_reasons.is_empty() {
                    GenerationOutcome::Complete
                } else {
                    GenerationOutcome::Degraded
                };
                GenerationEntry {
                    seq: i,
                    batch: batch.name.clone(),
                    batch_hash: batch_hashes[i].clone(),
                    config_fingerprint: config_fp.clone(),
                    cumulative_input_hash,
                    parent: parent.clone(),
                    outcome,
                    reasons: gen_reasons,
                    recompute: opts.recompute.as_str().to_owned(),
                    records_in: batch_input_rows,
                    records_kept,
                    quarantined: batch_quarantined,
                    faults: batch_faults,
                    artifacts_written: written,
                    artifacts_carried: carried,
                    checkpoints: vec![delta_rec],
                    current: current_records,
                }
            }
        };

        // Commit point: everything the entry references is durable; the
        // manifest line seals the generation.
        if let Some(c @ IngestCrash::TornBatch { .. }) = crash_here {
            if let Some(first) = entry.checkpoints.first() {
                tear_checkpoint(run_dir, first)?;
            }
            dur(manifest.append(&entry), "appending generation entry")?;
            return Err(IndiceError::CrashInjected {
                stage: format!("ingest batch {i}"),
                point: c.point().to_owned(),
            });
        }
        dur(manifest.append(&entry), "appending generation entry")?;
        if let Some(obs) = opts.obs {
            obs.metrics().inc("ingest_generations_sealed", 1);
        }
        processed.push(batch.name.clone());
        parent = entry.chain_hash();
        prev_current = entry.current.clone();
        entries.push(entry);
        if let Some(c @ IngestCrash::AfterCommit { .. }) = crash_here {
            return Err(IndiceError::CrashInjected {
                stage: format!("ingest batch {i}"),
                point: c.point().to_owned(),
            });
        }
    }

    // The worst outcome across generations, with reasons in sequence
    // order (exact duplicates collapsed — cumulative reasons repeat).
    let mut degraded_reasons: Vec<String> = Vec::new();
    let mut failed_reasons: Vec<String> = Vec::new();
    for entry in &entries {
        let sink = match entry.outcome {
            GenerationOutcome::Abandoned => &mut failed_reasons,
            GenerationOutcome::Degraded => &mut degraded_reasons,
            GenerationOutcome::Complete => continue,
        };
        for reason in &entry.reasons {
            if !sink.contains(reason) {
                sink.push(reason.clone());
            }
        }
    }
    if let Some(why) = failure {
        failed_reasons.push(why);
    }
    let outcome = if !failed_reasons.is_empty() {
        IngestOutcome::Failed(failed_reasons)
    } else if !degraded_reasons.is_empty() {
        IngestOutcome::Degraded(degraded_reasons)
    } else {
        IngestOutcome::Complete
    };

    let quarantined_total = entries.iter().map(|e| e.quarantined).sum();
    Ok(IngestOutput {
        entries,
        outcome,
        sealed_skipped,
        processed,
        recovered_torn_tail,
        resume_rejection,
        quarantined_total,
        artifacts_written: written_total,
        artifacts_carried: carried_total,
    })
}
