//! # indice
//!
//! INDICE — *INformative DynamiC dashboard Engine* — the core library of
//! this reproduction of Cerquitelli et al., "Exploring energy performance
//! certificates through visualization" (EDBT/ICDT Workshops 2019, BigVis).
//!
//! INDICE analyses collections of Energy Performance Certificates in three
//! stages, mirroring Figure 1 of the paper:
//!
//! 1. **Data pre-processing** ([`preprocess`]) — geospatial cleaning of
//!    addresses/ZIP/coordinates against a referenced street map with a
//!    geocoder fallback (§2.1.1), and outlier detection & removal with the
//!    boxplot / gESD / MAD univariate methods and DBSCAN multivariate
//!    detection (§2.1.2);
//! 2. **Data selection & analytics** ([`analytics`]) — querying,
//!    correlation screening, K-means clustering with elbow-based K
//!    selection, CART-driven discretization, and association-rule mining
//!    with support/confidence/lift/conviction (§2.2);
//! 3. **Informative dashboards** ([`dashboard`]) — choropleth, scatter and
//!    cluster-marker maps at city/district/neighbourhood/unit granularity,
//!    frequency distributions, rule tables and correlation matrices,
//!    assembled into self-contained HTML + GeoJSON artifacts (§2.3).
//!
//! The stages are first-class [`pipeline::Stage`] values executed over a
//! shared [`pipeline::PipelineContext`] by a staged executor that times
//! every block and runs each block's hot loops data-parallel through
//! [`epc_runtime`] — deterministically: outputs are bitwise identical for
//! any thread budget (set it with `INDICE_THREADS` or
//! [`engine::Indice::with_runtime`]).
//!
//! The pipeline is fault-tolerant: malformed records are diverted into a
//! typed [`epc_model::Quarantine`] instead of panicking, transient
//! geocoder failures are retried with deterministic backoff (falling back
//! to district centroids once the budget is exhausted), and
//! [`engine::Indice::run_supervised`] wraps the stages in a supervisor
//! that converts stage failures into graceful degradation — an analytics
//! failure still yields a dashboard with maps and distributions plus an
//! "analytics unavailable" panel, and the [`pipeline::RunOutcome`] says
//! whether the run was complete, degraded, or failed. The companion
//! `epc-faults` crate injects deterministic faults for chaos testing.
//!
//! The [`engine::Indice`] type ties the stages together:
//!
//! ```no_run
//! use indice::engine::Indice;
//! use indice::config::IndiceConfig;
//! use epc_query::Stakeholder;
//! use epc_synth::{EpcGenerator, SynthConfig, NoiseConfig};
//!
//! let mut collection = EpcGenerator::new(SynthConfig {
//!     n_records: 5_000,
//!     ..SynthConfig::default()
//! })
//! .generate();
//! epc_synth::noise::apply_noise(&mut collection, &NoiseConfig::default());
//!
//! let engine = Indice::from_collection(collection, IndiceConfig::default());
//! let output = engine.run(Stakeholder::PublicAdministration).unwrap();
//! println!("{} clusters, {} rules", output.analytics.chosen_k, output.analytics.rules.len());
//! std::fs::write("dashboard.html", output.dashboard.render_html()).unwrap();
//! ```

pub mod analytics;
pub mod autoconfig;
pub mod checkpoint;
pub(crate) mod columnar;
pub mod config;
pub mod dashboard;
pub mod durable;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod generations;
pub mod outliers;
pub mod pipeline;
pub mod preprocess;

pub use autoconfig::{suggest_config, ConfigAdvice};
pub use config::{
    AnalyticsConfig, FaultToleranceConfig, IndiceConfig, KSelection, OutlierConfig, RuleStageConfig,
};
pub use durable::{DurableOptions, DurableOutput};
pub use engine::{Indice, IndiceOutput, SupervisedOutput};
pub use error::IndiceError;
pub use fleet::{
    run_fleet, FleetRunOptions, FleetRunOutput, CITIES_DIR, CITY_METRICS_FILE,
    FLEET_DASHBOARD_FILE, FLEET_METRICS_FILE,
};
pub use generations::{
    ingest, IngestBatch, IngestInputs, IngestOptions, IngestOutcome, IngestOutput, RecomputeMode,
    CLEAN_DELTA_FILE,
};
pub use outliers::UnivariateMethod;
pub use pipeline::{
    run_pipeline, run_pipeline_supervised, run_pipeline_supervised_with, supervised_stages,
    AnalyticsStage, DashboardStage, PipelineContext, PreprocessStage, RunOutcome, Stage,
    StageDeadline, StagePolicy, StageStats,
};
