//! Automatic configuration suggestion — the future-work item of §4: "the
//! analysis process should be empowered by an automatic tool suggesting
//! appropriate analysis configurations for the considered datasets."
//!
//! The advisor inspects the dataset's statistical shape and proposes an
//! [`IndiceConfig`]:
//!
//! * outlier method per attribute — heavily skewed or heavy-tailed
//!   attributes get the robust MAD rule; near-symmetric light-tailed ones
//!   the Tukey boxplot; moderately skewed ones gESD;
//! * the K sweep range — scaled with √(n/2) capped to a practical band;
//! * the Apriori support threshold — lower for larger collections (rare
//!   patterns become statistically meaningful with more transactions);
//! * the geocoder quota — proportional to the collection size.

use crate::config::{AnalyticsConfig, IndiceConfig, KSelection, OutlierConfig, RuleStageConfig};
use crate::outliers::UnivariateMethod;
use epc_model::Dataset;
use epc_stats::descriptive::{excess_kurtosis, skewness};

/// Why the advisor picked a method for an attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeAdvice {
    /// Attribute name.
    pub attribute: String,
    /// Sample skewness (NaN when undefined).
    pub skewness: f64,
    /// Excess kurtosis (NaN when undefined).
    pub kurtosis: f64,
    /// The method chosen.
    pub method: UnivariateMethod,
    /// One-line human-readable rationale (shown in the dashboard's
    /// settings panel).
    pub rationale: String,
}

/// The advisor's full proposal.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigAdvice {
    /// The proposed configuration (start from it, override freely).
    pub config: IndiceConfig,
    /// Per-attribute outlier-method advice with rationales.
    pub attribute_advice: Vec<AttributeAdvice>,
}

/// Skewness above which a distribution counts as heavily skewed.
const HEAVY_SKEW: f64 = 1.5;
/// Skewness above which a distribution counts as moderately skewed.
const MODERATE_SKEW: f64 = 0.5;
/// Excess kurtosis above which tails count as heavy.
const HEAVY_TAILS: f64 = 4.0;

/// Proposes a full configuration for `dataset`, starting from `base`
/// (typically [`IndiceConfig::default`]) and adjusting the data-dependent
/// knobs.
pub fn suggest_config(dataset: &Dataset, base: &IndiceConfig) -> ConfigAdvice {
    let n = dataset.n_rows();
    let mut attribute_advice = Vec::new();
    let mut univariate = Vec::new();

    for (attr, _) in &base.outliers.univariate {
        let advice = advise_attribute(dataset, attr, n);
        univariate.push((attr.clone(), advice.method.clone()));
        attribute_advice.push(advice);
    }

    // K sweep: √(n/2) heuristic upper bound, clamped to a practical band.
    let k_max = ((n as f64 / 2.0).sqrt() as usize).clamp(4, 12);

    // Support threshold: rarer patterns are trustworthy on bigger data.
    let min_support = match n {
        0..=1_000 => 0.10,
        1_001..=10_000 => 0.05,
        _ => 0.02,
    };

    let config = IndiceConfig {
        outliers: OutlierConfig {
            univariate,
            ..base.outliers.clone()
        },
        analytics: AnalyticsConfig {
            k: KSelection::Elbow { k_min: 2, k_max },
            ..base.analytics.clone()
        },
        rule_stage: RuleStageConfig {
            rules: epc_mining::rules::RuleConfig {
                min_support,
                ..base.rule_stage.rules.clone()
            },
            ..base.rule_stage.clone()
        },
        geocoder_quota: (n / 10).clamp(100, 10_000),
        ..base.clone()
    };
    ConfigAdvice {
        config,
        attribute_advice,
    }
}

fn advise_attribute(dataset: &Dataset, attr: &str, n: usize) -> AttributeAdvice {
    let values = dataset
        .schema()
        .attr_id(attr)
        .map(|id| dataset.numeric_values(id))
        .unwrap_or_default();
    let skew = skewness(&values).unwrap_or(f64::NAN);
    let kurt = excess_kurtosis(&values).unwrap_or(f64::NAN);
    let (method, rationale) = if skew.is_nan() {
        (
            UnivariateMethod::default_mad(),
            "insufficient data: MAD as the safe default".to_owned(),
        )
    } else if skew.abs() >= HEAVY_SKEW || kurt >= HEAVY_TAILS {
        (
            UnivariateMethod::default_mad(),
            format!("heavily skewed/heavy-tailed (skew {skew:.2}, kurt {kurt:.2}): robust MAD"),
        )
    } else if skew.abs() >= MODERATE_SKEW {
        (
            UnivariateMethod::default_gesd_for(n),
            format!("moderately skewed (skew {skew:.2}): sequential gESD"),
        )
    } else {
        (
            UnivariateMethod::default_boxplot(),
            format!("near-symmetric (skew {skew:.2}): Tukey boxplot"),
        )
    };
    AttributeAdvice {
        attribute: attr.to_owned(),
        skewness: skew,
        kurtosis: kurt,
        method,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};

    fn dataset(n: usize) -> Dataset {
        EpcGenerator::new(SynthConfig {
            n_records: n,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate()
        .dataset
    }

    #[test]
    fn advice_covers_every_configured_attribute() {
        let ds = dataset(800);
        let advice = suggest_config(&ds, &IndiceConfig::default());
        assert_eq!(
            advice.attribute_advice.len(),
            IndiceConfig::default().outliers.univariate.len()
        );
        for a in &advice.attribute_advice {
            assert!(!a.rationale.is_empty());
        }
        // The proposed config references the same attributes.
        let attrs: Vec<&String> = advice
            .config
            .outliers
            .univariate
            .iter()
            .map(|(a, _)| a)
            .collect();
        for a in &advice.attribute_advice {
            assert!(attrs.contains(&&a.attribute));
        }
    }

    #[test]
    fn support_threshold_shrinks_with_scale() {
        let small = suggest_config(&dataset(500), &IndiceConfig::default());
        let large = suggest_config(&dataset(12_000), &IndiceConfig::default());
        assert!(
            small.config.rule_stage.rules.min_support > large.config.rule_stage.rules.min_support
        );
    }

    #[test]
    fn k_range_scales_with_n_but_stays_bounded() {
        let small = suggest_config(&dataset(200), &IndiceConfig::default());
        let large = suggest_config(&dataset(12_000), &IndiceConfig::default());
        let k_of = |c: &IndiceConfig| match c.analytics.k {
            KSelection::Elbow { k_max, .. } => k_max,
            _ => panic!("advisor always proposes elbow"),
        };
        assert!(k_of(&small.config) <= k_of(&large.config));
        assert!(k_of(&large.config) <= 12);
        assert!(k_of(&small.config) >= 4);
    }

    #[test]
    fn suggested_config_actually_runs() {
        let ds = dataset(700);
        let advice = suggest_config(&ds, &IndiceConfig::default());
        let out = crate::analytics::analyze(&ds, &advice.config).unwrap();
        assert!(out.chosen_k >= 2);
    }

    #[test]
    fn skewed_attributes_get_robust_methods() {
        // heat_surface is log-normal in the generator → clearly skewed →
        // never the plain boxplot.
        let ds = dataset(2_000);
        let mut cfg = IndiceConfig::default();
        cfg.outliers
            .univariate
            .push(("heat_surface".to_owned(), UnivariateMethod::default_mad()));
        let advice = suggest_config(&ds, &cfg);
        let hs = advice
            .attribute_advice
            .iter()
            .find(|a| a.attribute == "heat_surface")
            .unwrap();
        assert!(hs.skewness > MODERATE_SKEW, "skew {}", hs.skewness);
        assert_ne!(hs.method.name(), "boxplot");
    }

    #[test]
    fn unknown_attribute_defaults_safely() {
        let ds = dataset(300);
        let mut cfg = IndiceConfig::default();
        cfg.outliers
            .univariate
            .push(("ghost".to_owned(), UnivariateMethod::default_mad()));
        let advice = suggest_config(&ds, &cfg);
        let ghost = advice
            .attribute_advice
            .iter()
            .find(|a| a.attribute == "ghost")
            .unwrap();
        assert!(ghost.skewness.is_nan());
        assert_eq!(ghost.method, UnivariateMethod::default_mad());
    }
}
