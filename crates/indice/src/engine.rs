//! The INDICE engine: the three pipeline stages behind one handle, plus the
//! expert-configuration suggestion loop of §2.1.2.

use crate::analytics::AnalyticsOutput;
use crate::config::IndiceConfig;
use crate::error::IndiceError;
use crate::outliers::UnivariateMethod;
use crate::pipeline::{
    run_pipeline, run_pipeline_supervised, standard_stages, supervised_stages, PipelineContext,
    RunOutcome,
};
use crate::preprocess::PreprocessOutput;
use epc_faults::FaultInjector;
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_model::{Dataset, Quarantine};
use epc_query::config_store::ExpertConfigStore;
use epc_query::stakeholder::Stakeholder;
use epc_runtime::{PipelineReport, RuntimeConfig};
use epc_synth::epcgen::SyntheticCollection;
use epc_viz::dashboard::Dashboard;
use std::collections::BTreeMap;

/// The result of one full pipeline run.
#[derive(Debug, Clone)]
pub struct IndiceOutput {
    /// Stage-1 output (cleaned dataset + reports).
    pub preprocess: PreprocessOutput,
    /// Stage-2 output (clusters, rules, correlations).
    pub analytics: AnalyticsOutput,
    /// Stage-3 dashboard.
    pub dashboard: Dashboard,
    /// Standalone artifacts (SVG/GeoJSON/text), file name → content.
    pub artifacts: BTreeMap<String, String>,
}

/// The result of one supervised (fault-tolerant) pipeline run. Unlike
/// [`IndiceOutput`], every stage product is optional: a degraded run may
/// be missing analytics, a failed run most products.
#[derive(Debug)]
pub struct SupervisedOutput {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Per-stage instrumentation, including quarantine accounting.
    pub report: PipelineReport,
    /// Stage-1 output, when preprocessing succeeded.
    pub preprocess: Option<PreprocessOutput>,
    /// Stage-2 output, when analytics succeeded.
    pub analytics: Option<AnalyticsOutput>,
    /// Stage-3 dashboard, when it was rendered (possibly degraded).
    pub dashboard: Option<Dashboard>,
    /// Standalone artifacts, file name → content.
    pub artifacts: BTreeMap<String, String>,
    /// Records diverted out of the run, with their faults.
    pub quarantine: Quarantine,
    /// Stages the supervisor degraded (skipped after failure).
    pub degraded_stages: Vec<String>,
}

/// The INDICE engine.
pub struct Indice {
    dataset: Dataset,
    street_map: StreetMap,
    hierarchy: RegionHierarchy,
    config: IndiceConfig,
    runtime: RuntimeConfig,
    expert_store: ExpertConfigStore<UnivariateMethod>,
}

impl Indice {
    /// Creates an engine from its raw parts, executing on the machine's
    /// default thread budget (override with [`Indice::with_runtime`]).
    pub fn new(
        dataset: Dataset,
        street_map: StreetMap,
        hierarchy: RegionHierarchy,
        config: IndiceConfig,
    ) -> Self {
        Indice {
            dataset,
            street_map,
            hierarchy,
            config,
            runtime: RuntimeConfig::default(),
            expert_store: ExpertConfigStore::new(),
        }
    }

    /// Sets the execution runtime (builder style). Outputs are bitwise
    /// identical for any thread budget — the runtime only changes how fast
    /// they are produced.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Replaces the execution runtime in place.
    pub fn set_runtime(&mut self, runtime: RuntimeConfig) {
        self.runtime = runtime;
    }

    /// The engine's execution runtime.
    pub fn runtime(&self) -> RuntimeConfig {
        self.runtime
    }

    /// Creates an engine directly from a synthetic collection (the usual
    /// entry point of examples and benchmarks).
    pub fn from_collection(collection: SyntheticCollection, config: IndiceConfig) -> Self {
        Indice::new(
            collection.dataset,
            collection.city.street_map,
            collection.city.hierarchy,
            config,
        )
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IndiceConfig {
        &self.config
    }

    /// The input dataset (before any pipeline stage).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The region hierarchy of the city under analysis.
    pub fn hierarchy(&self) -> &RegionHierarchy {
        &self.hierarchy
    }

    /// Records an expert user's outlier-method choice for an attribute;
    /// choices accumulate as suggested defaults for non-experts (§2.1.2).
    /// Calls from non-expert stakeholders are ignored.
    pub fn record_outlier_choice(
        &self,
        stakeholder: Stakeholder,
        attribute: &str,
        method: UnivariateMethod,
    ) {
        if stakeholder.is_expert() {
            self.expert_store.record(attribute, method);
        }
    }

    /// The outlier method most used by experts for `attribute`, if any —
    /// what a non-expert user is offered.
    pub fn suggested_outlier_method(&self, attribute: &str) -> Option<UnivariateMethod> {
        self.expert_store.suggest(attribute)
    }

    /// An effective configuration where attributes with recorded expert
    /// choices use the suggested method instead of the built-in default.
    pub fn config_with_suggestions(&self) -> IndiceConfig {
        let mut cfg = self.config.clone();
        for (attr, method) in &mut cfg.outliers.univariate {
            if let Some(suggested) = self.expert_store.suggest(attr) {
                *method = suggested;
            }
        }
        cfg
    }

    /// Runs the full pipeline for a stakeholder: category selection →
    /// pre-processing → analytics → dashboard.
    pub fn run(&self, stakeholder: Stakeholder) -> Result<IndiceOutput, IndiceError> {
        self.run_detailed(stakeholder).map(|(output, _)| output)
    }

    /// Like [`Indice::run`], additionally returning the per-stage
    /// instrumentation report (wall time and record counts per block).
    pub fn run_detailed(
        &self,
        stakeholder: Stakeholder,
    ) -> Result<(IndiceOutput, PipelineReport), IndiceError> {
        let config = self.config_with_suggestions();
        let mut ctx = PipelineContext::new(
            &self.dataset,
            &self.street_map,
            &self.hierarchy,
            config,
            stakeholder,
            self.runtime,
        );
        let report = run_pipeline(&standard_stages(), &mut ctx)?;
        let missing = |what: &str| {
            IndiceError::Internal(format!("pipeline ran but produced no {what} output"))
        };
        let output = IndiceOutput {
            preprocess: ctx.preprocess.ok_or_else(|| missing("preprocess"))?,
            analytics: ctx.analytics.ok_or_else(|| missing("analytics"))?,
            dashboard: ctx.dashboard.ok_or_else(|| missing("dashboard"))?,
            artifacts: ctx.artifacts,
        };
        Ok((output, report))
    }

    /// Runs the pipeline under the stage supervisor: stage panics are
    /// caught, analytics failures degrade the dashboard instead of
    /// aborting, and quarantined records are accounted for. Never returns
    /// `Err` — failure is [`RunOutcome::Failed`] inside the output.
    pub fn run_supervised(&self, stakeholder: Stakeholder) -> SupervisedOutput {
        self.run_supervised_inner(stakeholder, None, None)
    }

    /// Like [`Indice::run_supervised`], with a fault injector attached —
    /// the chaos-testing entry point.
    pub fn run_supervised_with_faults(
        &self,
        stakeholder: Stakeholder,
        injector: &dyn FaultInjector,
    ) -> SupervisedOutput {
        self.run_supervised_inner(stakeholder, Some(injector), None)
    }

    /// Like [`Indice::run_supervised`], with an observability bundle
    /// attached: stage spans, kernel trace points, and metrics land in
    /// `obs`, and stage timers read the bundle's clock. The pipeline
    /// products are exactly what [`Indice::run_supervised`] produces.
    pub fn run_observed<'a>(
        &'a self,
        stakeholder: Stakeholder,
        obs: &'a epc_obs::Obs<'a>,
    ) -> SupervisedOutput {
        self.run_supervised_inner(stakeholder, None, Some(obs))
    }

    fn run_supervised_inner<'a>(
        &'a self,
        stakeholder: Stakeholder,
        injector: Option<&'a dyn FaultInjector>,
        obs: Option<&'a epc_obs::Obs<'a>>,
    ) -> SupervisedOutput {
        let config = self.config_with_suggestions();
        let mut ctx = PipelineContext::new(
            &self.dataset,
            &self.street_map,
            &self.hierarchy,
            config,
            stakeholder,
            self.runtime,
        );
        if let Some(injector) = injector {
            ctx = ctx.with_injector(injector);
        }
        if let Some(obs) = obs {
            ctx = ctx.with_obs(obs);
        }
        let (outcome, report) = run_pipeline_supervised(&supervised_stages(), &mut ctx);
        SupervisedOutput {
            outcome,
            report,
            preprocess: ctx.preprocess,
            analytics: ctx.analytics,
            dashboard: ctx.dashboard,
            artifacts: ctx.artifacts,
            quarantine: ctx.quarantine,
            degraded_stages: ctx.degraded_stages,
        }
    }

    /// Runs the supervised pipeline *durably*: every completed stage is
    /// checkpointed into `opts.run_dir` with atomic writes and journaled
    /// in `run.manifest.jsonl`, so an interrupted run can be resumed
    /// ([`crate::durable::DurableOptions::resume`]) and completes with
    /// artifacts byte-identical to an uninterrupted run. `Err` is reserved
    /// for durability I/O failures and injected crash points; pipeline
    /// failures surface as [`RunOutcome::Failed`] inside the output.
    pub fn run_durable(
        &self,
        stakeholder: Stakeholder,
        opts: &crate::durable::DurableOptions<'_>,
    ) -> Result<crate::durable::DurableOutput, IndiceError> {
        crate::durable::run_durable_inner(
            crate::durable::DurableInputs {
                dataset: &self.dataset,
                street_map: &self.street_map,
                hierarchy: &self.hierarchy,
                config: self.config_with_suggestions(),
                runtime: self.runtime,
            },
            stakeholder,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::wellknown as wk;
    use epc_synth::city::CityConfig;
    use epc_synth::epcgen::{EpcGenerator, SynthConfig};
    use epc_synth::noise::{apply_noise, NoiseConfig};

    fn engine() -> Indice {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 900,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        apply_noise(&mut c, &NoiseConfig::default());
        Indice::from_collection(c, IndiceConfig::default())
    }

    #[test]
    fn end_to_end_run_for_the_pa_stakeholder() {
        let engine = engine();
        let out = engine.run(Stakeholder::PublicAdministration).unwrap();
        // Category filter applied.
        assert!(out.preprocess.cleaning.total < engine.dataset().n_rows());
        assert!(out.analytics.chosen_k >= 2);
        assert!(!out.analytics.rules.is_empty());
        assert!(out.dashboard.n_panels() >= 5);
        let html = out.dashboard.render_html();
        assert!(html.contains("INDICE"));
        assert!(!out.artifacts.is_empty());
    }

    #[test]
    fn run_detailed_reports_the_three_stages() {
        let engine = engine();
        let (out, report) = engine
            .run_detailed(Stakeholder::PublicAdministration)
            .unwrap();
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["preprocess", "analytics", "dashboard"]);
        // Counts line up with the pipeline products.
        assert_eq!(
            report.stage("preprocess").unwrap().records_out,
            out.preprocess.dataset.n_rows()
        );
        assert_eq!(
            report.stage("dashboard").unwrap().records_out,
            out.artifacts.len()
        );
        // The zoom drill-down pages ride along as artifacts.
        for level in epc_model::Granularity::ALL {
            assert!(out
                .artifacts
                .contains_key(&format!("dashboard_{level}.html")));
        }
    }

    #[test]
    fn category_filter_can_be_disabled() {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 400,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        apply_noise(&mut c, &NoiseConfig::none());
        let engine = Indice::from_collection(
            c,
            IndiceConfig {
                building_category: None,
                ..IndiceConfig::default()
            },
        );
        let out = engine.run(Stakeholder::Citizen).unwrap();
        assert_eq!(out.preprocess.cleaning.total, 400);
    }

    #[test]
    fn expert_choices_flow_into_the_config() {
        let engine = engine();
        // Non-expert choices are ignored.
        engine.record_outlier_choice(
            Stakeholder::Citizen,
            wk::U_WINDOWS,
            UnivariateMethod::default_boxplot(),
        );
        assert_eq!(engine.suggested_outlier_method(wk::U_WINDOWS), None);

        // Expert choices become the suggestion.
        engine.record_outlier_choice(
            Stakeholder::EnergyScientist,
            wk::U_WINDOWS,
            UnivariateMethod::default_boxplot(),
        );
        engine.record_outlier_choice(
            Stakeholder::EnergyScientist,
            wk::U_WINDOWS,
            UnivariateMethod::default_boxplot(),
        );
        engine.record_outlier_choice(
            Stakeholder::EnergyScientist,
            wk::U_WINDOWS,
            UnivariateMethod::default_mad(),
        );
        assert_eq!(
            engine.suggested_outlier_method(wk::U_WINDOWS),
            Some(UnivariateMethod::default_boxplot())
        );
        let cfg = engine.config_with_suggestions();
        let (_, method) = cfg
            .outliers
            .univariate
            .iter()
            .find(|(a, _)| a == wk::U_WINDOWS)
            .unwrap();
        assert_eq!(method, &UnivariateMethod::default_boxplot());
        // Attributes without suggestions keep the default.
        let (_, other) = cfg
            .outliers
            .univariate
            .iter()
            .find(|(a, _)| a == wk::U_OPAQUE)
            .unwrap();
        assert_eq!(other, &UnivariateMethod::default_mad());
    }

    #[test]
    fn unknown_category_yields_empty_error() {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 100,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        apply_noise(&mut c, &NoiseConfig::none());
        let engine = Indice::from_collection(
            c,
            IndiceConfig {
                building_category: Some("Z.9.9".into()),
                ..IndiceConfig::default()
            },
        );
        assert_eq!(
            engine.run(Stakeholder::Citizen).unwrap_err(),
            IndiceError::EmptyCollection("category selection")
        );
    }

    #[test]
    fn different_stakeholders_get_different_dashboards() {
        let engine = engine();
        let pa = engine.run(Stakeholder::PublicAdministration).unwrap();
        let citizen = engine.run(Stakeholder::Citizen).unwrap();
        assert!(pa.dashboard.n_panels() > citizen.dashboard.n_panels());
    }
}
