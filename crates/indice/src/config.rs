//! Typed configuration of the three pipeline stages, with the paper's
//! defaults (footnote-4 discretization bins included).

use crate::outliers::UnivariateMethod;
use epc_geo::cleaning::CleaningConfig;
use epc_mining::cart::CartConfig;
use epc_mining::discretize::Discretizer;
use epc_mining::kmeans::KMeansInit;
use epc_mining::rules::RuleConfig;
use epc_model::wellknown as wk;

/// How K is chosen for K-means.
#[derive(Debug, Clone, PartialEq)]
pub enum KSelection {
    /// A-priori K (the paper's base algorithm).
    Fixed(usize),
    /// Sweep `k_min..=k_max` and pick the SSE elbow (§2.2.2).
    Elbow {
        /// Smallest K tried.
        k_min: usize,
        /// Largest K tried.
        k_max: usize,
    },
}

/// Stage-1 outlier configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierConfig {
    /// `(attribute, method)` pairs for univariate detection. Defaults to
    /// the expert-analysis attributes of §2.1.2 with the MAD 3.5 rule.
    pub univariate: Vec<(String, UnivariateMethod)>,
    /// Enable DBSCAN multivariate detection over the analytics features.
    pub multivariate: bool,
    /// minPoints candidates for the k-distance auto-estimation.
    pub min_points_candidates: Vec<usize>,
    /// Stabilisation tolerance for the minPoints scan.
    pub stability_tol: f64,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            univariate: wk::EXPERT_ANALYSIS_ATTRIBUTES
                .iter()
                .map(|a| (a.to_string(), UnivariateMethod::default_mad()))
                .collect(),
            multivariate: true,
            min_points_candidates: vec![4, 5, 6, 8],
            stability_tol: 0.15,
        }
    }
}

/// Stage-2 analytics configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsConfig {
    /// Clustering features (default: the case-study five).
    pub features: Vec<String>,
    /// Response variable (default: EPH).
    pub response: String,
    /// K selection strategy.
    pub k: KSelection,
    /// K-means initialization.
    pub init: KMeansInit,
    /// RNG seed for clustering.
    pub seed: u64,
    /// |ρ| threshold above which a feature pair counts as "evidently
    /// correlated" (the eligibility check before clustering).
    pub correlation_threshold: f64,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig {
            features: wk::CASE_STUDY_FEATURES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            response: wk::EPH.to_string(),
            k: KSelection::Elbow {
                k_min: 2,
                k_max: 10,
            },
            init: KMeansInit::KMeansPlusPlus,
            seed: 42,
            correlation_threshold: 0.8,
        }
    }
}

/// Stage-2 rule-mining configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStageConfig {
    /// Quality-index thresholds.
    pub rules: RuleConfig,
    /// CART settings for attributes without paper-given bins.
    pub cart: CartConfig,
    /// Number of response bins (quantile-based) when discretizing the
    /// response variable.
    pub response_bins: usize,
    /// Keep only the best `top_k` rules in dashboards.
    pub top_k: usize,
}

impl Default for RuleStageConfig {
    fn default() -> Self {
        RuleStageConfig {
            rules: RuleConfig {
                min_support: 0.05,
                min_confidence: 0.6,
                min_lift: 1.1,
                max_len: 3,
            },
            cart: CartConfig::default(),
            response_bins: 3,
            top_k: 15,
        }
    }
}

/// Fault-tolerance policy of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultToleranceConfig {
    /// Retry budget for transient geocoder failures (overridable at the
    /// CLI via the `INDICE_GEOCODE_RETRIES` environment variable).
    pub geocode_retries: u32,
    /// Divert records whose address stays unresolved after cleaning into
    /// the quarantine (and out of the analysis). Off by default: the
    /// paper-faithful pipeline keeps unresolved records, merely excluding
    /// them from map views.
    pub quarantine_unresolved: bool,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            geocode_retries: epc_geo::geocode::DEFAULT_GEOCODE_RETRIES,
            quarantine_unresolved: false,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IndiceConfig {
    /// Geospatial cleaning settings (φ threshold etc.).
    pub cleaning: CleaningConfig,
    /// Geocoder request quota (the free-tier limit of §2.1.1); `0`
    /// disables the fallback.
    pub geocoder_quota: usize,
    /// Outlier stage.
    pub outliers: OutlierConfig,
    /// Analytics stage.
    pub analytics: AnalyticsConfig,
    /// Rule-mining stage.
    pub rule_stage: RuleStageConfig,
    /// Restrict the analysis to this building category (the case study
    /// uses `Some("E.1.1")`); `None` keeps everything.
    pub building_category: Option<String>,
    /// Fault-tolerance policy (quarantine + retry settings).
    pub fault_tolerance: FaultToleranceConfig,
}

impl Default for IndiceConfig {
    fn default() -> Self {
        IndiceConfig {
            cleaning: CleaningConfig::default(),
            geocoder_quota: 2_500, // Google free tier order of magnitude
            outliers: OutlierConfig::default(),
            analytics: AnalyticsConfig::default(),
            rule_stage: RuleStageConfig::default(),
            building_category: Some("E.1.1".to_owned()),
            fault_tolerance: FaultToleranceConfig::default(),
        }
    }
}

/// The paper's footnote-4 discretizations, verbatim:
///
/// * Uw: Low = \[1.1, 2.05\], Medium = (2.05, 2.45\], High = (2.45, 3.35\],
///   Very high = (3.35, 5.5\];
/// * Uo: Low = \[0.15, 0.45\], Medium = (0.45, 0.65\], High = (0.65, 1.1\];
/// * ETAH: Low = \[0.20, 0.60\], Medium = (0.60, 0.80\], High = (0.80, 1.1\].
// Static tables: the threshold lists are sorted literals, the only way
// `with_auto_labels` can fail.
#[allow(clippy::expect_used)]
pub fn footnote4_discretizers() -> Vec<Discretizer> {
    vec![
        Discretizer::with_auto_labels(wk::U_WINDOWS, vec![2.05, 2.45, 3.35])
            .expect("valid Uw bins"),
        Discretizer::with_auto_labels(wk::U_OPAQUE, vec![0.45, 0.65]).expect("valid Uo bins"),
        Discretizer::with_auto_labels(wk::ETA_H, vec![0.60, 0.80]).expect("valid ETAH bins"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let cfg = IndiceConfig::default();
        assert_eq!(cfg.building_category.as_deref(), Some("E.1.1"));
        assert_eq!(cfg.analytics.features.len(), 5);
        assert_eq!(cfg.analytics.response, "eph");
        assert!(matches!(
            cfg.analytics.k,
            KSelection::Elbow {
                k_min: 2,
                k_max: 10
            }
        ));
        assert!(cfg.outliers.multivariate);
        assert_eq!(cfg.outliers.univariate.len(), 5);
        assert!(cfg.cleaning.phi > 0.5 && cfg.cleaning.phi < 1.0);
    }

    #[test]
    fn footnote4_bins_match_the_paper() {
        let ds = footnote4_discretizers();
        assert_eq!(ds.len(), 3);
        let uw = &ds[0];
        assert_eq!(uw.attribute, "u_windows");
        assert_eq!(uw.bin_label(2.0), "Low");
        assert_eq!(uw.bin_label(2.3), "Medium");
        assert_eq!(uw.bin_label(3.0), "High");
        assert_eq!(uw.bin_label(4.5), "Very high");
        let uo = &ds[1];
        assert_eq!(uo.bin_label(0.3), "Low");
        assert_eq!(uo.bin_label(0.5), "Medium");
        assert_eq!(uo.bin_label(0.9), "High");
        let eta = &ds[2];
        assert_eq!(eta.bin_label(0.5), "Low");
        assert_eq!(eta.bin_label(0.7), "Medium");
        assert_eq!(eta.bin_label(0.95), "High");
    }

    #[test]
    fn default_univariate_methods_cover_expert_attributes() {
        let cfg = OutlierConfig::default();
        let attrs: Vec<&str> = cfg.univariate.iter().map(|(a, _)| a.as_str()).collect();
        for a in wk::EXPERT_ANALYSIS_ATTRIBUTES {
            assert!(attrs.contains(&a), "missing {a}");
        }
        for (_, m) in &cfg.univariate {
            assert_eq!(m.name(), "MAD");
        }
    }
}
