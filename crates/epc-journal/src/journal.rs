//! The append-only run journal (`run.manifest.jsonl`).
//!
//! One JSON line per committed pipeline stage, appended *after* the
//! stage's checkpoint files are durably on disk — the journal line is the
//! commit point. Loading tolerates a torn tail: a final line that does
//! not parse (the classic crash-during-append artifact) is discarded
//! along with everything after the first unparsable line, and the run
//! simply replays from there.
//!
//! Entries are pure functions of the run's inputs and configuration — no
//! timestamps, no host names, no durations — so the journal of a resumed
//! run is byte-identical to the journal of an uninterrupted run.

use crate::atomic::{sync_dir, write_atomic, ArtifactRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside a run directory.
pub const MANIFEST_FILE: &str = "run.manifest.jsonl";

/// One committed stage: everything a resuming run needs to decide whether
/// the stage can be skipped and, if so, to rehydrate its product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageEntry {
    /// Zero-based position in the stage sequence.
    pub seq: usize,
    /// Stage name (`preprocess` / `analytics` / `dashboard`).
    pub stage: String,
    /// Fingerprint of the effective configuration and stakeholder; a
    /// mismatch invalidates the entry (the run is a different computation).
    pub config_fingerprint: String,
    /// Hash of the run's inputs (dataset, street map, hierarchy).
    pub input_hash: String,
    /// `true` when the supervisor degraded this stage (no product; the
    /// checkpoint list is empty and resuming re-registers the degradation
    /// instead of re-running the stage).
    pub degraded: bool,
    /// Degradation reasons this stage contributed to the run outcome.
    pub reasons: Vec<String>,
    /// Records entering the stage (for resumed stage reports).
    pub records_in: usize,
    /// Records (or artifacts) leaving the stage.
    pub records_out: usize,
    /// Records this stage quarantined.
    pub quarantined: usize,
    /// Fault histogram of the quarantined records.
    pub faults: BTreeMap<String, usize>,
    /// Checkpoint files capturing the stage product, hash-validated on
    /// resume. Paths are relative to the run directory.
    pub checkpoints: Vec<ArtifactRecord>,
}

/// What [`Journal::load`] recovered: the parsable prefix plus a flag
/// telling the caller whether anything was silently lost getting there.
///
/// A torn tail is the *expected* crash-during-append artifact and the
/// recovery is sound — but it must be surfaced, not swallowed: the CLI
/// warns, the observability layer counts it, and operators can tell a
/// clean resume from one that discarded a half-written commit line.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// The valid entry prefix (everything up to the first unparsable
    /// line).
    pub entries: Vec<StageEntry>,
    /// `true` when the file held trailing bytes that did not parse as an
    /// entry — a torn append (or interior corruption) was discarded to
    /// recover `entries`.
    pub recovered_torn_tail: bool,
}

/// Handle to a run directory's journal file.
#[derive(Debug, Clone)]
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// The journal of `run_dir` (the file itself may not exist yet).
    pub fn at(run_dir: &Path) -> Self {
        Journal {
            dir: run_dir.to_path_buf(),
        }
    }

    /// Full path of the manifest file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }

    /// Loads all parsable entries. A missing file is an empty journal;
    /// the first unparsable line truncates the result (torn tail) and
    /// sets [`LoadedJournal::recovered_torn_tail`] so the recovery is
    /// visible to the caller instead of silently discarded.
    pub fn load(&self) -> io::Result<LoadedJournal> {
        let text = match std::fs::read_to_string(self.path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(LoadedJournal {
                    entries: Vec::new(),
                    recovered_torn_tail: false,
                })
            }
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        let mut recovered_torn_tail = false;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<StageEntry>(line) {
                Ok(entry) => entries.push(entry),
                Err(_) => {
                    recovered_torn_tail = true;
                    break;
                }
            }
        }
        Ok(LoadedJournal {
            entries,
            recovered_torn_tail,
        })
    }

    /// Appends one entry (one JSON line) and fsyncs — the stage's commit
    /// point. Checkpoint files must already be durable when this is
    /// called.
    pub fn append(&self, entry: &StageEntry) -> io::Result<()> {
        let line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path())?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_all()?;
        drop(f);
        sync_dir(&self.dir)
    }

    /// Atomically replaces the journal with exactly `entries` — used when
    /// resume validation rejects a suffix and the run replays from there.
    pub fn rewrite(&self, entries: &[StageEntry]) -> io::Result<()> {
        let mut text = String::new();
        for entry in entries {
            let line = serde_json::to_string(entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            text.push_str(&line);
            text.push('\n');
        }
        write_atomic(&self.dir, MANIFEST_FILE, text.as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "epc-journal-manifest-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(seq: usize, stage: &str) -> StageEntry {
        StageEntry {
            seq,
            stage: stage.to_owned(),
            config_fingerprint: "cfg".into(),
            input_hash: "in".into(),
            degraded: false,
            reasons: Vec::new(),
            records_in: 10,
            records_out: 9,
            quarantined: 1,
            faults: BTreeMap::from([("non_finite".to_owned(), 1usize)]),
            checkpoints: vec![ArtifactRecord {
                file: format!("{stage}.json"),
                sha256: "00".into(),
                bytes: 2,
            }],
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir();
        let j = Journal::at(&dir);
        let loaded = j.load().unwrap();
        assert!(loaded.entries.is_empty(), "missing file = empty journal");
        assert!(!loaded.recovered_torn_tail);
        j.append(&entry(0, "preprocess")).unwrap();
        j.append(&entry(1, "analytics")).unwrap();
        let loaded = j.load().unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0], entry(0, "preprocess"));
        assert_eq!(loaded.entries[1], entry(1, "analytics"));
        assert!(!loaded.recovered_torn_tail, "clean journal reports no tear");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let dir = temp_dir();
        let j = Journal::at(&dir);
        j.append(&entry(0, "preprocess")).unwrap();
        j.append(&entry(1, "analytics")).unwrap();
        // Simulate a crash mid-append: chop the last line in half.
        let text = fs::read_to_string(j.path()).unwrap();
        fs::write(j.path(), &text[..text.len() - 40]).unwrap();
        let loaded = j.load().unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].stage, "preprocess");
        assert!(
            loaded.recovered_torn_tail,
            "discarding a torn tail must be surfaced, not silent"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_interior_line_truncates_from_there() {
        let dir = temp_dir();
        let j = Journal::at(&dir);
        j.append(&entry(0, "preprocess")).unwrap();
        let mut text = fs::read_to_string(j.path()).unwrap();
        text.push_str("{not json}\n");
        fs::write(j.path(), &text).unwrap();
        j.append(&entry(2, "dashboard")).unwrap();
        // The entry after the garbage line is unreachable.
        let loaded = j.load().unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert!(loaded.recovered_torn_tail, "interior garbage is a tear too");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_truncates_to_prefix() {
        let dir = temp_dir();
        let j = Journal::at(&dir);
        j.append(&entry(0, "preprocess")).unwrap();
        j.append(&entry(1, "analytics")).unwrap();
        j.append(&entry(2, "dashboard")).unwrap();
        let all = j.load().unwrap().entries;
        j.rewrite(&all[..1]).unwrap();
        let loaded = j.load().unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].stage, "preprocess");
        assert!(!loaded.recovered_torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash *during* `rewrite` must never lose committed entries.
    /// `rewrite` goes through `write_atomic` (tmp + fsync + rename), so
    /// every intermediate state a kill can leave behind is either the old
    /// journal or the new one. This test walks the protocol's crash
    /// windows explicitly.
    #[test]
    fn rewrite_interrupted_midway_never_loses_committed_entries() {
        let dir = temp_dir();
        let j = Journal::at(&dir);
        j.append(&entry(0, "preprocess")).unwrap();
        j.append(&entry(1, "analytics")).unwrap();
        j.append(&entry(2, "dashboard")).unwrap();
        let committed = j.load().unwrap().entries;

        // Crash window 1: the replacement text was written to the tmp
        // file (possibly torn), but the rename never happened. The live
        // journal must still hold every committed entry.
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        fs::write(&tmp, b"{\"seq\":0,\"stage\":\"prep").unwrap();
        let loaded = j.load().unwrap();
        assert_eq!(
            loaded.entries, committed,
            "tmp file must not shadow the journal"
        );
        assert!(!loaded.recovered_torn_tail);

        // Crash window 2: the kill landed after the rename. The journal
        // is exactly the rewritten prefix — complete lines, no tear.
        j.rewrite(&committed[..2]).unwrap();
        let loaded = j.load().unwrap();
        assert_eq!(loaded.entries, committed[..2]);
        assert!(!loaded.recovered_torn_tail);

        // A stale tmp from window 1 must not break later appends either.
        fs::write(&tmp, b"stale garbage").unwrap();
        j.append(&entry(2, "dashboard")).unwrap();
        assert_eq!(j.load().unwrap().entries, committed);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Re-running an interrupted rewrite (the resume path re-validates
    /// and rewrites again) converges to the same bytes as a rewrite that
    /// was never interrupted.
    #[test]
    fn rewrite_after_interrupted_rewrite_is_byte_identical() {
        let dir_clean = temp_dir();
        let dir_crashed = temp_dir();
        for dir in [&dir_clean, &dir_crashed] {
            let j = Journal::at(dir);
            j.append(&entry(0, "preprocess")).unwrap();
            j.append(&entry(1, "analytics")).unwrap();
        }
        let j_crashed = Journal::at(&dir_crashed);
        let prefix = j_crashed.load().unwrap().entries;
        // Interrupted attempt: tmp written, rename lost.
        fs::write(
            dir_crashed.join(format!("{MANIFEST_FILE}.tmp")),
            b"half a li",
        )
        .unwrap();
        // Both sides now perform the rewrite to the same prefix.
        j_crashed.rewrite(&prefix[..1]).unwrap();
        let j_clean = Journal::at(&dir_clean);
        let clean_prefix = j_clean.load().unwrap().entries;
        j_clean.rewrite(&clean_prefix[..1]).unwrap();
        let a = fs::read(j_clean.path()).unwrap();
        let b = fs::read(j_crashed.path()).unwrap();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir_clean).unwrap();
        fs::remove_dir_all(&dir_crashed).unwrap();
    }

    #[test]
    fn journal_bytes_are_deterministic() {
        let dir_a = temp_dir();
        let dir_b = temp_dir();
        for dir in [&dir_a, &dir_b] {
            let j = Journal::at(dir);
            j.append(&entry(0, "preprocess")).unwrap();
            j.append(&entry(1, "analytics")).unwrap();
        }
        let a = fs::read(Journal::at(&dir_a).path()).unwrap();
        let b = fs::read(Journal::at(&dir_b).path()).unwrap();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }
}
