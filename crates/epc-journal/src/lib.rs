//! # epc-journal
//!
//! Run durability for the INDICE pipeline, in the WAL/crash-recovery
//! spirit: a killed process must lose at most the stage it was inside,
//! never the whole run, and a restarted run must produce artifacts
//! byte-identical to an uninterrupted one.
//!
//! Two building blocks:
//!
//! * **Atomic artifact writes** — [`write_atomic`] writes to `<name>.tmp`,
//!   fsyncs, renames over the final path, and fsyncs the directory. A
//!   crash mid-write leaves either the old content or the new content on
//!   disk, never a torn mix. Every write returns an [`ArtifactRecord`]
//!   carrying the content's SHA-256, so readers can *detect* corruption
//!   that slipped past the rename protocol (disk faults, manual edits,
//!   injected torn writes).
//! * **The run journal** — [`Journal`] is an append-only
//!   `run.manifest.jsonl` recording one [`StageEntry`] per committed
//!   pipeline stage: config fingerprint, input hash, and the checkpoint
//!   files (with hashes) that capture the stage's product. A resuming run
//!   replays the journal, skips every stage whose entry validates, and
//!   re-executes from the first invalid entry onward.
//!
//! Entries deliberately contain no timestamps or host state: the journal
//! of a resumed run is byte-identical to the journal of an uninterrupted
//! run, so the chaos gate can hash the whole run directory.

mod atomic;
mod journal;
mod sha256;

pub use atomic::{write_atomic, write_atomic_path, ArtifactRecord};
pub use journal::{Journal, LoadedJournal, StageEntry, MANIFEST_FILE};
pub use sha256::hash_hex;
