//! Atomic, torn-write-safe file writes.
//!
//! The commit protocol is the classic one: write the full content to
//! `<name>.tmp` in the destination directory, fsync the file, rename it
//! over the final path, then fsync the directory so the rename itself is
//! durable. A crash at any point leaves the final path either absent,
//! with its previous content, or with the complete new content — never a
//! prefix.

use crate::sha256::hash_hex;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// What one atomic write produced: the file's bare name, its content
/// hash, and its size. Journal entries embed these so a resuming run can
/// verify every checkpoint byte-for-byte before trusting it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactRecord {
    /// Bare file name (no directory components).
    pub file: String,
    /// Lowercase-hex SHA-256 of the content.
    pub sha256: String,
    /// Content length in bytes.
    pub bytes: u64,
}

impl ArtifactRecord {
    /// Reads `self.file` under `dir` and verifies length and hash.
    /// Returns the content on success, a descriptive error otherwise.
    pub fn read_verified(&self, dir: &Path) -> io::Result<Vec<u8>> {
        let path = dir.join(&self.file);
        let content = fs::read(&path)?;
        if content.len() as u64 != self.bytes || hash_hex(&content) != self.sha256 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint {} failed hash validation ({} bytes on disk, {} recorded)",
                    path.display(),
                    content.len(),
                    self.bytes
                ),
            ));
        }
        Ok(content)
    }
}

/// Atomically writes `contents` to `dir/name` (write `.tmp`, fsync,
/// rename, fsync dir) and returns the [`ArtifactRecord`] describing it.
/// `name` must be a bare file name.
pub fn write_atomic(dir: &Path, name: &str, contents: &[u8]) -> io::Result<ArtifactRecord> {
    if name.contains(['/', '\\']) || name.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("artifact name {name:?} must be a bare file name"),
        ));
    }
    let tmp = dir.join(format!("{name}.tmp"));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(contents)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join(name))?;
    sync_dir(dir)?;
    Ok(ArtifactRecord {
        file: name.to_owned(),
        sha256: hash_hex(contents),
        bytes: contents.len() as u64,
    })
}

/// [`write_atomic`] addressed by full path instead of `(dir, name)`.
/// Parent directories are created as needed.
pub fn write_atomic_path(path: &Path, contents: &[u8]) -> io::Result<ArtifactRecord> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&parent)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("path {} has no valid file name", path.display()),
            )
        })?
        .to_owned();
    write_atomic(&parent, &name, contents)
}

/// Fsyncs a directory so a completed rename survives power loss. On
/// platforms where directories cannot be opened for sync this is a no-op.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    match fs::File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "epc-journal-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_then_read_verified_round_trips() {
        let dir = temp_dir();
        let rec = write_atomic(&dir, "a.json", b"{\"k\":1}").unwrap();
        assert_eq!(rec.file, "a.json");
        assert_eq!(rec.bytes, 7);
        assert_eq!(rec.read_verified(&dir).unwrap(), b"{\"k\":1}");
        // No stray temp file is left behind.
        assert!(!dir.join("a.json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_content_atomically() {
        let dir = temp_dir();
        write_atomic(&dir, "f", b"old").unwrap();
        let rec = write_atomic(&dir, "f", b"new content").unwrap();
        assert_eq!(fs::read(dir.join("f")).unwrap(), b"new content");
        assert_eq!(rec.bytes, 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_is_detected_by_hash() {
        let dir = temp_dir();
        let rec = write_atomic(&dir, "c.bin", b"0123456789").unwrap();
        // Simulate a torn write: truncate the committed file.
        let f = fs::OpenOptions::new()
            .write(true)
            .open(dir.join("c.bin"))
            .unwrap();
        f.set_len(4).unwrap();
        drop(f);
        let err = rec.read_verified(&dir).unwrap_err();
        assert!(err.to_string().contains("hash validation"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_length_corruption_is_detected() {
        let dir = temp_dir();
        let rec = write_atomic(&dir, "d.bin", b"abcdef").unwrap();
        fs::write(dir.join("d.bin"), b"abcdeX").unwrap();
        assert!(rec.read_verified(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn names_with_separators_are_rejected() {
        let dir = temp_dir();
        assert!(write_atomic(&dir, "sub/dir.txt", b"x").is_err());
        assert!(write_atomic(&dir, "", b"x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_path_creates_parents() {
        let dir = temp_dir();
        let path = dir.join("nested/deep/out.txt");
        let rec = write_atomic_path(&path, b"hello").unwrap();
        assert_eq!(rec.file, "out.txt");
        assert_eq!(fs::read(path).unwrap(), b"hello");
        fs::remove_dir_all(&dir).unwrap();
    }
}
