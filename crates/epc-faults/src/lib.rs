//! # epc-faults
//!
//! A deterministic, seedable fault-injection harness for the INDICE
//! pipeline. Chaos testing a data pipeline is only useful when the chaos is
//! *reproducible*: every fault decision here is a pure function of a seed
//! and a stable record key, so a failing chaos run can be replayed
//! bit-for-bit by rerunning with the same seed — at any thread count.
//!
//! Three hook points, one per failure domain:
//!
//! * **record boundary** — [`FaultInjector::corrupt_record`] decides, per
//!   record key, whether (and how) to corrupt the record before
//!   preprocessing sees it ([`Corruption`]);
//! * **geocode call** — [`FaultInjector::fail_geocode`] decides, per
//!   `(query, attempt)`, whether a geocoding call fails transiently;
//!   [`FaultyGeocoder`] applies those decisions around any
//!   [`epc_geo::Geocoder`];
//! * **stage boundary** — [`FaultInjector::fail_stage`] can kill a pipeline
//!   stage on its Nth invocation, exercising the supervisor's
//!   graceful-degradation policy.
//!
//! [`DeterministicInjector`] implements all three from a single seed;
//! [`NoFaults`] is the inert default. [`corrupt_dataset`] applies record
//! corruption to an [`epc_model::Dataset`] in place and reports exactly
//! which keys were hit, so tests can assert quarantine counts precisely.

mod corrupt;
mod crash;
mod fleet;
mod geocoder;
mod injector;

pub use corrupt::corrupt_dataset;
pub use crash::{BatchScope, CrashSpec, IngestCrash};
pub use fleet::{CityFaultSpec, FleetFaults, StageKillSpec};
pub use geocoder::FaultyGeocoder;
pub use injector::{Corruption, DeterministicInjector, FaultInjector, NoFaults};
