//! The injector trait and its deterministic implementation.

use epc_geo::TransientKind;
use std::collections::BTreeMap;

/// How a record gets corrupted at the ingestion boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// Overwrite a numeric attribute with `NaN`. Caught by the always-on
    /// non-finite validation scan, so every such corruption lands in the
    /// quarantine — the accounting is exact.
    NonFinite {
        /// Name of the attribute to overwrite.
        attribute: String,
    },
    /// Replace the street string with unresolvable garbage derived from
    /// the record key. The record survives validation but exercises the
    /// geocoder fallback / unresolved path.
    ScrambleAddress,
}

/// Decides, deterministically, which faults to inject where.
///
/// Implementations must be pure functions of their configuration and the
/// hook arguments: the same `(key, attempt)` must always produce the same
/// decision, regardless of call order or thread interleaving — that is
/// what makes chaos runs replayable.
pub trait FaultInjector: Send + Sync {
    /// Should the record identified by `key` be corrupted? `None` = leave
    /// it alone.
    fn corrupt_record(&self, key: &str) -> Option<Corruption>;

    /// Should the geocode call for `key` (see [`epc_geo::geocode::query_hash`])
    /// fail transiently on this `attempt` (0 = first try)? Keying on the
    /// attempt lets retries recover — exactly like a real flaky provider.
    fn fail_geocode(&self, key: u64, attempt: u32) -> Option<TransientKind>;

    /// Should the pipeline stage `stage` be killed on its `invocation`-th
    /// run (1-based)? Returns the panic message to raise.
    fn fail_stage(&self, stage: &str, invocation: usize) -> Option<String>;
}

/// The inert injector: never corrupts, never fails, never kills.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn corrupt_record(&self, _key: &str) -> Option<Corruption> {
        None
    }
    fn fail_geocode(&self, _key: u64, _attempt: u32) -> Option<TransientKind> {
        None
    }
    fn fail_stage(&self, _stage: &str, _invocation: usize) -> Option<String> {
        None
    }
}

/// Domain separators so the three hooks draw from independent streams of
/// the same seed.
const DOMAIN_RECORD: u64 = 0x5245_434f_5244_0001; // "RECORD"
const DOMAIN_GEOCODE: u64 = 0x4745_4f43_4f44_0002; // "GEOCOD"

/// A seedable injector whose every decision is a pure function of
/// `(seed, key)` — never of wall-clock time, call order, or thread
/// schedule.
///
/// Rates are probabilities in `[0, 1]`, resolved by hashing the stable
/// record key: shuffling the input rows does not change *which* records
/// are hit, only when the hits are encountered.
#[derive(Debug, Clone)]
pub struct DeterministicInjector {
    seed: u64,
    record_rate: f64,
    geocode_rate: f64,
    corruption: Corruption,
    stage_kills: BTreeMap<String, usize>,
}

impl DeterministicInjector {
    /// A new injector with all rates zero — configure with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> Self {
        DeterministicInjector {
            seed,
            record_rate: 0.0,
            geocode_rate: 0.0,
            corruption: Corruption::NonFinite {
                attribute: epc_model::wellknown::ASPECT_RATIO.to_owned(),
            },
            stage_kills: BTreeMap::new(),
        }
    }

    /// Corrupt this fraction of records (by stable key).
    pub fn with_record_rate(mut self, rate: f64) -> Self {
        self.record_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fail this fraction of geocode attempts transiently.
    pub fn with_geocode_rate(mut self, rate: f64) -> Self {
        self.geocode_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Use this corruption instead of the default
    /// (`NonFinite { attribute: aspect_ratio }`).
    pub fn with_corruption(mut self, corruption: Corruption) -> Self {
        self.corruption = corruption;
        self
    }

    /// Kill `stage` on its `invocation`-th run (1-based).
    pub fn kill_stage(mut self, stage: &str, invocation: usize) -> Self {
        self.stage_kills.insert(stage.to_owned(), invocation);
        self
    }

    /// The configured record-corruption rate.
    pub fn record_rate(&self) -> f64 {
        self.record_rate
    }

    /// The configured geocode-failure rate.
    pub fn geocode_rate(&self) -> f64 {
        self.geocode_rate
    }

    /// A uniform draw in `[0, 1)` for `(domain, key)` under this seed.
    fn draw(&self, domain: u64, key: u64) -> f64 {
        let h = splitmix64(self.seed ^ domain ^ splitmix64(key));
        // 53 bits of mantissa: exact double conversion.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FaultInjector for DeterministicInjector {
    fn corrupt_record(&self, key: &str) -> Option<Corruption> {
        if self.record_rate > 0.0 && self.draw(DOMAIN_RECORD, fnv1a(key)) < self.record_rate {
            Some(self.corruption.clone())
        } else {
            None
        }
    }

    fn fail_geocode(&self, key: u64, attempt: u32) -> Option<TransientKind> {
        if self.geocode_rate > 0.0
            && self.draw(DOMAIN_GEOCODE, key.wrapping_add(attempt as u64)) < self.geocode_rate
        {
            // Alternate failure kinds deterministically so both are
            // exercised.
            Some(if (key ^ attempt as u64) & 1 == 0 {
                TransientKind::Quota
            } else {
                TransientKind::Timeout
            })
        } else {
            None
        }
    }

    fn fail_stage(&self, stage: &str, invocation: usize) -> Option<String> {
        match self.stage_kills.get(stage) {
            Some(&nth) if nth == invocation => Some(format!(
                "injected fault: stage '{stage}' killed on invocation {invocation}"
            )),
            _ => None,
        }
    }
}

/// FNV-1a over a record key string.
pub(crate) fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 avalanche mixer.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_key() {
        let a = DeterministicInjector::new(42).with_record_rate(0.3);
        let b = DeterministicInjector::new(42).with_record_rate(0.3);
        for i in 0..200 {
            let key = format!("EPC-{i:05}");
            assert_eq!(a.corrupt_record(&key), b.corrupt_record(&key));
        }
    }

    #[test]
    fn different_seeds_hit_different_records() {
        let a = DeterministicInjector::new(1).with_record_rate(0.5);
        let b = DeterministicInjector::new(2).with_record_rate(0.5);
        let hits = |inj: &DeterministicInjector| -> Vec<String> {
            (0..200)
                .map(|i| format!("EPC-{i:05}"))
                .filter(|k| inj.corrupt_record(k).is_some())
                .collect()
        };
        assert_ne!(hits(&a), hits(&b));
    }

    #[test]
    fn rate_is_roughly_respected() {
        let inj = DeterministicInjector::new(7).with_record_rate(0.2);
        let hits = (0..2000)
            .map(|i| format!("EPC-{i:05}"))
            .filter(|k| inj.corrupt_record(k).is_some())
            .count();
        // 20% of 2000 = 400; allow a generous hash-variance band.
        assert!((300..=500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn zero_rate_never_fires() {
        let inj = DeterministicInjector::new(9);
        for i in 0..500 {
            assert_eq!(inj.corrupt_record(&format!("EPC-{i}")), None);
            assert_eq!(inj.fail_geocode(i, 0), None);
        }
    }

    #[test]
    fn geocode_failures_can_recover_across_attempts() {
        let inj = DeterministicInjector::new(11).with_geocode_rate(0.5);
        // Find a key that fails on attempt 0 but succeeds on some later
        // attempt — proof that retries are meaningful.
        let recovered = (0..200u64).any(|key| {
            inj.fail_geocode(key, 0).is_some()
                && (1..4).any(|att| inj.fail_geocode(key, att).is_none())
        });
        assert!(recovered);
    }

    #[test]
    fn stage_kill_fires_only_on_the_configured_invocation() {
        let inj = DeterministicInjector::new(0).kill_stage("analytics", 2);
        assert_eq!(inj.fail_stage("analytics", 1), None);
        assert!(inj.fail_stage("analytics", 2).is_some());
        assert_eq!(inj.fail_stage("analytics", 3), None);
        assert_eq!(inj.fail_stage("preprocess", 2), None);
    }

    #[test]
    fn no_faults_is_inert() {
        let inj = NoFaults;
        assert_eq!(inj.corrupt_record("anything"), None);
        assert_eq!(inj.fail_geocode(123, 0), None);
        assert_eq!(inj.fail_stage("preprocess", 1), None);
    }
}
