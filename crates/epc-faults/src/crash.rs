//! Crash-point injection for durability testing.
//!
//! A [`CrashSpec`] names one point in a durable run at which the process
//! should "die": before a stage's checkpoint commit, after it, or —
//! nastiest — mid-commit, leaving a torn (truncated) checkpoint file on
//! disk whose journal entry promises the full content. The durable runner
//! honours the spec by aborting the run with a crash error at exactly that
//! point, so tests and `ci.sh crash` can exercise resume-after-crash
//! without actually killing the process.
//!
//! Like everything in this crate, crash points are deterministic: the spec
//! is parsed from a `stage:point` string (CLI `--crash-at`) and fires on
//! the stage's first commit, independent of thread count or timing.

use std::fmt;

/// Where in a durable run an injected crash fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashSpec {
    /// Die before the stage commits anything: no checkpoint files, no
    /// journal entry. Resume must replay the stage from scratch.
    Before {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
    /// Die immediately after the stage's journal entry is durable. Resume
    /// must skip the stage entirely.
    After {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
    /// Die mid-commit: the stage's first checkpoint file is truncated to
    /// half its length, but the journal entry records the full content
    /// hash. Resume must detect the mismatch and replay the stage.
    Torn {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
}

impl CrashSpec {
    /// Parses a `stage:point` spec, where point is `before`, `after`, or
    /// `torn` (e.g. `analytics:before`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "invalid crash spec {raw:?}: expected <stage>:<before|after|torn>, \
                 e.g. \"analytics:before\""
            )
        };
        let (stage, point) = raw.split_once(':').ok_or_else(err)?;
        let stage = stage.trim();
        if stage.is_empty() {
            return Err(err());
        }
        match point.trim() {
            "before" => Ok(CrashSpec::Before {
                stage: stage.to_owned(),
            }),
            "after" => Ok(CrashSpec::After {
                stage: stage.to_owned(),
            }),
            "torn" => Ok(CrashSpec::Torn {
                stage: stage.to_owned(),
            }),
            _ => Err(err()),
        }
    }

    /// The stage this spec targets.
    pub fn stage(&self) -> &str {
        match self {
            CrashSpec::Before { stage }
            | CrashSpec::After { stage }
            | CrashSpec::Torn { stage } => stage,
        }
    }

    /// Short label for the crash point (`before`, `after`, `torn`).
    pub fn point(&self) -> &'static str {
        match self {
            CrashSpec::Before { .. } => "before",
            CrashSpec::After { .. } => "after",
            CrashSpec::Torn { .. } => "torn",
        }
    }
}

impl fmt::Display for CrashSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.stage(), self.point())
    }
}

/// Where in an incremental-ingest run an injected crash fires.
///
/// Incremental ingest processes an ordered list of batches; each batch
/// boundary is a first-class crash point, mirroring [`CrashSpec`]'s
/// before/after/torn grammar but keyed by 0-based batch index instead of
/// stage name (CLI `--crash-at-batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestCrash {
    /// Die before the batch's generation commits anything: no checkpoint
    /// deltas, no manifest line. Resume must re-ingest the batch.
    BeforeBatch {
        /// 0-based index into the ordered batch list.
        batch: usize,
    },
    /// Die immediately after the batch's generation manifest line is
    /// durable. Resume must recognize the sealed generation and skip it.
    AfterCommit {
        /// 0-based index into the ordered batch list.
        batch: usize,
    },
    /// Die mid-seal: the generation's first checkpoint file is truncated
    /// to half its length, but the manifest line records the full content
    /// hash. Resume must detect the mismatch and re-ingest the batch.
    TornBatch {
        /// 0-based index into the ordered batch list.
        batch: usize,
    },
}

impl IngestCrash {
    /// Parses a `batch:point` spec, where batch is a 0-based index and
    /// point is `before`, `after`, or `torn` (e.g. `1:after`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "invalid ingest crash spec {raw:?}: expected <batch>:<before|after|torn>, \
                 e.g. \"1:after\""
            )
        };
        let (batch, point) = raw.split_once(':').ok_or_else(err)?;
        let batch: usize = batch.trim().parse().map_err(|_| err())?;
        match point.trim() {
            "before" => Ok(IngestCrash::BeforeBatch { batch }),
            "after" => Ok(IngestCrash::AfterCommit { batch }),
            "torn" => Ok(IngestCrash::TornBatch { batch }),
            _ => Err(err()),
        }
    }

    /// The 0-based batch index this spec targets.
    pub fn batch(&self) -> usize {
        match self {
            IngestCrash::BeforeBatch { batch }
            | IngestCrash::AfterCommit { batch }
            | IngestCrash::TornBatch { batch } => *batch,
        }
    }

    /// Short label for the crash point (`before`, `after`, `torn`).
    pub fn point(&self) -> &'static str {
        match self {
            IngestCrash::BeforeBatch { .. } => "before",
            IngestCrash::AfterCommit { .. } => "after",
            IngestCrash::TornBatch { .. } => "torn",
        }
    }
}

impl fmt::Display for IngestCrash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.batch(), self.point())
    }
}

/// Which batches of an incremental-ingest run receive injected record
/// corruption — the batch-scoped analogue of running the whole pipeline
/// under a [`crate::FaultInjector`].
///
/// Parsed from a comma-separated list of 0-based indices and inclusive
/// ranges (`"0,2-4"`), or `"all"`. The chaos suite uses this to poison
/// exactly one batch and prove the damage stays inside that generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchScope {
    /// Corrupt every batch.
    All,
    /// Corrupt only the listed 0-based batch indices (sorted, deduped).
    Only(Vec<usize>),
}

impl BatchScope {
    /// Parses `"all"` or a list like `"0,2-4,7"`.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let raw = raw.trim();
        if raw.eq_ignore_ascii_case("all") {
            return Ok(BatchScope::All);
        }
        let err = |part: &str| {
            format!(
                "invalid batch scope {raw:?}: part {part:?} is not an index or \
                 inclusive range (expected e.g. \"all\" or \"0,2-4\")"
            )
        };
        let mut indices = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if let Some((lo, hi)) = part.split_once('-') {
                let lo: usize = lo.trim().parse().map_err(|_| err(part))?;
                let hi: usize = hi.trim().parse().map_err(|_| err(part))?;
                if lo > hi {
                    return Err(err(part));
                }
                indices.extend(lo..=hi);
            } else {
                indices.push(part.parse().map_err(|_| err(part))?);
            }
        }
        if indices.is_empty() {
            return Err(format!("invalid batch scope {raw:?}: empty"));
        }
        indices.sort_unstable();
        indices.dedup();
        Ok(BatchScope::Only(indices))
    }

    /// `true` when batch `index` should receive injected corruption.
    pub fn applies_to(&self, index: usize) -> bool {
        match self {
            BatchScope::All => true,
            BatchScope::Only(indices) => indices.binary_search(&index).is_ok(),
        }
    }
}

impl fmt::Display for BatchScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchScope::All => write!(f, "all"),
            BatchScope::Only(indices) => {
                let parts: Vec<String> = indices.iter().map(|i| i.to_string()).collect();
                write!(f, "{}", parts.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_points() {
        assert_eq!(
            CrashSpec::parse("preprocess:before").unwrap(),
            CrashSpec::Before {
                stage: "preprocess".into()
            }
        );
        assert_eq!(
            CrashSpec::parse("analytics:after").unwrap(),
            CrashSpec::After {
                stage: "analytics".into()
            }
        );
        assert_eq!(
            CrashSpec::parse(" dashboard : torn ").unwrap(),
            CrashSpec::Torn {
                stage: "dashboard".into()
            }
        );
    }

    #[test]
    fn accessors_and_display_round_trip() {
        let spec = CrashSpec::parse("analytics:torn").unwrap();
        assert_eq!(spec.stage(), "analytics");
        assert_eq!(spec.point(), "torn");
        assert_eq!(spec.to_string(), "analytics:torn");
        assert_eq!(CrashSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "preprocess",
            ":before",
            "preprocess:",
            "a:during",
            "a:b:c",
        ] {
            let err = CrashSpec::parse(bad).unwrap_err();
            assert!(err.contains("invalid crash spec"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn ingest_crash_parses_all_three_points() {
        assert_eq!(
            IngestCrash::parse("0:before").unwrap(),
            IngestCrash::BeforeBatch { batch: 0 }
        );
        assert_eq!(
            IngestCrash::parse("3:after").unwrap(),
            IngestCrash::AfterCommit { batch: 3 }
        );
        assert_eq!(
            IngestCrash::parse(" 12 : torn ").unwrap(),
            IngestCrash::TornBatch { batch: 12 }
        );
    }

    #[test]
    fn ingest_crash_accessors_and_display_round_trip() {
        let spec = IngestCrash::parse("2:torn").unwrap();
        assert_eq!(spec.batch(), 2);
        assert_eq!(spec.point(), "torn");
        assert_eq!(spec.to_string(), "2:torn");
        assert_eq!(IngestCrash::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn ingest_crash_rejects_malformed_specs() {
        for bad in ["", "1", ":before", "x:before", "1:", "1:during", "-1:torn"] {
            let err = IngestCrash::parse(bad).unwrap_err();
            assert!(err.contains("invalid ingest crash spec"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn batch_scope_parses_lists_ranges_and_all() {
        assert_eq!(BatchScope::parse("all").unwrap(), BatchScope::All);
        assert_eq!(BatchScope::parse("ALL").unwrap(), BatchScope::All);
        assert_eq!(
            BatchScope::parse("0,2-4,7,2").unwrap(),
            BatchScope::Only(vec![0, 2, 3, 4, 7])
        );
        let scope = BatchScope::parse("1-2").unwrap();
        assert!(!scope.applies_to(0));
        assert!(scope.applies_to(1));
        assert!(scope.applies_to(2));
        assert!(!scope.applies_to(3));
        assert!(BatchScope::All.applies_to(usize::MAX));
        assert_eq!(scope.to_string(), "1,2");
        assert_eq!(BatchScope::All.to_string(), "all");
    }

    #[test]
    fn batch_scope_rejects_malformed() {
        for bad in ["", "x", "1,", "3-1", "1-x", ","] {
            assert!(BatchScope::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
