//! Crash-point injection for durability testing.
//!
//! A [`CrashSpec`] names one point in a durable run at which the process
//! should "die": before a stage's checkpoint commit, after it, or —
//! nastiest — mid-commit, leaving a torn (truncated) checkpoint file on
//! disk whose journal entry promises the full content. The durable runner
//! honours the spec by aborting the run with a crash error at exactly that
//! point, so tests and `ci.sh crash` can exercise resume-after-crash
//! without actually killing the process.
//!
//! Like everything in this crate, crash points are deterministic: the spec
//! is parsed from a `stage:point` string (CLI `--crash-at`) and fires on
//! the stage's first commit, independent of thread count or timing.

use std::fmt;

/// Where in a durable run an injected crash fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashSpec {
    /// Die before the stage commits anything: no checkpoint files, no
    /// journal entry. Resume must replay the stage from scratch.
    Before {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
    /// Die immediately after the stage's journal entry is durable. Resume
    /// must skip the stage entirely.
    After {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
    /// Die mid-commit: the stage's first checkpoint file is truncated to
    /// half its length, but the journal entry records the full content
    /// hash. Resume must detect the mismatch and replay the stage.
    Torn {
        /// Stage name (e.g. `preprocess`).
        stage: String,
    },
}

impl CrashSpec {
    /// Parses a `stage:point` spec, where point is `before`, `after`, or
    /// `torn` (e.g. `analytics:before`).
    pub fn parse(raw: &str) -> Result<Self, String> {
        let err = || {
            format!(
                "invalid crash spec {raw:?}: expected <stage>:<before|after|torn>, \
                 e.g. \"analytics:before\""
            )
        };
        let (stage, point) = raw.split_once(':').ok_or_else(err)?;
        let stage = stage.trim();
        if stage.is_empty() {
            return Err(err());
        }
        match point.trim() {
            "before" => Ok(CrashSpec::Before {
                stage: stage.to_owned(),
            }),
            "after" => Ok(CrashSpec::After {
                stage: stage.to_owned(),
            }),
            "torn" => Ok(CrashSpec::Torn {
                stage: stage.to_owned(),
            }),
            _ => Err(err()),
        }
    }

    /// The stage this spec targets.
    pub fn stage(&self) -> &str {
        match self {
            CrashSpec::Before { stage }
            | CrashSpec::After { stage }
            | CrashSpec::Torn { stage } => stage,
        }
    }

    /// Short label for the crash point (`before`, `after`, `torn`).
    pub fn point(&self) -> &'static str {
        match self {
            CrashSpec::Before { .. } => "before",
            CrashSpec::After { .. } => "after",
            CrashSpec::Torn { .. } => "torn",
        }
    }
}

impl fmt::Display for CrashSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.stage(), self.point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_points() {
        assert_eq!(
            CrashSpec::parse("preprocess:before").unwrap(),
            CrashSpec::Before {
                stage: "preprocess".into()
            }
        );
        assert_eq!(
            CrashSpec::parse("analytics:after").unwrap(),
            CrashSpec::After {
                stage: "analytics".into()
            }
        );
        assert_eq!(
            CrashSpec::parse(" dashboard : torn ").unwrap(),
            CrashSpec::Torn {
                stage: "dashboard".into()
            }
        );
    }

    #[test]
    fn accessors_and_display_round_trip() {
        let spec = CrashSpec::parse("analytics:torn").unwrap();
        assert_eq!(spec.stage(), "analytics");
        assert_eq!(spec.point(), "torn");
        assert_eq!(spec.to_string(), "analytics:torn");
        assert_eq!(CrashSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "preprocess",
            ":before",
            "preprocess:",
            "a:during",
            "a:b:c",
        ] {
            let err = CrashSpec::parse(bad).unwrap_err();
            assert!(err.contains("invalid crash spec"), "{bad:?}: {err}");
        }
    }
}
