//! Applying record corruption to a dataset, with exact accounting.

use crate::injector::{Corruption, FaultInjector};
use epc_model::{wellknown, Dataset, ModelError, Value};

/// Applies `injector`'s record-corruption decisions to `ds` in place.
///
/// Each row is keyed by its `certificate_id` (falling back to `row:<idx>`
/// when the id is missing), so the *set* of corrupted records is a pure
/// function of the injector's seed — independent of row order. Returns the
/// sorted list of corrupted keys, letting chaos tests assert quarantine
/// counts exactly.
pub fn corrupt_dataset(
    ds: &mut Dataset,
    injector: &dyn FaultInjector,
) -> Result<Vec<String>, ModelError> {
    let id_attr = ds.schema().attr_id(wellknown::CERTIFICATE_ID);
    let street_attr = ds.schema().attr_id(wellknown::ADDRESS);
    let mut corrupted = Vec::new();

    for row in 0..ds.n_rows() {
        let key = id_attr
            .and_then(|id| ds.cat(row, id).map(str::to_owned))
            .unwrap_or_else(|| format!("row:{row}"));
        let Some(corruption) = injector.corrupt_record(&key) else {
            continue;
        };
        match corruption {
            Corruption::NonFinite { attribute } => {
                let attr = ds.schema().require(&attribute)?;
                ds.set_value(row, attr, Value::num(f64::NAN))?;
            }
            Corruption::ScrambleAddress => {
                if let Some(attr) = street_attr {
                    ds.set_value(row, attr, Value::cat(format!("zz-scrambled-{key}")))?;
                }
            }
        }
        corrupted.push(key);
    }
    corrupted.sort();
    Ok(corrupted)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::injector::DeterministicInjector;
    use epc_model::schema::standard_epc_schema;

    fn dataset(n: usize) -> Dataset {
        let schema = standard_epc_schema();
        let mut ds = Dataset::new(schema.clone());
        for i in 0..n {
            let mut rec = ds.empty_record();
            rec.set_by_name(
                &schema,
                wellknown::CERTIFICATE_ID,
                Value::cat(format!("EPC-{i:05}")),
            )
            .unwrap();
            rec.set_by_name(&schema, wellknown::ASPECT_RATIO, Value::num(0.5))
                .unwrap();
            rec.set_by_name(&schema, wellknown::ADDRESS, Value::cat("Via Roma"))
                .unwrap();
            ds.push_record(rec).unwrap();
        }
        ds
    }

    #[test]
    fn corruption_set_is_independent_of_row_order() {
        let inj = DeterministicInjector::new(99).with_record_rate(0.25);
        let mut forward = dataset(100);
        let keys_forward = corrupt_dataset(&mut forward, &inj).unwrap();

        // Same rows, reversed order.
        let schema = standard_epc_schema();
        let mut reversed = Dataset::new(schema.clone());
        for i in (0..100).rev() {
            let mut rec = reversed.empty_record();
            rec.set_by_name(
                &schema,
                wellknown::CERTIFICATE_ID,
                Value::cat(format!("EPC-{i:05}")),
            )
            .unwrap();
            rec.set_by_name(&schema, wellknown::ASPECT_RATIO, Value::num(0.5))
                .unwrap();
            reversed.push_record(rec).unwrap();
        }
        let keys_reversed = corrupt_dataset(&mut reversed, &inj).unwrap();
        assert_eq!(keys_forward, keys_reversed);
        assert!(!keys_forward.is_empty());
    }

    #[test]
    fn non_finite_corruption_plants_nan() {
        let inj = DeterministicInjector::new(5).with_record_rate(0.2);
        let mut ds = dataset(50);
        let keys = corrupt_dataset(&mut ds, &inj).unwrap();
        let attr = ds.schema().attr_id(wellknown::ASPECT_RATIO).unwrap();
        let nan_rows = (0..ds.n_rows())
            .filter(|&r| ds.num(r, attr).is_some_and(f64::is_nan))
            .count();
        assert_eq!(nan_rows, keys.len());
        assert!(nan_rows > 0);
    }

    #[test]
    fn scramble_address_rewrites_the_street() {
        let inj = DeterministicInjector::new(5)
            .with_record_rate(0.2)
            .with_corruption(Corruption::ScrambleAddress);
        let mut ds = dataset(50);
        let keys = corrupt_dataset(&mut ds, &inj).unwrap();
        let attr = ds.schema().attr_id(wellknown::ADDRESS).unwrap();
        let scrambled = (0..ds.n_rows())
            .filter(|&r| {
                ds.cat(r, attr)
                    .is_some_and(|s| s.starts_with("zz-scrambled-"))
            })
            .count();
        assert_eq!(scrambled, keys.len());
    }

    #[test]
    fn zero_rate_leaves_dataset_untouched() {
        let inj = DeterministicInjector::new(5);
        let mut ds = dataset(20);
        let before = format!("{ds:?}");
        let keys = corrupt_dataset(&mut ds, &inj).unwrap();
        assert!(keys.is_empty());
        assert_eq!(format!("{ds:?}"), before);
    }
}
