//! Per-city fault specs for fleet chaos runs.
//!
//! A [`FleetFaults`] maps city ids to [`CityFaultSpec`]s and materializes
//! a [`DeterministicInjector`] for one `(city, attempt)` — so a chaos
//! test can kill exactly city i's stage s on attempt k, or corrupt only
//! city j's records, and prove every *other* city's outputs are
//! byte-identical to a fault-free run. Per-city injector seeds derive
//! from the fleet seed with the same SplitMix64 discipline as the record
//! draws, so specs stay thread- and shard-order-invariant.

use crate::injector::{fnv1a, splitmix64, Corruption, DeterministicInjector};
use std::collections::BTreeMap;

/// Kill one stage of a city's shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKillSpec {
    /// Stage to kill (`preprocess` / `analytics` / `dashboard`).
    pub stage: String,
    /// Kill only on this shard attempt (1-based); `None` kills the stage
    /// on *every* attempt, which exhausts the retry budget and proves
    /// the abandonment path.
    pub attempt: Option<u32>,
}

/// Faults aimed at a single city.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CityFaultSpec {
    /// Optional stage kill.
    pub kill: Option<StageKillSpec>,
    /// Record-corruption rate in `[0, 1]` for this city only.
    pub record_rate: f64,
    /// Transient geocode-failure rate in `[0, 1]` for this city only.
    pub geocode_rate: f64,
    /// Corruption to apply when `record_rate` fires; `None` uses the
    /// injector default (non-finite aspect ratio).
    pub corruption: Option<Corruption>,
}

/// The fleet-level fault plan: one seed, per-city specs. Cities without a
/// spec get a clean (inert) injector.
#[derive(Debug, Clone, Default)]
pub struct FleetFaults {
    /// Base fault seed; each city's injector seed derives from it.
    pub seed: u64,
    /// Per-city fault specs, keyed by city id.
    pub cities: BTreeMap<String, CityFaultSpec>,
}

impl FleetFaults {
    /// An empty (fault-free) plan under `seed`.
    pub fn new(seed: u64) -> Self {
        FleetFaults {
            seed,
            cities: BTreeMap::new(),
        }
    }

    /// Adds a spec for `city`, replacing any existing one.
    pub fn with_city(mut self, city: &str, spec: CityFaultSpec) -> Self {
        self.cities.insert(city.to_owned(), spec);
        self
    }

    /// Whether any spec targets `city`.
    pub fn targets(&self, city: &str) -> bool {
        self.cities.contains_key(city)
    }

    /// Materializes the injector for one `(city, attempt)`. Pure function
    /// of the plan: the same arguments always yield an injector making
    /// the same decisions.
    pub fn injector_for(&self, city: &str, attempt: u32) -> DeterministicInjector {
        let city_seed = splitmix64(self.seed ^ fnv1a(city));
        let Some(spec) = self.cities.get(city) else {
            return DeterministicInjector::new(city_seed);
        };
        let mut injector = DeterministicInjector::new(city_seed)
            .with_record_rate(spec.record_rate)
            .with_geocode_rate(spec.geocode_rate);
        if let Some(corruption) = &spec.corruption {
            injector = injector.with_corruption(corruption.clone());
        }
        if let Some(kill) = &spec.kill {
            if kill.attempt.is_none() || kill.attempt == Some(attempt) {
                // The shard runs each stage once per attempt, so killing
                // invocation 1 kills the stage for this attempt.
                injector = injector.kill_stage(&kill.stage, 1);
            }
        }
        injector
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::injector::FaultInjector;

    #[test]
    fn unspecified_cities_get_inert_injectors() {
        let faults = FleetFaults::new(7).with_city(
            "01-milano",
            CityFaultSpec {
                record_rate: 1.0,
                ..CityFaultSpec::default()
            },
        );
        let clean = faults.injector_for("00-torino", 1);
        assert_eq!(clean.corrupt_record("EPC-000001"), None);
        let dirty = faults.injector_for("01-milano", 1);
        assert!(dirty.corrupt_record("EPC-000001").is_some());
    }

    #[test]
    fn kill_on_attempt_k_spares_other_attempts() {
        let faults = FleetFaults::new(0).with_city(
            "02-genova",
            CityFaultSpec {
                kill: Some(StageKillSpec {
                    stage: "preprocess".to_owned(),
                    attempt: Some(1),
                }),
                ..CityFaultSpec::default()
            },
        );
        assert!(faults
            .injector_for("02-genova", 1)
            .fail_stage("preprocess", 1)
            .is_some());
        assert!(faults
            .injector_for("02-genova", 2)
            .fail_stage("preprocess", 1)
            .is_none());
    }

    #[test]
    fn kill_every_attempt_when_attempt_is_none() {
        let faults = FleetFaults::new(0).with_city(
            "02-genova",
            CityFaultSpec {
                kill: Some(StageKillSpec {
                    stage: "analytics".to_owned(),
                    attempt: None,
                }),
                ..CityFaultSpec::default()
            },
        );
        for attempt in 1..5 {
            assert!(faults
                .injector_for("02-genova", attempt)
                .fail_stage("analytics", 1)
                .is_some());
        }
    }

    #[test]
    fn per_city_seeds_differ_but_are_stable() {
        let faults = FleetFaults::new(3)
            .with_city(
                "a",
                CityFaultSpec {
                    record_rate: 0.5,
                    ..CityFaultSpec::default()
                },
            )
            .with_city(
                "b",
                CityFaultSpec {
                    record_rate: 0.5,
                    ..CityFaultSpec::default()
                },
            );
        let hits = |city: &str| -> Vec<String> {
            let injector = faults.injector_for(city, 1);
            (0..300)
                .map(|i| format!("EPC-{i:06}"))
                .filter(|k| injector.corrupt_record(k).is_some())
                .collect()
        };
        assert_ne!(hits("a"), hits("b"), "cities draw independent streams");
        assert_eq!(hits("a"), hits("a"), "decisions are stable");
    }
}
