//! A geocoder wrapper that injects transient failures.

use crate::injector::FaultInjector;
use epc_geo::geocode::{query_hash, GeocodeFailure, GeocodeResult, Geocoder};
use epc_geo::Address;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Wraps an inner [`Geocoder`] and consults a [`FaultInjector`] before
/// every call: when the injector says a `(query, attempt)` fails, the call
/// returns [`GeocodeFailure::Transient`] without reaching the inner
/// service (the provider was "unreachable", so no quota is consumed).
///
/// Attempts are counted per query key so a retrying caller (e.g.
/// [`epc_geo::RetryGeocoder`]) presents increasing attempt numbers to the
/// injector — injected failures can then recover on retry, exactly like a
/// real flaky provider.
pub struct FaultyGeocoder<'a, G> {
    inner: G,
    injector: &'a dyn FaultInjector,
    attempts: RefCell<BTreeMap<u64, u32>>,
    injected: Cell<usize>,
}

impl<'a, G: Geocoder> FaultyGeocoder<'a, G> {
    /// Wraps `inner`, injecting the failures `injector` dictates.
    pub fn new(inner: G, injector: &'a dyn FaultInjector) -> Self {
        FaultyGeocoder {
            inner,
            injector,
            attempts: RefCell::new(BTreeMap::new()),
            injected: Cell::new(0),
        }
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> usize {
        self.injected.get()
    }
}

impl<G: Geocoder> Geocoder for FaultyGeocoder<'_, G> {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        self.try_geocode(query).ok()
    }

    fn requests_made(&self) -> usize {
        self.inner.requests_made()
    }

    fn try_geocode(&self, query: &Address) -> Result<GeocodeResult, GeocodeFailure> {
        let key = query_hash(query);
        let attempt = {
            let mut attempts = self.attempts.borrow_mut();
            let slot = attempts.entry(key).or_insert(0);
            let current = *slot;
            *slot += 1;
            current
        };
        if let Some(kind) = self.injector.fail_geocode(key, attempt) {
            self.injected.set(self.injected.get() + 1);
            return Err(GeocodeFailure::Transient(kind));
        }
        self.inner.try_geocode(query)
    }

    fn retries_made(&self) -> usize {
        self.inner.retries_made()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::injector::{DeterministicInjector, NoFaults};
    use epc_geo::geocode::{Backoff, RetryGeocoder, SimulatedGeocoder};
    use epc_geo::{GeoPoint, StreetEntry, StreetMap};

    fn truth() -> StreetMap {
        StreetMap::from_entries(vec![StreetEntry {
            street: "Via Roma".into(),
            house_number: "10".into(),
            zip: "10121".into(),
            point: GeoPoint::new(45.07, 7.68),
            district: "Centro".into(),
            neighbourhood: "Quadrilatero".into(),
        }])
    }

    fn query() -> Address {
        Address::new("Via Roma", Some("10"), None)
    }

    #[test]
    fn no_faults_is_transparent() {
        let inj = NoFaults;
        let faulty = FaultyGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), &inj);
        let plain = SimulatedGeocoder::new(truth(), 0.6, 0.0);
        assert_eq!(faulty.try_geocode(&query()), plain.try_geocode(&query()));
        assert_eq!(faulty.injected_failures(), 0);
    }

    #[test]
    fn injected_failures_are_transient_and_counted() {
        let inj = DeterministicInjector::new(3).with_geocode_rate(1.0);
        let faulty = FaultyGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), &inj);
        let res = faulty.try_geocode(&query());
        assert!(matches!(res, Err(GeocodeFailure::Transient(_))));
        assert_eq!(faulty.injected_failures(), 1);
        // The provider was never reached.
        assert_eq!(faulty.requests_made(), 0);
    }

    #[test]
    fn retry_over_faulty_geocoder_recovers() {
        // Find a seed/rate where attempt 0 fails but a retry within budget
        // succeeds, then prove the retry wrapper recovers the result.
        let key = epc_geo::geocode::query_hash(&query());
        let inj = (0..64)
            .map(|seed| DeterministicInjector::new(seed).with_geocode_rate(0.6))
            .find(|inj| {
                inj.fail_geocode(key, 0).is_some()
                    && (1..=3).any(|a| inj.fail_geocode(key, a).is_none())
            })
            .expect("some seed yields fail-then-recover for this key");
        let retry = RetryGeocoder::new(
            FaultyGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), &inj),
            3,
            Backoff::default(),
        );
        let res = retry.try_geocode(&query());
        assert!(res.is_ok(), "retry should recover: {res:?}");
        assert!(retry.retries_made() >= 1);
    }
}
