//! A predicate AST over EPC attributes.
//!
//! Predicates are written against attribute *names* (what a dashboard's
//! filter panel produces) and compiled against a concrete schema into
//! [`BoundPredicate`]s holding attribute ids, so evaluation over 25 000
//! rows doesn't do string lookups.

use epc_model::{AttrId, Dataset, ModelError, Schema};

/// An unbound predicate over attribute names.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Numeric attribute within `[min, max]` (either bound optional).
    NumRange {
        /// Attribute name.
        attr: String,
        /// Inclusive lower bound, if any.
        min: Option<f64>,
        /// Inclusive upper bound, if any.
        max: Option<f64>,
    },
    /// Categorical attribute equals the label.
    CatEq {
        /// Attribute name.
        attr: String,
        /// Label to match.
        value: String,
    },
    /// Categorical attribute is one of the labels.
    CatIn {
        /// Attribute name.
        attr: String,
        /// Accepted labels.
        values: Vec<String>,
    },
    /// The attribute value is missing.
    IsMissing(String),
    /// The attribute value is present.
    IsPresent(String),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
    /// Always true (neutral element for folds).
    True,
}

impl Predicate {
    /// `attr ∈ [min, max]` helper.
    pub fn between(attr: &str, min: f64, max: f64) -> Predicate {
        Predicate::NumRange {
            attr: attr.to_owned(),
            min: Some(min),
            max: Some(max),
        }
    }

    /// `attr = value` helper.
    pub fn eq(attr: &str, value: &str) -> Predicate {
        Predicate::CatEq {
            attr: attr.to_owned(),
            value: value.to_owned(),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)] // builder-style, not an operator
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Compiles the predicate against a schema, resolving names to ids.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, ModelError> {
        Ok(match self {
            Predicate::NumRange { attr, min, max } => BoundPredicate::NumRange {
                attr: schema.require(attr)?,
                min: *min,
                max: *max,
            },
            Predicate::CatEq { attr, value } => BoundPredicate::CatEq {
                attr: schema.require(attr)?,
                value: value.clone(),
            },
            Predicate::CatIn { attr, values } => BoundPredicate::CatIn {
                attr: schema.require(attr)?,
                values: values.clone(),
            },
            Predicate::IsMissing(attr) => BoundPredicate::IsMissing(schema.require(attr)?),
            Predicate::IsPresent(attr) => BoundPredicate::IsPresent(schema.require(attr)?),
            Predicate::And(a, b) => {
                BoundPredicate::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Or(a, b) => {
                BoundPredicate::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
            Predicate::True => BoundPredicate::True,
        })
    }
}

/// A predicate compiled against a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicate {
    /// See [`Predicate::NumRange`].
    NumRange {
        /// Attribute id.
        attr: AttrId,
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Inclusive upper bound.
        max: Option<f64>,
    },
    /// See [`Predicate::CatEq`].
    CatEq {
        /// Attribute id.
        attr: AttrId,
        /// Label to match.
        value: String,
    },
    /// See [`Predicate::CatIn`].
    CatIn {
        /// Attribute id.
        attr: AttrId,
        /// Accepted labels.
        values: Vec<String>,
    },
    /// See [`Predicate::IsMissing`].
    IsMissing(AttrId),
    /// See [`Predicate::IsPresent`].
    IsPresent(AttrId),
    /// Conjunction.
    And(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Disjunction.
    Or(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
    /// Always true.
    True,
}

impl BoundPredicate {
    /// Evaluates the predicate on one dataset row.
    ///
    /// Missing values make comparison predicates false (three-valued logic
    /// collapsed to false, as SQL's `WHERE` does).
    pub fn eval(&self, ds: &Dataset, row: usize) -> bool {
        match self {
            BoundPredicate::NumRange { attr, min, max } => match ds.num(row, *attr) {
                Some(x) => {
                    min.map(|m| x >= m).unwrap_or(true) && max.map(|m| x <= m).unwrap_or(true)
                }
                None => false,
            },
            BoundPredicate::CatEq { attr, value } => {
                ds.cat(row, *attr).map(|s| s == value).unwrap_or(false)
            }
            BoundPredicate::CatIn { attr, values } => ds
                .cat(row, *attr)
                .map(|s| values.iter().any(|v| v == s))
                .unwrap_or(false),
            BoundPredicate::IsMissing(attr) => ds.value(row, *attr).is_missing(),
            BoundPredicate::IsPresent(attr) => !ds.value(row, *attr).is_missing(),
            BoundPredicate::And(a, b) => a.eval(ds, row) && b.eval(ds, row),
            BoundPredicate::Or(a, b) => a.eval(ds, row) || b.eval(ds, row),
            BoundPredicate::Not(p) => !p.eval(ds, row),
            BoundPredicate::True => true,
        }
    }

    /// Evaluates the predicate over all rows, returning a keep-mask.
    pub fn mask(&self, ds: &Dataset) -> Vec<bool> {
        (0..ds.n_rows()).map(|r| self.eval(ds, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::{AttributeDef, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("eph", "kWh/m2yr", ""),
                AttributeDef::categorical("category", ""),
                AttributeDef::numeric("year", "", ""),
            ])
            .unwrap(),
        );
        let mut ds = Dataset::new(schema);
        for (eph, cat, year) in [
            (Some(250.0), Some("E.1.1"), Some(1950.0)),
            (Some(40.0), Some("E.1.1"), Some(2015.0)),
            (Some(120.0), Some("E.8"), Some(1980.0)),
            (None, Some("E.1.1"), Some(2000.0)),
            (Some(300.0), None, None),
        ] {
            let mut r = ds.empty_record();
            r.set(AttrId(0), Value::from(eph)).unwrap();
            r.set(AttrId(1), cat.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            r.set(AttrId(2), Value::from(year)).unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    fn rows(p: &Predicate, ds: &Dataset) -> Vec<usize> {
        let bound = p.bind(ds.schema()).unwrap();
        bound
            .mask(ds)
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    #[test]
    fn num_range_both_bounds() {
        let ds = dataset();
        assert_eq!(
            rows(&Predicate::between("eph", 100.0, 260.0), &ds),
            vec![0, 2]
        );
    }

    #[test]
    fn num_range_open_bounds() {
        let ds = dataset();
        let p = Predicate::NumRange {
            attr: "eph".into(),
            min: Some(200.0),
            max: None,
        };
        assert_eq!(rows(&p, &ds), vec![0, 4]);
        let p = Predicate::NumRange {
            attr: "eph".into(),
            min: None,
            max: Some(120.0),
        };
        assert_eq!(rows(&p, &ds), vec![1, 2]);
    }

    #[test]
    fn missing_values_fail_comparisons() {
        let ds = dataset();
        // Row 3 has missing eph: excluded from every range.
        let p = Predicate::NumRange {
            attr: "eph".into(),
            min: None,
            max: None,
        };
        assert_eq!(rows(&p, &ds), vec![0, 1, 2, 4]);
    }

    #[test]
    fn cat_eq_and_in() {
        let ds = dataset();
        assert_eq!(
            rows(&Predicate::eq("category", "E.1.1"), &ds),
            vec![0, 1, 3]
        );
        let p = Predicate::CatIn {
            attr: "category".into(),
            values: vec!["E.8".into(), "E.2".into()],
        };
        assert_eq!(rows(&p, &ds), vec![2]);
    }

    #[test]
    fn missing_and_present() {
        let ds = dataset();
        assert_eq!(rows(&Predicate::IsMissing("category".into()), &ds), vec![4]);
        assert_eq!(
            rows(&Predicate::IsPresent("eph".into()), &ds),
            vec![0, 1, 2, 4]
        );
    }

    #[test]
    fn boolean_combinators() {
        let ds = dataset();
        // The public-administration case-study filter: E.1.1 and consuming.
        let p = Predicate::eq("category", "E.1.1").and(Predicate::between("eph", 200.0, 1e9));
        assert_eq!(rows(&p, &ds), vec![0]);

        let p = Predicate::eq("category", "E.8").or(Predicate::between("year", 2010.0, 2020.0));
        assert_eq!(rows(&p, &ds), vec![1, 2]);

        let p = Predicate::eq("category", "E.1.1").not();
        assert_eq!(rows(&p, &ds), vec![2, 4]);
    }

    #[test]
    fn true_matches_everything() {
        let ds = dataset();
        assert_eq!(rows(&Predicate::True, &ds).len(), 5);
    }

    #[test]
    fn unknown_attribute_fails_at_bind() {
        let ds = dataset();
        let err = Predicate::eq("nope", "x").bind(ds.schema()).unwrap_err();
        assert_eq!(err, ModelError::UnknownAttribute("nope".into()));
        // Nested errors propagate too.
        let err = Predicate::True
            .and(Predicate::eq("nope", "x"))
            .bind(ds.schema())
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute(_)));
    }

    #[test]
    fn de_morgan_consistency() {
        let ds = dataset();
        let a = Predicate::eq("category", "E.1.1");
        let b = Predicate::between("eph", 0.0, 100.0);
        let lhs = a.clone().and(b.clone()).not();
        let rhs = a.not().or(b.not());
        assert_eq!(rows(&lhs, &ds), rows(&rhs, &ds));
    }
}
