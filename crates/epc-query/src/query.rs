//! Filter + projection + limit over a dataset — the selection step that
//! precedes analytics and visualization.

use crate::predicate::Predicate;
use epc_model::{Dataset, ModelError};
use std::fmt;

/// Query-evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A predicate or projection referenced an unknown attribute.
    Model(ModelError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Model(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ModelError> for QueryError {
    fn from(e: ModelError) -> Self {
        QueryError::Model(e)
    }
}

/// A declarative query over an EPC dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Row filter (`Predicate::True` keeps everything).
    pub filter: Predicate,
    /// Maximum number of rows returned (`None` = unlimited).
    pub limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            filter: Predicate::True,
            limit: None,
        }
    }
}

impl Query {
    /// A query with just a filter.
    pub fn filtered(filter: Predicate) -> Self {
        Query {
            filter,
            limit: None,
        }
    }

    /// Sets the row limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Indices of the rows matching the filter (respecting the limit), in
    /// dataset order.
    pub fn matching_rows(&self, ds: &Dataset) -> Result<Vec<usize>, QueryError> {
        let bound = self.filter.bind(ds.schema())?;
        let mut rows = Vec::new();
        for r in 0..ds.n_rows() {
            if self.limit.map(|l| rows.len() >= l).unwrap_or(false) {
                break;
            }
            if bound.eval(ds, r) {
                rows.push(r);
            }
        }
        Ok(rows)
    }

    /// Materializes the result as a new dataset.
    pub fn run(&self, ds: &Dataset) -> Result<Dataset, QueryError> {
        let rows = self.matching_rows(ds)?;
        Ok(ds.select_rows(&rows)?)
    }

    /// Counts matching rows without materializing.
    pub fn count(&self, ds: &Dataset) -> Result<usize, QueryError> {
        Ok(self.matching_rows(ds)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::{AttrId, AttributeDef, Schema, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("x", "", ""),
                AttributeDef::categorical("kind", ""),
            ])
            .unwrap(),
        );
        let mut ds = Dataset::new(schema);
        for i in 0..20 {
            let mut r = ds.empty_record();
            r.set(AttrId(0), Value::num(i as f64)).unwrap();
            r.set(
                AttrId(1),
                Value::cat(if i % 2 == 0 { "even" } else { "odd" }),
            )
            .unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn default_query_returns_everything() {
        let ds = dataset();
        let out = Query::default().run(&ds).unwrap();
        assert_eq!(out.n_rows(), 20);
    }

    #[test]
    fn filter_and_limit() {
        let ds = dataset();
        let q = Query::filtered(Predicate::eq("kind", "even")).with_limit(3);
        let rows = q.matching_rows(&ds).unwrap();
        assert_eq!(rows, vec![0, 2, 4]);
        let out = q.run(&ds).unwrap();
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.num(2, AttrId(0)), Some(4.0));
    }

    #[test]
    fn count_matches_run() {
        let ds = dataset();
        let q = Query::filtered(Predicate::between("x", 5.0, 9.0));
        assert_eq!(q.count(&ds).unwrap(), 5);
        assert_eq!(q.run(&ds).unwrap().n_rows(), 5);
    }

    #[test]
    fn bad_attribute_is_reported() {
        let ds = dataset();
        let q = Query::filtered(Predicate::eq("ghost", "x"));
        let err = q.run(&ds).unwrap_err();
        assert!(matches!(
            err,
            QueryError::Model(ModelError::UnknownAttribute(_))
        ));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn limit_zero_returns_empty() {
        let ds = dataset();
        let q = Query::default().with_limit(0);
        assert_eq!(q.run(&ds).unwrap().n_rows(), 0);
    }
}
