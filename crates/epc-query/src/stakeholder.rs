//! Stakeholder profiles (§2.2.1).
//!
//! "Possible stakeholders may be citizens, public administration and energy
//! scientists. … Based on the target of each stakeholder, the system is
//! able to automatically propose to the specific end-user an optimal set of
//! interesting reports and graphical representations."

use epc_model::{wellknown as wk, Granularity};
use serde::{Deserialize, Serialize};

/// The three stakeholder roles of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stakeholder {
    /// A citizen exploring where the efficient buildings are (e.g. to buy
    /// a well-performing flat).
    Citizen,
    /// The public administration identifying areas to target with
    /// renovation incentives.
    PublicAdministration,
    /// An energy scientist running benchmarking analyses with supervised
    /// and unsupervised techniques.
    EnergyScientist,
}

impl Stakeholder {
    /// All roles.
    pub const ALL: [Stakeholder; 3] = [
        Stakeholder::Citizen,
        Stakeholder::PublicAdministration,
        Stakeholder::EnergyScientist,
    ];

    /// `true` when the role counts as a domain expert whose configuration
    /// choices should be recorded as defaults for others (§2.1.2).
    pub fn is_expert(&self) -> bool {
        matches!(self, Stakeholder::EnergyScientist)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Stakeholder::Citizen => "citizen",
            Stakeholder::PublicAdministration => "public administration",
            Stakeholder::EnergyScientist => "energy scientist",
        }
    }
}

/// The kinds of report a dashboard can contain (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportKind {
    /// Choropleth map of an attribute average per area.
    ChoroplethMap,
    /// Scatter map of individual certificates.
    ScatterMap,
    /// Cluster-marker map (multi-variable aggregated markers).
    ClusterMarkerMap,
    /// Frequency-distribution plot.
    FrequencyDistribution,
    /// Association-rule table.
    AssociationRules,
    /// Correlation matrix.
    CorrelationMatrix,
    /// Per-cluster summary table.
    ClusterSummary,
    /// Boxplots of the expert-analysis attributes with flagged outliers
    /// (the "graphic boxplot method" view of §2.1.2).
    OutlierBoxplots,
}

/// The report proposal INDICE generates for a stakeholder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSpec {
    /// Who this proposal targets.
    pub stakeholder: Stakeholder,
    /// Attributes the proposal focuses on.
    pub attributes: Vec<String>,
    /// Response variable coloured/analysed against.
    pub response: String,
    /// Report kinds to include, in presentation order.
    pub reports: Vec<ReportKind>,
    /// Initial spatial granularity of the maps.
    pub granularity: Granularity,
}

/// Builds the default proposal for a stakeholder (the paper's automatic
/// "optimal set of interesting reports"); the user can override any field.
pub fn default_report_spec(stakeholder: Stakeholder) -> ReportSpec {
    match stakeholder {
        // Citizens: where are the efficient buildings? Simple maps and
        // distributions at neighbourhood level.
        Stakeholder::Citizen => ReportSpec {
            stakeholder,
            attributes: vec![
                wk::EPH.into(),
                wk::EPC_CLASS.into(),
                wk::HEAT_SURFACE.into(),
            ],
            response: wk::EPH.into(),
            reports: vec![
                ReportKind::ChoroplethMap,
                ReportKind::ScatterMap,
                ReportKind::FrequencyDistribution,
            ],
            granularity: Granularity::Neighbourhood,
        },
        // PA: the case-study profile — thermo-physical features, clustering
        // and rules at district level.
        Stakeholder::PublicAdministration => ReportSpec {
            stakeholder,
            attributes: wk::CASE_STUDY_FEATURES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            response: wk::EPH.into(),
            reports: vec![
                ReportKind::CorrelationMatrix,
                ReportKind::ClusterMarkerMap,
                ReportKind::FrequencyDistribution,
                ReportKind::AssociationRules,
                ReportKind::ClusterSummary,
            ],
            granularity: Granularity::District,
        },
        // Scientists: everything, starting from the full correlation
        // structure at unit level.
        Stakeholder::EnergyScientist => ReportSpec {
            stakeholder,
            attributes: vec![
                wk::ASPECT_RATIO.into(),
                wk::U_OPAQUE.into(),
                wk::U_WINDOWS.into(),
                wk::HEAT_SURFACE.into(),
                wk::ETA_H.into(),
                wk::ETA_GENERATION.into(),
                wk::ETA_DISTRIBUTION.into(),
            ],
            response: wk::EPH.into(),
            reports: vec![
                ReportKind::CorrelationMatrix,
                ReportKind::OutlierBoxplots,
                ReportKind::ClusterSummary,
                ReportKind::AssociationRules,
                ReportKind::ScatterMap,
                ReportKind::FrequencyDistribution,
                ReportKind::ClusterMarkerMap,
            ],
            granularity: Granularity::HousingUnit,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_scientist_is_expert() {
        assert!(Stakeholder::EnergyScientist.is_expert());
        assert!(!Stakeholder::Citizen.is_expert());
        assert!(!Stakeholder::PublicAdministration.is_expert());
    }

    #[test]
    fn pa_profile_matches_the_case_study() {
        let spec = default_report_spec(Stakeholder::PublicAdministration);
        assert_eq!(
            spec.attributes,
            vec![
                "aspect_ratio",
                "u_opaque",
                "u_windows",
                "heat_surface",
                "eta_h"
            ]
        );
        assert_eq!(spec.response, "eph");
        assert_eq!(spec.granularity, Granularity::District);
        assert!(spec.reports.contains(&ReportKind::ClusterMarkerMap));
        assert!(spec.reports.contains(&ReportKind::AssociationRules));
        assert!(spec.reports.contains(&ReportKind::CorrelationMatrix));
    }

    #[test]
    fn citizen_profile_is_simpler() {
        let spec = default_report_spec(Stakeholder::Citizen);
        assert!(!spec.reports.contains(&ReportKind::AssociationRules));
        assert!(!spec.reports.contains(&ReportKind::CorrelationMatrix));
        assert_eq!(spec.granularity, Granularity::Neighbourhood);
    }

    #[test]
    fn scientist_profile_is_the_richest() {
        let c = default_report_spec(Stakeholder::Citizen);
        let pa = default_report_spec(Stakeholder::PublicAdministration);
        let s = default_report_spec(Stakeholder::EnergyScientist);
        assert!(s.reports.len() >= pa.reports.len());
        assert!(pa.reports.len() > c.reports.len());
        assert!(s.attributes.len() > pa.attributes.len());
    }

    #[test]
    fn every_profile_names_a_response() {
        for role in Stakeholder::ALL {
            let spec = default_report_spec(role);
            assert!(!spec.response.is_empty());
            assert!(!spec.attributes.is_empty());
            assert!(!spec.reports.is_empty());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Stakeholder::Citizen.name(), "citizen");
        assert_eq!(
            Stakeholder::PublicAdministration.name(),
            "public administration"
        );
        assert_eq!(Stakeholder::EnergyScientist.name(), "energy scientist");
    }
}
