//! # epc-query
//!
//! The querying engine of §2.2.1: attribute-level selection and exploration
//! of EPC collections, stakeholder-aware report proposals, and the
//! expert-configuration store behind the "expert-driven univariate
//! analysis" of §2.1.2.
//!
//! * [`predicate`] — a small predicate AST over schema attributes, compiled
//!   ("bound") against a schema for fast per-row evaluation;
//! * [`query`] — filter + projection + limit over a dataset;
//! * [`aggregate`] — group-by aggregation (the per-area averages the maps
//!   colour);
//! * [`stakeholder`] — citizen / public-administration / energy-scientist
//!   profiles, each with the attribute sets and report kinds INDICE
//!   proposes automatically;
//! * [`config_store`] — a concurrent store of expert users' configurations
//!   that suggests defaults to non-expert users.

pub mod aggregate;
pub mod columnar;
pub mod config_store;
pub mod predicate;
pub mod query;
pub mod report;
pub mod stakeholder;

pub use aggregate::{group_by, AggFn, GroupRow};
pub use columnar::{group_by_columnar, mask_columnar, matching_rows_columnar, selection_bitmap};
pub use config_store::ExpertConfigStore;
pub use predicate::{BoundPredicate, Predicate};
pub use query::{Query, QueryError};
pub use report::{describe, describe_text, AttributeSummary};
pub use stakeholder::{ReportKind, ReportSpec, Stakeholder};
