//! The expert-configuration store of §2.1.2.
//!
//! "By collecting and storing expert user (e.g., energy scientists) INDICE
//! configurations, the non-expert users can receive interesting and
//! effective suggestions to properly deal with noisy data … their choices
//! are automatically stored as default configurations for non-expert
//! users."
//!
//! The store is keyed by attribute name and generic over the configuration
//! payload (the `indice` crate instantiates it with its outlier-method
//! enum). It is thread-safe: dashboards record choices from interactive
//! sessions while analytics pipelines read suggestions concurrently.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;

/// A concurrent, frequency-ranked store of expert configurations.
#[derive(Debug, Default)]
pub struct ExpertConfigStore<C>
where
    C: Clone + Eq + Hash,
{
    // attribute name → (config → times chosen by an expert)
    by_attribute: RwLock<HashMap<String, HashMap<C, usize>>>,
}

impl<C> ExpertConfigStore<C>
where
    C: Clone + Eq + Hash,
{
    /// An empty store.
    pub fn new() -> Self {
        ExpertConfigStore {
            by_attribute: RwLock::new(HashMap::new()),
        }
    }

    /// Records that an expert chose `config` for `attribute`.
    pub fn record(&self, attribute: &str, config: C) {
        let mut guard = self.by_attribute.write();
        *guard
            .entry(attribute.to_owned())
            .or_default()
            .entry(config)
            .or_insert(0) += 1;
    }

    /// The configuration most frequently chosen by experts for
    /// `attribute`, if any — what a non-expert is offered as default.
    pub fn suggest(&self, attribute: &str) -> Option<C> {
        let guard = self.by_attribute.read();
        let counts = guard.get(attribute)?;
        counts
            .iter()
            .max_by_key(|&(_, n)| *n)
            .map(|(c, _)| c.clone())
    }

    /// Number of recorded choices for `attribute`.
    pub fn n_records(&self, attribute: &str) -> usize {
        self.by_attribute
            .read()
            .get(attribute)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Attributes with at least one recorded choice, sorted.
    pub fn attributes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_attribute.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Clears all recorded choices.
    pub fn clear(&self) {
        self.by_attribute.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Method {
        Boxplot,
        Gesd,
        Mad,
    }

    #[test]
    fn empty_store_suggests_nothing() {
        let store: ExpertConfigStore<Method> = ExpertConfigStore::new();
        assert_eq!(store.suggest("u_windows"), None);
        assert_eq!(store.n_records("u_windows"), 0);
        assert!(store.attributes().is_empty());
    }

    #[test]
    fn majority_choice_wins() {
        let store = ExpertConfigStore::new();
        store.record("u_windows", Method::Gesd);
        store.record("u_windows", Method::Mad);
        store.record("u_windows", Method::Gesd);
        assert_eq!(store.suggest("u_windows"), Some(Method::Gesd));
        assert_eq!(store.n_records("u_windows"), 3);
    }

    #[test]
    fn suggestions_are_per_attribute() {
        let store = ExpertConfigStore::new();
        store.record("u_windows", Method::Gesd);
        store.record("aspect_ratio", Method::Boxplot);
        assert_eq!(store.suggest("u_windows"), Some(Method::Gesd));
        assert_eq!(store.suggest("aspect_ratio"), Some(Method::Boxplot));
        assert_eq!(store.suggest("eta_h"), None);
        assert_eq!(store.attributes(), vec!["aspect_ratio", "u_windows"]);
    }

    #[test]
    fn clear_resets() {
        let store = ExpertConfigStore::new();
        store.record("x", Method::Mad);
        store.clear();
        assert_eq!(store.suggest("x"), None);
    }

    #[test]
    fn concurrent_recording_is_safe_and_lossless() {
        let store = ExpertConfigStore::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let m = if t % 2 == 0 {
                            Method::Gesd
                        } else {
                            Method::Mad
                        };
                        store.record("eph", m);
                    }
                });
            }
        });
        assert_eq!(store.n_records("eph"), 800);
        // 4 threads × 100 each → tie between Gesd and Mad broken by map
        // iteration; either is acceptable, but the suggestion must exist.
        assert!(store.suggest("eph").is_some());
    }

    #[test]
    fn updated_majority_flips_suggestion() {
        let store = ExpertConfigStore::new();
        store.record("x", Method::Boxplot);
        assert_eq!(store.suggest("x"), Some(Method::Boxplot));
        store.record("x", Method::Mad);
        store.record("x", Method::Mad);
        assert_eq!(store.suggest("x"), Some(Method::Mad));
    }
}
