//! Textual dataset reports: the per-attribute summary table INDICE's
//! setting panel shows ("a setting panel to select one or more distribution
//! visualizations, including the description of the main statistical
//! indices", §2.3).

use epc_model::{ColumnData, Dataset};
use epc_stats::descriptive::NumericSummary;
use epc_stats::freq::categorical_summary;

/// One attribute's summary line.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeSummary {
    /// Numeric attribute: count/mean/std/quartiles.
    Numeric {
        /// Attribute name.
        name: String,
        /// Missing-value count.
        missing: usize,
        /// The statistics (absent when every value is missing).
        stats: Option<NumericSummary>,
    },
    /// Categorical attribute: count/distinct/mode.
    Categorical {
        /// Attribute name.
        name: String,
        /// Missing-value count.
        missing: usize,
        /// Distinct labels.
        distinct: usize,
        /// The most common label and its count, when any value exists.
        mode: Option<(String, usize)>,
    },
}

impl AttributeSummary {
    /// The attribute name.
    pub fn name(&self) -> &str {
        match self {
            AttributeSummary::Numeric { name, .. } => name,
            AttributeSummary::Categorical { name, .. } => name,
        }
    }
}

/// Summarizes every attribute of the dataset, in schema order.
pub fn describe(dataset: &Dataset) -> Vec<AttributeSummary> {
    dataset
        .schema()
        .iter()
        .map(|(id, def)| {
            let column = dataset.column(id).expect("schema and columns aligned");
            let missing = column.missing_count();
            match column.data() {
                ColumnData::Numeric(_) => {
                    let values = dataset.numeric_values(id);
                    AttributeSummary::Numeric {
                        name: def.name.clone(),
                        missing,
                        stats: NumericSummary::from_slice(&values),
                    }
                }
                ColumnData::Categorical(col) => {
                    let labels = col
                        .codes()
                        .iter()
                        .filter_map(|c| c.and_then(|c| col.label(c)));
                    let summary = categorical_summary(labels, 1);
                    AttributeSummary::Categorical {
                        name: def.name.clone(),
                        missing,
                        distinct: summary.as_ref().map(|s| s.distinct).unwrap_or(0),
                        mode: summary.map(|s| (s.mode, s.mode_count)),
                    }
                }
            }
        })
        .collect()
}

/// Renders the summaries as an aligned text table.
pub fn describe_text(dataset: &Dataset) -> String {
    let mut out = format!(
        "{} rows x {} attributes\n{:<28} {:>8} {:>10} {:>12} {:>12} {:>12}\n",
        dataset.n_rows(),
        dataset.n_cols(),
        "attribute",
        "missing",
        "kind",
        "mean/mode",
        "std/distinct",
        "median/top"
    );
    for s in describe(dataset) {
        match s {
            AttributeSummary::Numeric {
                name,
                missing,
                stats,
            } => match stats {
                Some(st) => out.push_str(&format!(
                    "{name:<28} {missing:>8} {:>10} {:>12.3} {:>12.3} {:>12.3}\n",
                    "numeric", st.mean, st.std, st.median
                )),
                None => out.push_str(&format!(
                    "{name:<28} {missing:>8} {:>10} {:>12} {:>12} {:>12}\n",
                    "numeric", "-", "-", "-"
                )),
            },
            AttributeSummary::Categorical {
                name,
                missing,
                distinct,
                mode,
            } => {
                let (mode_label, mode_count) = mode.unwrap_or_else(|| ("-".to_owned(), 0));
                out.push_str(&format!(
                    "{name:<28} {missing:>8} {:>10} {:>12} {distinct:>12} {:>12}\n",
                    "categorical",
                    truncate(&mode_label, 12),
                    mode_count
                ));
            }
        }
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        s.chars()
            .take(max - 1)
            .chain(std::iter::once('…'))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::{AttrId, AttributeDef, Schema, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::numeric("eph", "kWh", ""),
                AttributeDef::categorical("class", ""),
            ])
            .unwrap(),
        );
        let mut ds = Dataset::new(schema);
        for (e, c) in [
            (Some(100.0), Some("D")),
            (Some(200.0), Some("D")),
            (None, Some("A")),
            (Some(300.0), None),
        ] {
            let mut r = ds.empty_record();
            r.set(AttrId(0), Value::from(e)).unwrap();
            r.set(AttrId(1), c.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn describe_covers_every_attribute() {
        let summaries = describe(&dataset());
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].name(), "eph");
        assert_eq!(summaries[1].name(), "class");
    }

    #[test]
    fn numeric_summary_values() {
        let summaries = describe(&dataset());
        match &summaries[0] {
            AttributeSummary::Numeric { missing, stats, .. } => {
                assert_eq!(*missing, 1);
                let st = stats.as_ref().unwrap();
                assert_eq!(st.count, 3);
                assert_eq!(st.mean, 200.0);
                assert_eq!(st.median, 200.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn categorical_summary_values() {
        let summaries = describe(&dataset());
        match &summaries[1] {
            AttributeSummary::Categorical {
                missing,
                distinct,
                mode,
                ..
            } => {
                assert_eq!(*missing, 1);
                assert_eq!(*distinct, 2);
                assert_eq!(mode.as_ref().unwrap(), &("D".to_owned(), 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_table_is_renderable() {
        let text = describe_text(&dataset());
        assert!(text.contains("4 rows x 2 attributes"));
        assert!(text.contains("eph"));
        assert!(text.contains("categorical"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn empty_dataset_reports_dashes() {
        let schema = Arc::new(Schema::new(vec![AttributeDef::numeric("x", "", "")]).unwrap());
        let ds = Dataset::new(schema);
        let text = describe_text(&ds);
        assert!(text.contains("0 rows"));
    }
}
