//! Columnar twins of the row-path query operations.
//!
//! Each function here mirrors a row-path sibling *exactly* — same missing
//! semantics, same group ordering, same aggregate application — but runs
//! over an [`epc_columnar::ColumnStore`]: predicates become selection
//! bitmaps with zone-map block skipping, and group-by walks dictionary
//! codes instead of owned label strings. Bitwise output equivalence with
//! the row path is gated by the differential harness in
//! `tests/columnar.rs`.

use epc_columnar::{kernels, Bitmap, ColumnStore, ScanStats, StoreColumn};
use epc_model::ModelError;

use crate::aggregate::{AggFn, GroupRow};
use crate::predicate::{BoundPredicate, Predicate};
use crate::query::{Query, QueryError};

/// The label the row path files missing group values under.
const MISSING_LABEL: &str = "(missing)";

/// Evaluates a bound predicate into a selection bitmap.
///
/// Leaf semantics mirror [`BoundPredicate::eval`]: a missing value (or a
/// type-mismatched attribute) satisfies no comparison, so the leaf bitmap
/// holds exactly the rows where the row path would return `true` — which
/// makes the word-wise `and`/`or`/`not` algebra equivalent to per-row
/// boolean evaluation.
pub fn selection_bitmap(
    pred: &BoundPredicate,
    store: &ColumnStore,
    stats: &mut ScanStats,
) -> Bitmap {
    let n = store.n_rows();
    match pred {
        BoundPredicate::NumRange { attr, min, max } => match store.column(*attr) {
            Some(StoreColumn::Numeric(c)) => kernels::num_range(c, *min, *max, stats),
            _ => Bitmap::empty(n),
        },
        BoundPredicate::CatEq { attr, value } => match store.column(*attr) {
            Some(StoreColumn::Categorical(c)) => kernels::cat_eq(c, value, stats),
            _ => Bitmap::empty(n),
        },
        BoundPredicate::CatIn { attr, values } => match store.column(*attr) {
            Some(StoreColumn::Categorical(c)) => kernels::cat_in(c, values, stats),
            _ => Bitmap::empty(n),
        },
        BoundPredicate::IsMissing(attr) => kernels::is_missing(store, *attr),
        BoundPredicate::IsPresent(attr) => kernels::is_present(store, *attr),
        BoundPredicate::And(a, b) => {
            let left = selection_bitmap(a, store, stats);
            left.and(&selection_bitmap(b, store, stats))
        }
        BoundPredicate::Or(a, b) => {
            let left = selection_bitmap(a, store, stats);
            left.or(&selection_bitmap(b, store, stats))
        }
        BoundPredicate::Not(p) => selection_bitmap(p, store, stats).not(),
        BoundPredicate::True => Bitmap::full(n),
    }
}

/// Columnar twin of [`BoundPredicate::mask`]: binds and evaluates the
/// predicate, returning the keep-mask plus block-skip accounting.
pub fn mask_columnar(
    pred: &Predicate,
    store: &ColumnStore,
) -> Result<(Vec<bool>, ScanStats), ModelError> {
    let bound = pred.bind(store.schema())?;
    let mut stats = ScanStats::default();
    let bitmap = selection_bitmap(&bound, store, &mut stats);
    Ok((bitmap.to_bools(), stats))
}

/// Columnar twin of [`Query::matching_rows`]: matching row indices in
/// dataset order, respecting the limit.
pub fn matching_rows_columnar(
    query: &Query,
    store: &ColumnStore,
    stats: &mut ScanStats,
) -> Result<Vec<usize>, QueryError> {
    let bound = query.filter.bind(store.schema())?;
    let bitmap = selection_bitmap(&bound, store, stats);
    let rows = match query.limit {
        Some(limit) => bitmap.ones().take(limit).collect(),
        None => bitmap.ones().collect(),
    };
    Ok(rows)
}

/// Columnar twin of [`crate::aggregate::group_by`]: groups by a
/// categorical attribute over dictionary ids and aggregates a numeric
/// attribute. Output rows, ordering (label-sorted with `"(missing)"`
/// collated in place), group counts, and aggregate values are identical
/// to the row path.
pub fn group_by_columnar(
    store: &ColumnStore,
    group_attr: &str,
    value_attr: &str,
    aggs: &[AggFn],
) -> Result<Vec<GroupRow>, ModelError> {
    let gid = store.schema().require(group_attr)?;
    let vid = store.schema().require(value_attr)?;
    let n = store.n_rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let values: Vec<Option<f64>> = match store.numeric(vid) {
        Some(c) => c.to_slots(),
        None => vec![None; n],
    };

    let emit = |group: &str, count: usize, vals: &[f64]| GroupRow {
        group: group.to_owned(),
        n_rows: count,
        values: aggs.iter().map(|a| a.apply(vals)).collect(),
    };

    match store.categorical(gid) {
        Some(cat) => {
            let codes = cat.to_code_slots();
            let dict = cat.dict();
            // A literal "(missing)" label shares its bucket with null rows
            // in the row path; route nulls to it so interleaved value
            // order (and therefore Median/Std) matches exactly.
            let missing_as = dict.id_of(MISSING_LABEL);
            let mut buckets: Vec<(usize, Vec<f64>)> = vec![(0, Vec::new()); dict.len()];
            let mut null_bucket: (usize, Vec<f64>) = (0, Vec::new());
            for (row, code) in codes.iter().enumerate() {
                let bucket = match code.or(missing_as) {
                    Some(c) => &mut buckets[c as usize],
                    None => &mut null_bucket,
                };
                bucket.0 += 1;
                if let Some(v) = values[row] {
                    bucket.1.push(v);
                }
            }
            // Dictionary ids are sorted label order, so emitting used
            // buckets in id order reproduces the row path's BTreeMap
            // order; the null bucket collates at "(missing)"'s sort
            // position among the labels.
            let mut out = Vec::new();
            let mut null_pending = null_bucket.0 > 0;
            for (id, (count, vals)) in buckets.iter().enumerate() {
                let label = dict.label(id as u32).unwrap_or(MISSING_LABEL);
                if null_pending && MISSING_LABEL < label {
                    out.push(emit(MISSING_LABEL, null_bucket.0, &null_bucket.1));
                    null_pending = false;
                }
                if *count > 0 {
                    out.push(emit(label, *count, vals));
                }
            }
            if null_pending {
                out.push(emit(MISSING_LABEL, null_bucket.0, &null_bucket.1));
            }
            Ok(out)
        }
        // Group attribute is not categorical: the row path sees every
        // label as missing and produces one "(missing)" group.
        None => {
            let vals: Vec<f64> = values.iter().copied().flatten().collect();
            Ok(vec![emit(MISSING_LABEL, n, &vals)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::group_by;
    use epc_columnar::DatasetColumnarExt;
    use epc_model::{AttrId, AttributeDef, Dataset, Schema, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::categorical("district", ""),
                AttributeDef::numeric("eph", "", ""),
            ])
            .unwrap(),
        );
        let mut ds = Dataset::new(schema);
        for (d, e) in [
            (Some("D1"), Some(100.0)),
            (None, Some(75.0)),
            (Some("(missing)"), Some(10.0)),
            (Some("D2"), Some(50.0)),
            (Some("D1"), Some(200.0)),
            (Some("D2"), None),
            (None, Some(33.0)),
            (Some("A-first"), Some(1.0)),
        ] {
            let mut r = ds.empty_record();
            r.set(AttrId(0), d.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            r.set(AttrId(1), e.map(Value::Num).unwrap_or(Value::Missing))
                .unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn group_by_matches_row_path_including_missing_collation() {
        let ds = dataset();
        let store = ds.to_columns();
        let aggs = [
            AggFn::Mean,
            AggFn::Count,
            AggFn::Min,
            AggFn::Max,
            AggFn::Median,
            AggFn::Std,
        ];
        let row = group_by(&ds, "district", "eph", &aggs).unwrap();
        let col = group_by_columnar(&store, "district", "eph", &aggs).unwrap();
        assert_eq!(row, col);
        // The literal "(missing)" label merged with the null rows.
        assert_eq!(col.iter().filter(|g| g.group == "(missing)").count(), 1);
    }

    #[test]
    fn group_by_on_numeric_group_attr_matches_row_path() {
        let ds = dataset();
        let store = ds.to_columns();
        let row = group_by(&ds, "eph", "eph", &[AggFn::Count]).unwrap();
        let col = group_by_columnar(&store, "eph", "eph", &[AggFn::Count]).unwrap();
        assert_eq!(row, col);
    }

    #[test]
    fn mask_and_matching_rows_match_row_path() {
        let ds = dataset();
        let store = ds.to_columns();
        let pred = Predicate::eq("district", "D1")
            .or(Predicate::between("eph", 0.0, 60.0))
            .and(Predicate::IsPresent("eph".into()).not().not());
        let bound = pred.bind(ds.schema()).unwrap();
        let (mask, _) = mask_columnar(&pred, &store).unwrap();
        assert_eq!(mask, bound.mask(&ds));

        let q = Query::filtered(pred).with_limit(3);
        let mut stats = ScanStats::default();
        assert_eq!(
            matching_rows_columnar(&q, &store, &mut stats).unwrap(),
            q.matching_rows(&ds).unwrap()
        );
    }

    #[test]
    fn unknown_attributes_error_like_the_row_path() {
        let store = dataset().to_columns();
        assert!(mask_columnar(&Predicate::eq("ghost", "x"), &store).is_err());
        assert!(group_by_columnar(&store, "ghost", "eph", &[AggFn::Mean]).is_err());
    }
}
