//! Group-by aggregation: the per-area statistics behind choropleth colours
//! ("each area is colored according to the average value of the considered
//! variable", §2.3) and cluster-marker labels.

use epc_model::{Dataset, ModelError};
use epc_stats::quantile::median;

/// Aggregation function over a numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Arithmetic mean.
    Mean,
    /// Number of non-missing values.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median.
    Median,
    /// Sample standard deviation.
    Std,
}

impl AggFn {
    /// Applies the aggregate to a dense value slice. `None` when the slice
    /// is empty (except `Count`, which is 0).
    pub fn apply(&self, values: &[f64]) -> Option<f64> {
        match self {
            AggFn::Count => Some(values.len() as f64),
            AggFn::Mean => epc_stats::descriptive::mean(values),
            AggFn::Min => epc_stats::descriptive::min(values),
            AggFn::Max => epc_stats::descriptive::max(values),
            AggFn::Median => median(values),
            AggFn::Std => epc_stats::descriptive::sample_std(values).or(if values.len() == 1 {
                Some(0.0)
            } else {
                None
            }),
        }
    }

    /// Display name used in table headers.
    pub fn name(&self) -> &'static str {
        match self {
            AggFn::Mean => "mean",
            AggFn::Count => "count",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Median => "median",
            AggFn::Std => "std",
        }
    }
}

/// One group's aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// The grouping label (e.g. a district name).
    pub group: String,
    /// Number of rows in the group (including missing-value rows).
    pub n_rows: usize,
    /// One value per requested aggregate (aligned with the input order);
    /// `None` when the aggregate is undefined for the group.
    pub values: Vec<Option<f64>>,
}

/// Groups `ds` by a categorical attribute and aggregates a numeric
/// attribute with each function in `aggs`. Rows with a missing group label
/// are collected under `"(missing)"`. Results are sorted by group label.
pub fn group_by(
    ds: &Dataset,
    group_attr: &str,
    value_attr: &str,
    aggs: &[AggFn],
) -> Result<Vec<GroupRow>, ModelError> {
    let gid = ds.schema().require(group_attr)?;
    let vid = ds.schema().require(value_attr)?;
    let mut groups: std::collections::BTreeMap<String, (usize, Vec<f64>)> =
        std::collections::BTreeMap::new();
    for row in 0..ds.n_rows() {
        let label = ds.cat(row, gid).unwrap_or("(missing)").to_owned();
        let entry = groups.entry(label).or_default();
        entry.0 += 1;
        if let Some(x) = ds.num(row, vid) {
            entry.1.push(x);
        }
    }
    Ok(groups
        .into_iter()
        .map(|(group, (n_rows, values))| GroupRow {
            group,
            n_rows,
            values: aggs.iter().map(|a| a.apply(&values)).collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::{AttrId, AttributeDef, Schema, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::categorical("district", ""),
                AttributeDef::numeric("eph", "", ""),
            ])
            .unwrap(),
        );
        let mut ds = Dataset::new(schema);
        for (d, e) in [
            (Some("D1"), Some(100.0)),
            (Some("D1"), Some(200.0)),
            (Some("D2"), Some(50.0)),
            (Some("D2"), None),
            (None, Some(75.0)),
        ] {
            let mut r = ds.empty_record();
            r.set(AttrId(0), d.map(Value::cat).unwrap_or(Value::Missing))
                .unwrap();
            r.set(AttrId(1), Value::from(e)).unwrap();
            ds.push_record(r).unwrap();
        }
        ds
    }

    #[test]
    fn mean_per_group() {
        let rows = group_by(&dataset(), "district", "eph", &[AggFn::Mean]).unwrap();
        assert_eq!(rows.len(), 3);
        // Sorted: (missing), D1, D2
        assert_eq!(rows[0].group, "(missing)");
        assert_eq!(rows[1].group, "D1");
        assert_eq!(rows[1].values[0], Some(150.0));
        assert_eq!(rows[2].group, "D2");
        assert_eq!(rows[2].values[0], Some(50.0));
    }

    #[test]
    fn counts_exclude_missing_values_but_n_rows_does_not() {
        let rows = group_by(&dataset(), "district", "eph", &[AggFn::Count]).unwrap();
        let d2 = rows.iter().find(|r| r.group == "D2").unwrap();
        assert_eq!(d2.n_rows, 2);
        assert_eq!(d2.values[0], Some(1.0), "one non-missing eph in D2");
    }

    #[test]
    fn multiple_aggregates_align() {
        let rows = group_by(
            &dataset(),
            "district",
            "eph",
            &[AggFn::Min, AggFn::Max, AggFn::Median, AggFn::Std],
        )
        .unwrap();
        let d1 = rows.iter().find(|r| r.group == "D1").unwrap();
        assert_eq!(d1.values[0], Some(100.0));
        assert_eq!(d1.values[1], Some(200.0));
        assert_eq!(d1.values[2], Some(150.0));
        assert!((d1.values[3].unwrap() - 70.710678).abs() < 1e-5);
    }

    #[test]
    fn std_of_single_value_group_is_zero() {
        let rows = group_by(&dataset(), "district", "eph", &[AggFn::Std]).unwrap();
        let d2 = rows.iter().find(|r| r.group == "D2").unwrap();
        assert_eq!(d2.values[0], Some(0.0));
    }

    #[test]
    fn unknown_attributes_error() {
        assert!(group_by(&dataset(), "nope", "eph", &[AggFn::Mean]).is_err());
        assert!(group_by(&dataset(), "district", "nope", &[AggFn::Mean]).is_err());
    }

    #[test]
    fn agg_fn_names() {
        assert_eq!(AggFn::Mean.name(), "mean");
        assert_eq!(AggFn::Count.name(), "count");
    }

    #[test]
    fn empty_dataset_gives_no_groups() {
        let schema = Arc::new(
            Schema::new(vec![
                AttributeDef::categorical("g", ""),
                AttributeDef::numeric("v", "", ""),
            ])
            .unwrap(),
        );
        let ds = Dataset::new(schema);
        assert!(group_by(&ds, "g", "v", &[AggFn::Mean]).unwrap().is_empty());
    }
}
