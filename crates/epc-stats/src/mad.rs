//! The non-parametric Median Absolute Deviation (MAD) outlier method of
//! §2.1.2 — the third univariate technique INDICE integrates.
//!
//! Following Iglewicz & Hoaglin (1993), the modified z-score is
//! `M_i = 0.6745 · (x_i − median) / MAD`, and "every point with a score
//! above 3.5 is considered an outlier" — the cut-off the paper adopts.

use crate::quantile::median;

/// The consistency constant making MAD comparable to the standard deviation
/// for normal data (`Φ⁻¹(0.75) ≈ 0.6745`).
pub const MAD_CONSISTENCY: f64 = 0.6745;

/// The paper's cut-off on the absolute modified z-score.
pub const DEFAULT_CUTOFF: f64 = 3.5;

/// Median absolute deviation from the median; `None` for empty input.
pub fn mad(data: &[f64]) -> Option<f64> {
    let med = median(data)?;
    let deviations: Vec<f64> = data.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Modified z-scores `0.6745 · (x − median) / MAD` for every point.
///
/// When the MAD is zero (more than half the data identical), scores are 0
/// for points equal to the median and ±∞ otherwise, so equality-heavy data
/// still flags genuinely different points.
pub fn modified_z_scores(data: &[f64]) -> Vec<f64> {
    let Some(med) = median(data) else {
        return Vec::new();
    };
    let m = mad(data).unwrap_or(0.0);
    data.iter()
        .map(|&x| {
            let dev = x - med;
            if m == 0.0 {
                if dev == 0.0 {
                    0.0
                } else {
                    dev.signum() * f64::INFINITY
                }
            } else {
                MAD_CONSISTENCY * dev / m
            }
        })
        .collect()
}

/// Indices of points whose |modified z-score| exceeds `cutoff`
/// ([`DEFAULT_CUTOFF`] = 3.5 in the paper), ascending.
pub fn mad_outliers(data: &[f64], cutoff: f64) -> Vec<usize> {
    modified_z_scores(data)
        .into_iter()
        .enumerate()
        .filter(|(_, z)| z.abs() > cutoff)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mad_hand_example() {
        // data = [1, 1, 2, 2, 4, 6, 9]; median = 2; |dev| = [1,1,0,0,2,4,7];
        // median of deviations = 1.
        let data = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(mad(&data), Some(1.0));
    }

    #[test]
    fn mad_empty() {
        assert_eq!(mad(&[]), None);
        assert!(modified_z_scores(&[]).is_empty());
    }

    #[test]
    fn scores_are_zero_at_median() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = modified_z_scores(&data);
        assert_eq!(z[2], 0.0);
        assert!(z[0] < 0.0 && z[4] > 0.0);
        assert!(
            (z[0] + z[4]).abs() < 1e-12,
            "symmetric data → symmetric scores"
        );
    }

    #[test]
    fn spike_is_flagged_at_default_cutoff() {
        let mut data: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        data.push(1000.0);
        let out = mad_outliers(&data, DEFAULT_CUTOFF);
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn robust_to_nearly_half_contamination() {
        // 40% of the data is wildly off — the classic case where
        // mean/std-based methods break but MAD survives.
        let mut data: Vec<f64> = (0..60).map(|i| 5.0 + (i % 3) as f64 * 0.01).collect();
        for i in 0..40 {
            data.push(1e6 + i as f64);
        }
        let out = mad_outliers(&data, DEFAULT_CUTOFF);
        assert_eq!(out.len(), 40);
        assert!(out.iter().all(|&i| i >= 60));
    }

    #[test]
    fn zero_mad_flags_only_different_points() {
        // More than half the data identical → MAD = 0.
        let data = [2.0, 2.0, 2.0, 2.0, 2.0, 7.0];
        let z = modified_z_scores(&data);
        assert_eq!(z[0], 0.0);
        assert_eq!(z[5], f64::INFINITY);
        assert_eq!(mad_outliers(&data, 3.5), vec![5]);
    }

    #[test]
    fn constant_data_has_no_outliers() {
        let data = [4.0; 10];
        assert!(mad_outliers(&data, 3.5).is_empty());
    }

    #[test]
    fn cutoff_is_monotone() {
        let mut data: Vec<f64> = (0..100).map(|i| (i % 11) as f64).collect();
        data.push(100.0);
        data.push(60.0);
        let strict = mad_outliers(&data, 2.0);
        let loose = mad_outliers(&data, 5.0);
        assert!(loose.len() <= strict.len());
        for i in &loose {
            assert!(strict.contains(i));
        }
    }

    #[test]
    fn consistency_constant_is_documented_value() {
        assert!((MAD_CONSISTENCY - 0.6745).abs() < 1e-12);
        assert!((DEFAULT_CUTOFF - 3.5).abs() < 1e-12);
    }
}
