//! Histograms for the frequency-distribution plots of §2.3.

/// One histogram bin `[lo, hi)` (the last bin is closed on both sides).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of points in the bin.
    pub count: usize,
}

/// An equal-width histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// The bins, in ascending order.
    pub bins: Vec<HistogramBin>,
    /// Total number of points binned.
    pub total: usize,
}

impl Histogram {
    /// Builds an equal-width histogram with `n_bins` bins spanning the data
    /// range. Returns `None` for empty input or `n_bins == 0`.
    pub fn equal_width(data: &[f64], n_bins: usize) -> Option<Histogram> {
        if data.is_empty() || n_bins == 0 {
            return None;
        }
        let lo = data.iter().copied().reduce(f64::min)?;
        let hi = data.iter().copied().reduce(f64::max)?;
        let width = if hi > lo {
            (hi - lo) / n_bins as f64
        } else {
            1.0 // degenerate: all values equal — single logical bin
        };
        let mut bins: Vec<HistogramBin> = (0..n_bins)
            .map(|i| HistogramBin {
                lo: lo + i as f64 * width,
                hi: lo + (i + 1) as f64 * width,
                count: 0,
            })
            .collect();
        for &x in data {
            let mut idx = ((x - lo) / width).floor() as usize;
            if idx >= n_bins {
                idx = n_bins - 1; // the max lands in the last (closed) bin
            }
            bins[idx].count += 1;
        }
        Some(Histogram {
            bins,
            total: data.len(),
        })
    }

    /// Builds a histogram with an automatic bin count: the Freedman–Diaconis
    /// rule, falling back to Sturges when the IQR is zero, clamped to
    /// `[1, 100]` bins.
    pub fn auto(data: &[f64]) -> Option<Histogram> {
        if data.is_empty() {
            return None;
        }
        let n = data.len() as f64;
        let (q1, _, q3) = crate::quantile::quartiles(data)?;
        let iqr = q3 - q1;
        let lo = data.iter().copied().reduce(f64::min)?;
        let hi = data.iter().copied().reduce(f64::max)?;
        let range = hi - lo;
        let n_bins = if iqr > 0.0 && range > 0.0 {
            let width = 2.0 * iqr / n.cbrt();
            (range / width).ceil() as usize
        } else {
            // Sturges
            (n.log2().ceil() as usize) + 1
        };
        Self::equal_width(data, n_bins.clamp(1, 100))
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The tallest bin's count (0 for an empty histogram).
    pub fn max_count(&self) -> usize {
        self.bins.iter().map(|b| b.count).max().unwrap_or(0)
    }

    /// Relative frequencies (count / total) per bin.
    pub fn frequencies(&self) -> Vec<f64> {
        self.bins
            .iter()
            .map(|b| b.count as f64 / self.total.max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_total() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 7919) % 1000) as f64).collect();
        let h = Histogram::equal_width(&data, 17).unwrap();
        assert_eq!(h.bins.iter().map(|b| b.count).sum::<usize>(), 500);
        assert_eq!(h.total, 500);
        assert_eq!(h.n_bins(), 17);
    }

    #[test]
    fn edges_are_contiguous_and_cover_range() {
        let data = [1.0, 2.0, 3.5, 9.0];
        let h = Histogram::equal_width(&data, 4).unwrap();
        assert_eq!(h.bins[0].lo, 1.0);
        assert!((h.bins[3].hi - 9.0).abs() < 1e-12);
        for w in h.bins.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-12);
        }
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        let data = [0.0, 10.0];
        let h = Histogram::equal_width(&data, 5).unwrap();
        assert_eq!(h.bins[4].count, 1);
        assert_eq!(h.bins[0].count, 1);
    }

    #[test]
    fn uniform_data_fills_bins_evenly() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect();
        let h = Histogram::equal_width(&data, 10).unwrap();
        for b in &h.bins {
            assert_eq!(b.count, 100);
        }
    }

    #[test]
    fn constant_data_single_logical_bin() {
        let data = [3.0; 42];
        let h = Histogram::equal_width(&data, 5).unwrap();
        assert_eq!(h.bins[0].count, 42);
        assert_eq!(h.bins.iter().map(|b| b.count).sum::<usize>(), 42);
    }

    #[test]
    fn empty_and_zero_bins_rejected() {
        assert!(Histogram::equal_width(&[], 5).is_none());
        assert!(Histogram::equal_width(&[1.0], 0).is_none());
        assert!(Histogram::auto(&[]).is_none());
    }

    #[test]
    fn auto_picks_reasonable_bin_count() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 31) % 997) as f64).collect();
        let h = Histogram::auto(&data).unwrap();
        assert!(h.n_bins() >= 2 && h.n_bins() <= 100, "got {}", h.n_bins());
        assert_eq!(h.total, 1000);
    }

    #[test]
    fn auto_handles_zero_iqr() {
        // 90% identical values → IQR = 0 → Sturges fallback.
        let mut data = vec![5.0; 90];
        data.extend((0..10).map(|i| i as f64));
        let h = Histogram::auto(&data).unwrap();
        assert!(h.n_bins() >= 1);
        assert_eq!(h.bins.iter().map(|b| b.count).sum::<usize>(), 100);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let data: Vec<f64> = (0..64).map(|i| (i % 8) as f64).collect();
        let h = Histogram::equal_width(&data, 8).unwrap();
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        // Each of the 8 distinct values falls in its own bin, 8 points each.
        assert_eq!(h.max_count(), 8);
    }
}
