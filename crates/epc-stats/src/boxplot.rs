//! The graphic boxplot (whiskers-plot) outlier method of §2.1.2.
//!
//! Following Tukey, values outside `[q1 − k·IQR, q3 + k·IQR]` (k = 1.5 by
//! default) are flagged. The paper lets the analyst "manually remove the
//! outliers (the values smaller and greater than the minimum and the
//! maximum) through value filters" — the fences here are those whisker
//! extremes.

use crate::descriptive::NumericSummary;
use crate::quantile::quartiles;

/// Everything a boxplot displays: quartiles, whiskers, and outlier indices.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotSummary {
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median (box line).
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Lower fence `q1 − k·IQR`.
    pub lower_fence: f64,
    /// Upper fence `q3 + k·IQR`.
    pub upper_fence: f64,
    /// Lowest datum inside the fences (lower whisker end).
    pub whisker_low: f64,
    /// Highest datum inside the fences (upper whisker end).
    pub whisker_high: f64,
    /// Indices (into the input slice) of points outside the fences,
    /// ascending.
    pub outliers: Vec<usize>,
    /// The multiplier `k` used for the fences.
    pub k: f64,
}

/// Computes the Tukey fences `[q1 − k·IQR, q3 + k·IQR]`; `None` for empty
/// input.
pub fn tukey_fences(data: &[f64], k: f64) -> Option<(f64, f64)> {
    let (q1, _, q3) = quartiles(data)?;
    let iqr = q3 - q1;
    Some((q1 - k * iqr, q3 + k * iqr))
}

/// Indices of points outside the Tukey fences, ascending. Empty input yields
/// an empty vector.
pub fn tukey_outliers(data: &[f64], k: f64) -> Vec<usize> {
    match tukey_fences(data, k) {
        None => Vec::new(),
        Some((lo, hi)) => data
            .iter()
            .enumerate()
            .filter(|(_, &x)| x < lo || x > hi)
            .map(|(i, _)| i)
            .collect(),
    }
}

/// Full boxplot summary of `data` with fence multiplier `k`; `None` for
/// empty input.
pub fn boxplot_summary(data: &[f64], k: f64) -> Option<BoxplotSummary> {
    let (q1, median, q3) = quartiles(data)?;
    let iqr = q3 - q1;
    let lower_fence = q1 - k * iqr;
    let upper_fence = q3 + k * iqr;
    let mut outliers = Vec::new();
    let mut whisker_low = f64::INFINITY;
    let mut whisker_high = f64::NEG_INFINITY;
    for (i, &x) in data.iter().enumerate() {
        if x < lower_fence || x > upper_fence {
            outliers.push(i);
        } else {
            whisker_low = whisker_low.min(x);
            whisker_high = whisker_high.max(x);
        }
    }
    // Degenerate case: everything flagged (cannot happen with k ≥ 0 and
    // finite data, but stay defensive).
    if !whisker_low.is_finite() {
        whisker_low = q1;
        whisker_high = q3;
    }
    Some(BoxplotSummary {
        q1,
        median,
        q3,
        lower_fence,
        upper_fence,
        whisker_low,
        whisker_high,
        outliers,
        k,
    })
}

/// Convenience: the boxplot summary plus the plain numeric summary, as shown
/// together in the dashboard's distribution panel.
pub fn boxplot_with_summary(data: &[f64], k: f64) -> Option<(BoxplotSummary, NumericSummary)> {
    Some((boxplot_summary(data, k)?, NumericSummary::from_slice(data)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers_in_uniform_data() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(tukey_outliers(&data, 1.5).is_empty());
    }

    #[test]
    fn flags_extreme_points_on_both_sides() {
        let mut data: Vec<f64> = (0..50).map(|i| 10.0 + i as f64 * 0.1).collect();
        data.push(1000.0); // index 50
        data.push(-1000.0); // index 51
        let out = tukey_outliers(&data, 1.5);
        assert_eq!(out, vec![50, 51]);
    }

    #[test]
    fn larger_k_flags_fewer_points() {
        let mut data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        data.push(9.0);
        data.push(12.0);
        let strict = tukey_outliers(&data, 1.0);
        let loose = tukey_outliers(&data, 3.0);
        assert!(loose.len() <= strict.len());
        for i in &loose {
            assert!(strict.contains(i), "k=3 outliers must be a subset of k=1");
        }
    }

    #[test]
    fn fences_match_hand_computation() {
        // data 1..=8: q1 = 2.75, q3 = 6.25, IQR = 3.5 (type-7)
        let data: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let (lo, hi) = tukey_fences(&data, 1.5).unwrap();
        assert!((lo - (2.75 - 5.25)).abs() < 1e-12);
        assert!((hi - (6.25 + 5.25)).abs() < 1e-12);
    }

    #[test]
    fn summary_whiskers_are_inside_fences() {
        let mut data: Vec<f64> = (0..60).map(|i| (i % 10) as f64).collect();
        data.push(100.0);
        let s = boxplot_summary(&data, 1.5).unwrap();
        assert!(s.whisker_low >= s.lower_fence);
        assert!(s.whisker_high <= s.upper_fence);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert_eq!(s.outliers, vec![60]);
        assert_eq!(s.k, 1.5);
    }

    #[test]
    fn empty_input() {
        assert_eq!(tukey_fences(&[], 1.5), None);
        assert!(tukey_outliers(&[], 1.5).is_empty());
        assert!(boxplot_summary(&[], 1.5).is_none());
    }

    #[test]
    fn constant_data_has_no_outliers() {
        let data = [5.0; 20];
        assert!(tukey_outliers(&data, 1.5).is_empty());
        let s = boxplot_summary(&data, 1.5).unwrap();
        assert_eq!(s.whisker_low, 5.0);
        assert_eq!(s.whisker_high, 5.0);
    }

    #[test]
    fn with_summary_combines_both() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (b, n) = boxplot_with_summary(&data, 1.5).unwrap();
        assert_eq!(b.median, n.median);
        assert_eq!(n.count, 10);
    }
}
