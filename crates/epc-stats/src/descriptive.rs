//! Descriptive statistics and the numeric summary the dashboards report:
//! "for numeric data, INDICE includes count, mean, standard deviation and
//! the three quartiles" (§2.3).

use crate::quantile::{quantile_sorted, quartiles};

/// Arithmetic mean; `None` for empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    Some(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (n−1 denominator); `None` when `n < 2`.
///
/// Uses Welford's one-pass algorithm for numerical stability.
pub fn sample_var(data: &[f64]) -> Option<f64> {
    if data.len() < 2 {
        return None;
    }
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in data.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Some(m2 / (data.len() - 1) as f64)
}

/// Sample standard deviation; `None` when `n < 2`.
pub fn sample_std(data: &[f64]) -> Option<f64> {
    sample_var(data).map(f64::sqrt)
}

/// Population variance (n denominator); `None` for empty input.
pub fn population_var(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let m = mean(data)?;
    Some(data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / data.len() as f64)
}

/// Sample skewness (adjusted Fisher–Pearson, the `g1`-with-correction form
/// statistics packages report); `None` when `n < 3` or the variance is 0.
///
/// Used by the auto-configuration advisor: heavily skewed attributes get
/// the robust MAD outlier rule, symmetric ones the boxplot.
pub fn skewness(data: &[f64]) -> Option<f64> {
    let n = data.len();
    if n < 3 {
        return None;
    }
    let m = mean(data)?;
    let nf = n as f64;
    let m2 = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / nf;
    let m3 = data.iter().map(|x| (x - m).powi(3)).sum::<f64>() / nf;
    if m2 <= 0.0 {
        return None;
    }
    let g1 = m3 / m2.powf(1.5);
    Some((nf * (nf - 1.0)).sqrt() / (nf - 2.0) * g1)
}

/// Excess kurtosis (`g2 = m4/m2² − 3`); `None` when `n < 4` or variance 0.
pub fn excess_kurtosis(data: &[f64]) -> Option<f64> {
    let n = data.len();
    if n < 4 {
        return None;
    }
    let m = mean(data)?;
    let nf = n as f64;
    let m2 = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / nf;
    let m4 = data.iter().map(|x| (x - m).powi(4)).sum::<f64>() / nf;
    if m2 <= 0.0 {
        return None;
    }
    Some(m4 / (m2 * m2) - 3.0)
}

/// Minimum of the data (NaN-free input assumed); `None` for empty input.
pub fn min(data: &[f64]) -> Option<f64> {
    data.iter().copied().reduce(f64::min)
}

/// Maximum of the data; `None` for empty input.
pub fn max(data: &[f64]) -> Option<f64> {
    data.iter().copied().reduce(f64::max)
}

/// The numeric attribute summary shown in the dashboard setting panel:
/// count, mean, standard deviation, min/max, and the three quartiles.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Number of non-missing values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count < 2`).
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl NumericSummary {
    /// Summarizes `data`; `None` for empty input.
    pub fn from_slice(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let (q1, median, q3) = quartiles(data)?;
        Some(NumericSummary {
            count: data.len(),
            mean: mean(data)?,
            std: sample_std(data).unwrap_or(0.0),
            min: min(data)?,
            q1,
            median,
            q3,
            max: max(data)?,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// `p`-quantile recomputed from the summary is impossible; this helper
    /// exists for sorted payloads kept alongside the summary.
    pub fn quantile_of_sorted(sorted: &[f64], p: f64) -> f64 {
        quantile_sorted(sorted, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_matches_textbook() {
        // var([2,4,4,4,5,5,7,9]) population = 4, sample = 32/7
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_var(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((sample_var(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&data).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_needs_two_points() {
        assert_eq!(sample_var(&[1.0]), None);
        assert_eq!(sample_std(&[]), None);
        assert_eq!(population_var(&[3.0]), Some(0.0));
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: large mean, small variance.
        let data: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 2) as f64).collect();
        let v = sample_var(&data).unwrap();
        assert!((v - 0.2502502502502503).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, 1.0, 2.0]), Some(1.0));
        assert_eq!(max(&[3.0, 1.0, 2.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn summary_fields_are_consistent() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = NumericSummary::from_slice(&data).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.median, 50.5);
        assert!(s.q1 < s.median && s.median < s.q3);
        assert!((s.iqr() - (s.q3 - s.q1)).abs() < 1e-12);
        assert_eq!(NumericSummary::from_slice(&[]), None);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed: long tail of large values.
        let right: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).exp()).collect();
        assert!(skewness(&right).unwrap() > 1.0);
        // Symmetric.
        let sym: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        assert!(skewness(&sym).unwrap().abs() < 1e-9);
        // Left-skewed = mirrored right-skewed.
        let left: Vec<f64> = right.iter().map(|x| -x).collect();
        assert!((skewness(&left).unwrap() + skewness(&right).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn skewness_degenerate_inputs() {
        assert_eq!(skewness(&[1.0, 2.0]), None);
        assert_eq!(skewness(&[3.0; 10]), None, "zero variance");
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        // Uniform distribution has excess kurtosis −1.2.
        let u: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let k = excess_kurtosis(&u).unwrap();
        assert!((k + 1.2).abs() < 0.05, "got {k}");
        assert_eq!(excess_kurtosis(&[1.0, 2.0, 3.0]), None);
        assert_eq!(excess_kurtosis(&[5.0; 8]), None);
    }

    #[test]
    fn heavy_tails_raise_kurtosis() {
        let mut data: Vec<f64> = (0..200).map(|i| ((i % 20) as f64 - 10.0) * 0.1).collect();
        let base = excess_kurtosis(&data).unwrap();
        data.push(50.0);
        data.push(-50.0);
        assert!(excess_kurtosis(&data).unwrap() > base + 10.0);
    }

    #[test]
    fn summary_single_value() {
        let s = NumericSummary::from_slice(&[5.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
    }
}
