//! Pearson correlation and correlation matrices (§2.3, Figure 3).
//!
//! INDICE computes the correlation plot matrix before clustering "to reduce
//! the complexity of the analysis and remove correlated attributes"; a
//! feature set is "eligible for the analytic task" when no pair shows an
//! evident linear correlation.

/// Covariance of two equally long slices (sample, n−1); `None` when `n < 2`
/// or lengths differ.
pub fn covariance(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let s: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    Some(s / (n - 1.0))
}

/// Pearson correlation coefficient ρ(x, y) ∈ [−1, 1].
///
/// Returns `None` when lengths differ, `n < 2`, or either variable is
/// constant (undefined correlation).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    // Clamp to [-1, 1] against floating-point drift.
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// A symmetric correlation matrix over named variables.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    /// Variable names, in column order.
    pub names: Vec<String>,
    /// Row-major ρ values; `NaN` marks undefined pairs (constant columns).
    pub values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Number of variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the matrix has no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// ρ between variables `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.names.len() + j]
    }

    /// The strongest absolute off-diagonal correlation, with its pair —
    /// `None` when fewer than two variables or all pairs undefined.
    pub fn max_abs_off_diagonal(&self) -> Option<(usize, usize, f64)> {
        let n = self.len();
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = self.get(i, j);
                if v.is_nan() {
                    continue;
                }
                if best.map(|(_, _, b)| v.abs() > b.abs()).unwrap_or(true) {
                    best = Some((i, j, v));
                }
            }
        }
        best
    }

    /// The paper's eligibility check: `true` when every defined off-diagonal
    /// |ρ| is below `threshold` — "when the selected set of attributes has
    /// no evident linear correlation, it is eligible for the analytic task".
    pub fn eligible_for_analytics(&self, threshold: f64) -> bool {
        match self.max_abs_off_diagonal() {
            Some((_, _, v)) => v.abs() < threshold,
            None => true,
        }
    }

    /// Pairs with |ρ| ≥ `threshold`, strongest first — the attributes the
    /// analyst should drop before clustering.
    pub fn correlated_pairs(&self, threshold: f64) -> Vec<(String, String, f64)> {
        let n = self.len();
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let v = self.get(i, j);
                if !v.is_nan() && v.abs() >= threshold {
                    pairs.push((self.names[i].clone(), self.names[j].clone(), v));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).unwrap());
        pairs
    }
}

/// Builds the correlation matrix of several named columns.
///
/// Columns must all have the same length; rows where *any* column is NaN
/// are dropped pairwise-complete style (per pair). Undefined correlations
/// (constant columns) become NaN cells; the diagonal is always 1.
pub fn correlation_matrix(names: &[&str], columns: &[&[f64]]) -> CorrelationMatrix {
    assert_eq!(names.len(), columns.len(), "one name per column");
    let n = names.len();
    let mut values = vec![f64::NAN; n * n];
    for i in 0..n {
        values[i * n + i] = 1.0;
        for j in (i + 1)..n {
            // Pairwise-complete: keep rows where both entries are finite.
            let (xs, ys): (Vec<f64>, Vec<f64>) = columns[i]
                .iter()
                .zip(columns[j])
                .filter(|(a, b)| a.is_finite() && b.is_finite())
                .map(|(a, b)| (*a, *b))
                .unzip();
            let rho = pearson(&xs, &ys).unwrap_or(f64::NAN);
            values[i * n + j] = rho;
            values[j * n + i] = rho;
        }
    }
    CorrelationMatrix {
        names: names.iter().map(|s| s.to_string()).collect(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_is_undefined() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), None);
        assert_eq!(pearson(&y, &x), None);
    }

    #[test]
    fn mismatched_or_tiny_inputs() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(covariance(&[1.0], &[2.0]), None);
    }

    #[test]
    fn covariance_hand_example() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 8.0];
        // cov = Σ(dx·dy)/(n−1) = (1·2 + 0 + 1·2)/2 = 2
        assert!((covariance(&x, &y).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded() {
        let x = [0.3, 1.7, 2.2, 5.0, 3.1, 0.9];
        let y = [1.0, 0.2, 3.3, 2.8, 2.9, 1.1];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-15);
        assert!((-1.0..=1.0).contains(&a));
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let x = [0.3, 1.7, 2.2, 5.0, 3.1, 0.9];
        let y = [1.0, 0.2, 3.3, 2.8, 2.9, 1.1];
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 10.0).collect();
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&x, &y2).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn matrix_diagonal_and_symmetry() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0];
        let c = [5.0, 4.0, 3.0, 2.0, 1.0];
        let m = correlation_matrix(&["a", "b", "c"], &[&a, &b, &c]);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
            }
        }
        // a vs c is perfectly anti-correlated
        assert!((m.get(0, 2) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_complete_drops_nan_rows() {
        let a = [1.0, 2.0, f64::NAN, 4.0, 5.0];
        let b = [2.0, 4.0, 100.0, 8.0, 10.0];
        let m = correlation_matrix(&["a", "b"], &[&a, &b]);
        assert!((m.get(0, 1) - 1.0).abs() < 1e-12, "NaN row must be ignored");
    }

    #[test]
    fn eligibility_threshold() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let m = correlation_matrix(&["a", "b"], &[&a, &b]);
        assert!(!m.eligible_for_analytics(0.9));
        let c = [1.0, -1.0, 2.0, -3.0];
        let m2 = correlation_matrix(&["a", "c"], &[&a, &c]);
        assert!(m2.eligible_for_analytics(0.95));
    }

    #[test]
    fn correlated_pairs_sorted_by_strength() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 2.0, 2.9, 4.2, 5.0]; // near-perfect with a
        let c = [5.0, 4.1, 3.0, 1.9, 1.0]; // near-perfect negative with a
        let m = correlation_matrix(&["a", "b", "c"], &[&a, &b, &c]);
        let pairs = m.correlated_pairs(0.9);
        assert_eq!(pairs.len(), 3);
        assert!(pairs[0].2.abs() >= pairs[1].2.abs());
        assert!(pairs[1].2.abs() >= pairs[2].2.abs());
    }

    #[test]
    fn constant_column_in_matrix_is_nan_but_diagonal_one() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        let m = correlation_matrix(&["const", "b"], &[&a, &b]);
        assert!(m.get(0, 1).is_nan());
        assert_eq!(m.get(0, 0), 1.0);
        assert!(m.eligible_for_analytics(0.5), "undefined pairs don't block");
        assert_eq!(m.max_abs_off_diagonal(), None);
    }

    #[test]
    fn empty_matrix() {
        let m = correlation_matrix(&[], &[]);
        assert!(m.is_empty());
        assert!(m.eligible_for_analytics(0.5));
    }
}
