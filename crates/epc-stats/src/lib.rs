//! # epc-stats
//!
//! Statistics substrate for the INDICE reproduction: descriptive statistics,
//! the three univariate outlier-detection methods of §2.1.2 of the paper
//! (Tukey boxplot, generalized ESD, MAD modified z-score), Pearson
//! correlation matrices (§2.3, Figure 3), and the frequency-distribution
//! summaries the dashboards display.
//!
//! Everything here is implemented from scratch on `f64` slices — including
//! the Student-t quantile function the gESD test needs (log-gamma +
//! regularized incomplete beta + bisection).
//!
//! ```
//! use epc_stats::boxplot::tukey_outliers;
//! let data = [1.0, 2.0, 2.5, 3.0, 2.2, 1.8, 50.0];
//! let outliers = tukey_outliers(&data, 1.5);
//! assert_eq!(outliers, vec![6]); // index of the 50.0
//! ```

pub mod boxplot;
pub mod correlation;
pub mod descriptive;
pub mod freq;
pub mod gesd;
pub mod histogram;
pub mod mad;
pub mod quantile;
pub mod special;

pub use boxplot::{tukey_fences, tukey_outliers, BoxplotSummary};
pub use correlation::{correlation_matrix, pearson, CorrelationMatrix};
pub use descriptive::{mean, sample_std, sample_var, NumericSummary};
pub use gesd::{gesd_outliers, GesdReport};
pub use histogram::{Histogram, HistogramBin};
pub use mad::{mad, mad_outliers, modified_z_scores};
pub use quantile::{median, quantile, quartiles};
