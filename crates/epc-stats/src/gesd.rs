//! The parametric generalized Extreme Studentized Deviate (gESD) test of
//! Rosner (1983), the second univariate outlier method of §2.1.2.
//!
//! Given an upper bound `k` on the number of potential outliers, the test
//! performs `k` sequential ESD tests; "the number of outliers is determined
//! by finding the largest value r (with r ≤ k) such that the corresponding
//! test gives a value higher than the critical one" — exactly what
//! [`gesd_outliers`] implements.

use crate::descriptive::{mean, sample_std};
use crate::special::t_quantile;

/// One step of the sequential ESD test.
#[derive(Debug, Clone, PartialEq)]
pub struct GesdStep {
    /// 1-based step index `i`.
    pub i: usize,
    /// Test statistic `R_i = max |x − mean| / s` on the remaining data.
    pub r: f64,
    /// Critical value `λ_i` at the configured significance level.
    pub lambda: f64,
    /// Index (into the original slice) of the most extreme point at this
    /// step.
    pub candidate: usize,
}

/// Full report of a gESD run: the per-step table and the resulting outliers.
#[derive(Debug, Clone, PartialEq)]
pub struct GesdReport {
    /// All `k` steps, in order.
    pub steps: Vec<GesdStep>,
    /// Number of outliers found (largest `r` with `R_r > λ_r`).
    pub n_outliers: usize,
    /// Indices of the outliers in the original slice (the first
    /// `n_outliers` candidates), ascending.
    pub outliers: Vec<usize>,
    /// Significance level used.
    pub alpha: f64,
}

/// Critical value `λ_i` of the ESD test (Rosner 1983).
///
/// `n` is the original sample size, `i` is the 1-based step, `alpha` the
/// significance level.
pub fn gesd_lambda(n: usize, i: usize, alpha: f64) -> f64 {
    let n = n as f64;
    let i = i as f64;
    let p = 1.0 - alpha / (2.0 * (n - i + 1.0));
    let df = n - i - 1.0;
    if df <= 0.0 {
        return f64::INFINITY;
    }
    let t = t_quantile(p, df);
    ((n - i) * t) / ((df + t * t) * (n - i + 1.0)).sqrt()
}

/// Runs the gESD test on `data` for at most `k` outliers at significance
/// `alpha` (0.05 is the customary default).
///
/// Returns `None` when the sample is too small to test (`n < 3` or
/// `k == 0`). NaN values must be filtered out by the caller.
pub fn gesd_test(data: &[f64], k: usize, alpha: f64) -> Option<GesdReport> {
    let n = data.len();
    if n < 3 || k == 0 {
        return None;
    }
    let k = k.min(n - 2); // need at least 2 points left for the statistic
    let mut remaining: Vec<(usize, f64)> = data.iter().copied().enumerate().collect();
    let mut steps = Vec::with_capacity(k);

    for i in 1..=k {
        let values: Vec<f64> = remaining.iter().map(|&(_, x)| x).collect();
        let m = mean(&values)?;
        let s = sample_std(&values)?;
        if s == 0.0 {
            // Constant remainder: no further outliers distinguishable.
            break;
        }
        let (pos, &(orig_idx, x)) =
            remaining
                .iter()
                .enumerate()
                .max_by(|(_, (_, a)), (_, (_, b))| {
                    ((a - m).abs())
                        .partial_cmp(&(b - m).abs())
                        .expect("NaN in gESD input")
                })?;
        let r = (x - m).abs() / s;
        let lambda = gesd_lambda(n, i, alpha);
        steps.push(GesdStep {
            i,
            r,
            lambda,
            candidate: orig_idx,
        });
        remaining.swap_remove(pos);
    }

    let n_outliers = steps
        .iter()
        .rev()
        .find(|st| st.r > st.lambda)
        .map(|st| st.i)
        .unwrap_or(0);
    let mut outliers: Vec<usize> = steps[..n_outliers].iter().map(|s| s.candidate).collect();
    outliers.sort_unstable();
    Some(GesdReport {
        steps,
        n_outliers,
        outliers,
        alpha,
    })
}

/// Indices of gESD outliers (empty when the test cannot run).
pub fn gesd_outliers(data: &[f64], k: usize, alpha: f64) -> Vec<usize> {
    gesd_test(data, k, alpha)
        .map(|r| r.outliers)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosner's classic example dataset (NIST e-handbook §1.3.5.17.3):
    /// 54 values, gESD with k = 10, α = 0.05 finds exactly 3 outliers.
    fn rosner_data() -> Vec<f64> {
        vec![
            -0.25, 0.68, 0.94, 1.15, 1.20, 1.26, 1.26, 1.34, 1.38, 1.43, 1.49, 1.49, 1.55, 1.56,
            1.58, 1.65, 1.69, 1.70, 1.76, 1.77, 1.81, 1.91, 1.94, 1.96, 1.99, 2.06, 2.09, 2.10,
            2.14, 2.15, 2.23, 2.24, 2.26, 2.35, 2.37, 2.40, 2.47, 2.54, 2.62, 2.64, 2.90, 2.92,
            2.92, 2.93, 3.21, 3.26, 3.30, 3.59, 3.68, 4.30, 4.64, 5.34, 5.42, 6.01,
        ]
    }

    #[test]
    fn nist_reference_case_finds_three_outliers() {
        let data = rosner_data();
        let report = gesd_test(&data, 10, 0.05).unwrap();
        assert_eq!(report.n_outliers, 3, "NIST reference: 3 outliers");
        // The three largest values (6.01, 5.42, 5.34) are the outliers.
        let mut flagged: Vec<f64> = report.outliers.iter().map(|&i| data[i]).collect();
        flagged.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(flagged, vec![5.34, 5.42, 6.01]);
    }

    #[test]
    fn nist_reference_statistics() {
        // NIST: R1 = 3.118, λ1 = 3.158; R3 = 3.179, λ3 = 3.144
        let report = gesd_test(&rosner_data(), 10, 0.05).unwrap();
        assert!(
            (report.steps[0].r - 3.118).abs() < 5e-3,
            "R1 = {}",
            report.steps[0].r
        );
        assert!((report.steps[0].lambda - 3.158).abs() < 5e-3);
        assert!((report.steps[2].r - 3.179).abs() < 5e-3);
        assert!((report.steps[2].lambda - 3.144).abs() < 5e-3);
    }

    #[test]
    fn clean_gaussianish_data_has_no_outliers() {
        // Deterministic low-discrepancy "gaussian-ish" sample.
        let data: Vec<f64> = (0..200)
            .map(|i| {
                let u = (i as f64 + 0.5) / 200.0;
                // inverse-ish sigmoid spread, bounded
                (u / (1.0 - u)).ln()
            })
            .collect();
        let report = gesd_test(&data, 5, 0.05).unwrap();
        assert_eq!(report.n_outliers, 0, "steps: {:?}", report.steps);
    }

    #[test]
    fn single_spike_is_found() {
        let mut data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64 / 100.0).collect();
        data[42] = 50.0;
        let out = gesd_outliers(&data, 5, 0.05);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn k_caps_detection() {
        let mut data: Vec<f64> = (0..100).map(|i| ((i * 17) % 100) as f64 / 100.0).collect();
        data[0] = 100.0;
        data[1] = -100.0;
        data[2] = 90.0;
        let out = gesd_outliers(&data, 2, 0.05);
        assert_eq!(out.len(), 2, "k = 2 bounds the number of outliers");
    }

    #[test]
    fn too_small_samples_are_rejected() {
        assert!(gesd_test(&[1.0, 2.0], 1, 0.05).is_none());
        assert!(gesd_test(&[], 3, 0.05).is_none());
        assert!(gesd_test(&[1.0, 2.0, 3.0], 0, 0.05).is_none());
        assert!(gesd_outliers(&[1.0], 3, 0.05).is_empty());
    }

    #[test]
    fn constant_data_yields_no_outliers() {
        let data = [3.0; 30];
        let report = gesd_test(&data, 5, 0.05).unwrap();
        assert_eq!(report.n_outliers, 0);
        assert!(report.steps.is_empty());
    }

    #[test]
    fn outlier_indices_are_sorted_and_unique() {
        let mut data: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        data[10] = 500.0;
        data[55] = -400.0;
        data[3] = 450.0;
        let out = gesd_outliers(&data, 6, 0.05);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out, sorted);
        assert!(out.contains(&10) && out.contains(&55) && out.contains(&3));
    }

    #[test]
    fn lambda_decreases_with_step() {
        // For fixed n and alpha, λ_i decreases as i grows (fewer points).
        let l: Vec<f64> = (1..=10).map(|i| gesd_lambda(54, i, 0.05)).collect();
        for w in l.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
