//! Frequency tables for categorical attributes.
//!
//! §2.3: "for categorical attributes, the count, the most common value's
//! frequency (i.e., mode) and the top-k frequent values are reported."

use std::collections::BTreeMap;

/// One entry of a categorical frequency table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqEntry {
    /// The category label.
    pub label: String,
    /// Number of occurrences.
    pub count: usize,
}

/// The categorical summary the dashboards display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalSummary {
    /// Number of non-missing values.
    pub count: usize,
    /// Number of distinct labels.
    pub distinct: usize,
    /// The most common label (ties broken lexicographically).
    pub mode: String,
    /// Occurrences of the mode.
    pub mode_count: usize,
    /// The `k` most frequent labels, descending by count (ties broken
    /// lexicographically for determinism).
    pub top_k: Vec<FreqEntry>,
}

/// Full frequency table of `labels`, descending by count then label.
pub fn frequency_table<'a, I>(labels: I) -> Vec<FreqEntry>
where
    I: IntoIterator<Item = &'a str>,
{
    // Ordered map: the table is rebuilt from iteration below, so ties in
    // the count sort must start from a deterministic label order (D3).
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let mut entries: Vec<FreqEntry> = counts
        .into_iter()
        .map(|(label, count)| FreqEntry {
            label: label.to_owned(),
            count,
        })
        .collect();
    entries.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.label.cmp(&b.label)));
    entries
}

/// Summarizes categorical data, keeping the `k` most frequent labels.
/// Returns `None` for empty input.
pub fn categorical_summary<'a, I>(labels: I, k: usize) -> Option<CategoricalSummary>
where
    I: IntoIterator<Item = &'a str>,
{
    let table = frequency_table(labels);
    let first = table.first()?;
    let count = table.iter().map(|e| e.count).sum();
    Some(CategoricalSummary {
        count,
        distinct: table.len(),
        mode: first.label.clone(),
        mode_count: first.count,
        top_k: table.into_iter().take(k).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_desc_then_lexicographic() {
        let data = ["b", "a", "b", "c", "a", "b"];
        let t = frequency_table(data.iter().copied());
        assert_eq!(
            t[0],
            FreqEntry {
                label: "b".into(),
                count: 3
            }
        );
        assert_eq!(
            t[1],
            FreqEntry {
                label: "a".into(),
                count: 2
            }
        );
        assert_eq!(
            t[2],
            FreqEntry {
                label: "c".into(),
                count: 1
            }
        );
    }

    #[test]
    fn ties_break_lexicographically() {
        let data = ["z", "a", "z", "a"];
        let t = frequency_table(data.iter().copied());
        assert_eq!(t[0].label, "a");
        assert_eq!(t[1].label, "z");
    }

    #[test]
    fn summary_reports_mode_and_top_k() {
        let data = ["E.1.1"; 10]
            .iter()
            .copied()
            .chain(["E.8"; 3])
            .chain(["E.2"; 5])
            .collect::<Vec<_>>();
        let s = categorical_summary(data.iter().copied(), 2).unwrap();
        assert_eq!(s.count, 18);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.mode, "E.1.1");
        assert_eq!(s.mode_count, 10);
        assert_eq!(s.top_k.len(), 2);
        assert_eq!(s.top_k[1].label, "E.2");
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(categorical_summary(std::iter::empty(), 3).is_none());
        assert!(frequency_table(std::iter::empty()).is_empty());
    }

    #[test]
    fn k_larger_than_distinct_is_fine() {
        let s = categorical_summary(["x", "y"], 10).unwrap();
        assert_eq!(s.top_k.len(), 2);
    }

    #[test]
    fn single_label() {
        let s = categorical_summary(std::iter::repeat_n("only", 7), 3).unwrap();
        assert_eq!(s.mode, "only");
        assert_eq!(s.mode_count, 7);
        assert_eq!(s.distinct, 1);
    }
}
