//! Quantiles with linear interpolation (R type-7, the default of NumPy and
//! pandas — what the paper's Python stack would have computed).

/// Returns the `p`-quantile (0 ≤ p ≤ 1) of `data` using linear interpolation
/// between order statistics. Returns `None` for empty input or `p` outside
/// `[0, 1]`. NaN values must be filtered out by the caller.
pub fn quantile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() || !(0.0..=1.0).contains(&p) || p.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, p))
}

/// `p`-quantile of already-sorted data (no allocation). Panics in debug mode
/// if `data` is unsorted. Empty input yields NaN — prefer [`quantile`].
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    if sorted.is_empty() {
        return f64::NAN;
    }
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi.min(n - 1)] - sorted[lo]) * frac
}

/// The median (0.5 quantile).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// `(q1, median, q3)` — the three quartiles the dashboards report.
pub fn quartiles(data: &[f64]) -> Option<(f64, f64, f64)> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quartiles input"));
    Some((
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
    ))
}

/// The nine deciles (p = 0.1 … 0.9), used by frequency-distribution plots.
pub fn deciles(data: &[f64]) -> Option<[f64; 9]> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in deciles input"));
    let mut out = [0.0; 9];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = quantile_sorted(&sorted, (i + 1) as f64 / 10.0);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let data = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(9.0));
    }

    #[test]
    fn type7_interpolation_matches_numpy() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        // numpy.percentile([1,2,3,4,5], 40) == 2.6
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((quantile(&data, 0.4).unwrap() - 2.6).abs() < 1e-12);
    }

    #[test]
    fn invalid_p_is_rejected() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn quartiles_are_ordered() {
        let data: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let (q1, q2, q3) = quartiles(&data).unwrap();
        assert_eq!((q1, q2, q3), (25.0, 50.0, 75.0));
    }

    #[test]
    fn deciles_are_monotone() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let d = deciles(&data).unwrap();
        for w in d.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(deciles(&[]), None);
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        let data = [2.0, 8.0, 1.0, 5.0, 3.0, 9.0, 4.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&data, i as f64 / 20.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn single_element_is_every_quantile() {
        for p in [0.0, 0.3, 0.5, 0.99, 1.0] {
            assert_eq!(quantile(&[42.0], p), Some(42.0));
        }
    }
}
