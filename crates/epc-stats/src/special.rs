//! Special functions needed by the gESD test: log-gamma, the regularized
//! incomplete beta function, and the Student-t distribution (CDF and
//! quantile). Implemented from scratch (Lanczos approximation + Lentz
//! continued fraction + bisection), accurate to ~1e-10 over the parameter
//! ranges outlier testing uses.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9 (Godfrey / Numerical Recipes style).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction of Lentz's method. Valid for `a, b > 0`, `0 ≤ x ≤ 1`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0);
    debug_assert!((0.0..=1.0).contains(&x));
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to keep the continued fraction convergent.
    // Both branches are computed directly (no recursion) so the boundary
    // case x == (a+1)/(a+b+2) cannot loop.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * betacf(a, b, x)) / a
    } else {
        1.0 - (ln_front.exp() * betacf(b, a, 1.0 - x)) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student-t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    debug_assert!(df > 0.0);
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Quantile (inverse CDF) of the Student-t distribution, computed by
/// bisection on [`t_cdf`] — robust and accurate to ~1e-10, which is far more
/// than the gESD critical values need.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    debug_assert!(df > 0.0);
    assert!(
        (0.0..=1.0).contains(&p),
        "t_quantile probability out of range: {p}"
    );
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if (p - 0.5).abs() < 1e-16 {
        return 0.0;
    }
    // Expand brackets until they straddle p.
    let mut lo = -1.0;
    let mut hi = 1.0;
    while t_cdf(lo, df) > p {
        lo *= 2.0;
        if lo < -1e10 {
            break;
        }
    }
    while t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e10 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + mid.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-10, "Γ({}) mismatch: {lg}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        // Γ(3/2) = sqrt(π)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn inc_beta_symmetric_case() {
        // I_x(a, a) at x = 0.5 is exactly 0.5.
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((inc_beta(a, a, 0.5) - 0.5).abs() < 1e-10, "a = {a}");
        }
    }

    #[test]
    fn inc_beta_uniform_special_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.7, 0.99] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        for df in [1.0, 3.0, 10.0, 100.0] {
            assert!((t_cdf(0.0, df) - 0.5).abs() < 1e-12);
            for t in [0.5, 1.3, 2.7] {
                let p = t_cdf(t, df);
                let q = t_cdf(-t, df);
                assert!((p + q - 1.0).abs() < 1e-10, "df={df} t={t}");
                assert!(p > 0.5);
            }
        }
    }

    #[test]
    fn t_cdf_matches_reference_values() {
        // Reference values from R: pt(q, df)
        #[allow(clippy::unnecessary_cast)]
        let cases = [
            // (t, df, pt)
            (1.0, 1.0, 0.75),             // Cauchy: arctan
            (2.0, 10.0, 0.963_306_061_8), // pt(2, 10)
            (1.812_461, 10.0, 0.95),      // qt(0.95, 10) = 1.812461
            (2.570_582, 5.0, 0.975),      // qt(0.975, 5)
            (-1.644_854, 1e6, 0.05),      // ~normal for huge df
        ];
        for (t, df, p) in cases {
            let got = t_cdf(t, df);
            assert!((got - p).abs() < 1e-5, "t={t} df={df}: got {got}, want {p}");
        }
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for df in [2.0, 5.0, 30.0, 200.0] {
            for p in [0.01, 0.05, 0.25, 0.5, 0.9, 0.975, 0.999] {
                let q = t_quantile(p, df);
                let back = t_cdf(q, df);
                assert!((back - p).abs() < 1e-9, "df={df} p={p}: q={q} back={back}");
            }
        }
    }

    #[test]
    fn t_quantile_reference_values() {
        // R: qt(0.975, 24) = 2.063899, qt(0.95, 9) = 1.833113
        assert!((t_quantile(0.975, 24.0) - 2.063_899).abs() < 1e-4);
        assert!((t_quantile(0.95, 9.0) - 1.833_113).abs() < 1e-4);
        assert!((t_quantile(0.5, 7.0)).abs() < 1e-12);
    }

    #[test]
    fn t_quantile_extremes() {
        assert_eq!(t_quantile(0.0, 5.0), f64::NEG_INFINITY);
        assert_eq!(t_quantile(1.0, 5.0), f64::INFINITY);
    }
}
