//! Property-based tests of the statistical invariants the pipeline relies
//! on.

use epc_stats::boxplot::{boxplot_summary, tukey_outliers};
use epc_stats::correlation::pearson;
use epc_stats::descriptive::{mean, sample_std, NumericSummary};
use epc_stats::histogram::Histogram;
use epc_stats::mad::{mad, modified_z_scores};
use epc_stats::quantile::{median, quantile, quartiles};
use epc_stats::special::{t_cdf, t_quantile};
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn quantiles_are_bounded_by_extremes(data in data_strategy(), p in 0.0f64..=1.0) {
        let q = quantile(&data, p).unwrap();
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
    }

    #[test]
    fn quantile_monotone_in_p(data in data_strategy(), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap() + 1e-12);
    }

    #[test]
    fn quartiles_are_ordered(data in data_strategy()) {
        let (q1, q2, q3) = quartiles(&data).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn mean_between_extremes(data in data_strategy()) {
        let m = mean(&data).unwrap();
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn std_is_nonnegative_and_shift_invariant(data in prop::collection::vec(-1e5f64..1e5, 2..100), shift in -1e5f64..1e5) {
        let s1 = sample_std(&data).unwrap();
        prop_assert!(s1 >= 0.0);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let s2 = sample_std(&shifted).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1.abs()), "{s1} vs {s2}");
    }

    #[test]
    fn summary_fields_are_consistent(data in data_strategy()) {
        let s = NumericSummary::from_slice(&data).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert_eq!(s.count, data.len());
    }

    #[test]
    fn tukey_outliers_lie_outside_the_box(data in prop::collection::vec(-1e4f64..1e4, 4..150), k in 0.5f64..3.0) {
        let s = boxplot_summary(&data, k).unwrap();
        for &i in &s.outliers {
            prop_assert!(data[i] < s.lower_fence || data[i] > s.upper_fence);
        }
        // Complement: everything else is inside.
        for (i, &x) in data.iter().enumerate() {
            if !s.outliers.contains(&i) {
                prop_assert!(x >= s.lower_fence && x <= s.upper_fence);
            }
        }
    }

    #[test]
    fn larger_k_flags_subset(data in prop::collection::vec(-1e4f64..1e4, 4..150)) {
        let strict = tukey_outliers(&data, 1.0);
        let loose = tukey_outliers(&data, 2.5);
        for i in &loose {
            prop_assert!(strict.contains(i));
        }
    }

    #[test]
    fn mad_is_translation_invariant(data in prop::collection::vec(-1e4f64..1e4, 1..100), shift in -1e4f64..1e4) {
        let m1 = mad(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let m2 = mad(&shifted).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-6 * (1.0 + m1.abs()));
    }

    #[test]
    fn modified_z_score_of_median_is_zero(data in prop::collection::vec(-1e4f64..1e4, 1..100)) {
        let med = median(&data).unwrap();
        let mut with_median = data.clone();
        with_median.push(med);
        let z = modified_z_scores(&with_median);
        // The appended median point: its score must be ~0 whenever the new
        // median equals the old one (odd→even can shift it slightly).
        let new_med = median(&with_median).unwrap();
        if (new_med - med).abs() < 1e-12 {
            prop_assert!(z.last().unwrap().abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_self_correlation_is_one(data in prop::collection::vec(-1e4f64..1e4, 2..100)) {
        // Skip constant vectors (undefined correlation).
        if sample_std(&data).unwrap() > 1e-9 {
            let rho = pearson(&data, &data).unwrap();
            prop_assert!((rho - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_sign_flips_with_negation(data in prop::collection::vec(-1e4f64..1e4, 3..100)) {
        if sample_std(&data).unwrap() > 1e-9 {
            let neg: Vec<f64> = data.iter().map(|x| -x).collect();
            let rho = pearson(&data, &neg).unwrap();
            prop_assert!((rho + 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_mass(data in data_strategy(), bins in 1usize..40) {
        let h = Histogram::equal_width(&data, bins).unwrap();
        prop_assert_eq!(h.bins.iter().map(|b| b.count).sum::<usize>(), data.len());
    }

    #[test]
    fn t_cdf_is_monotone(df in 1.0f64..100.0, a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t_cdf(lo, df) <= t_cdf(hi, df) + 1e-12);
    }

    #[test]
    fn t_quantile_round_trips(df in 1.0f64..200.0, p in 0.001f64..0.999) {
        let q = t_quantile(p, df);
        prop_assert!((t_cdf(q, df) - p).abs() < 1e-7);
    }
}
