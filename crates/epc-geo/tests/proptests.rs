//! Property-based tests of the geospatial substrate: Levenshtein metric
//! axioms, normalization idempotence, quadtree/brute-force agreement, and
//! projection invariants.

use epc_geo::address::{normalize_house_number, normalize_street};
use epc_geo::bbox::BoundingBox;
use epc_geo::levenshtein::{levenshtein, levenshtein_bounded, similarity};
use epc_geo::point::GeoPoint;
use epc_geo::quadtree::QuadTree;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z ]{0,24}"
}

fn geo_point() -> impl Strategy<Value = GeoPoint> {
    (44.9f64..45.3, 7.5f64..7.9).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn levenshtein_identity(a in word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(similarity(&a, &a), 1.0);
    }

    #[test]
    fn levenshtein_symmetry(a in word(), b in word()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in word(), b in word(), c in word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_length_bounds(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn bounded_agrees_with_unbounded(a in word(), b in word(), bound in 0usize..30) {
        let d = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, bound) {
            Some(bd) => {
                prop_assert_eq!(bd, d);
                prop_assert!(d <= bound);
            }
            None => prop_assert!(d > bound),
        }
    }

    #[test]
    fn similarity_in_unit_interval(a in word(), b in word()) {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn street_normalization_is_idempotent(a in "[a-zA-Z.,' ]{0,30}") {
        let once = normalize_street(&a);
        prop_assert_eq!(normalize_street(&once), once.clone());
        // Normalized output is lowercase alphanumeric + single spaces.
        prop_assert!(!once.contains("  "));
        prop_assert!(once.chars().all(|c| c.is_alphanumeric() || c == ' '));
    }

    #[test]
    fn house_number_normalization_is_idempotent(a in "[0-9a-zA-Z/ ]{0,8}") {
        let once = normalize_house_number(&a);
        prop_assert_eq!(normalize_house_number(&once), once);
    }

    #[test]
    fn haversine_metric_axioms(a in geo_point(), b in geo_point()) {
        prop_assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-6);
        prop_assert!(a.haversine_m(&b) >= 0.0);
        prop_assert_eq!(a.haversine_m(&a), 0.0);
    }

    #[test]
    fn bbox_from_points_contains_all(pts in prop::collection::vec(geo_point(), 1..50)) {
        let b = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(b.contains(p));
        }
    }

    #[test]
    fn quadtree_query_matches_brute_force(
        pts in prop::collection::vec(geo_point(), 1..120),
        q1 in geo_point(),
        q2 in geo_point(),
    ) {
        let items: Vec<(GeoPoint, usize)> = pts.iter().copied().zip(0..).collect();
        let tree = QuadTree::from_points(items).unwrap();
        let rect = BoundingBox::new(
            q1.lat.min(q2.lat),
            q1.lon.min(q2.lon),
            q1.lat.max(q2.lat),
            q1.lon.max(q2.lon),
        );
        let mut got: Vec<usize> = tree.query_rect(&rect).iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| rect.contains(p))
            .map(|(i, _)| i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(tree.count_rect(&rect), tree.query_rect(&rect).len());
    }

    #[test]
    fn quadtree_nearest_matches_brute_force(
        pts in prop::collection::vec(geo_point(), 1..80),
        target in geo_point(),
    ) {
        let items: Vec<(GeoPoint, usize)> = pts.iter().copied().zip(0..).collect();
        let tree = QuadTree::from_points(items).unwrap();
        let (_, _, got_d) = tree.nearest(&target).unwrap();
        let best = pts
            .iter()
            .map(|p| p.haversine_m(&target))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - best).abs() < 1e-6, "{got_d} vs {best}");
    }

    #[test]
    fn offset_round_trip(p in geo_point(), dn in -2000.0f64..2000.0, de in -2000.0f64..2000.0) {
        let q = p.offset_m(dn, de);
        let expected = (dn * dn + de * de).sqrt();
        let actual = p.haversine_m(&q);
        // Flat-earth approximation at city scale: within 1%.
        prop_assert!((actual - expected).abs() <= 0.01 * expected + 0.5);
    }
}
