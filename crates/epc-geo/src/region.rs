//! Administrative regions (districts and neighbourhoods) as polygons, with
//! point-in-polygon assignment — the backbone of the city → district →
//! neighbourhood → housing-unit drill-down of the dashboards.

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use epc_model::Granularity;
use serde::{Deserialize, Serialize};

/// A simple polygon as a ring of vertices (implicitly closed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    /// The vertex ring (last vertex connects back to the first).
    pub vertices: Vec<GeoPoint>,
}

impl Polygon {
    /// Creates a polygon; needs at least 3 vertices to be meaningful.
    pub fn new(vertices: Vec<GeoPoint>) -> Self {
        debug_assert!(vertices.len() >= 3, "polygon needs ≥ 3 vertices");
        Polygon { vertices }
    }

    /// A rectangle polygon from a bounding box (counter-clockwise).
    pub fn from_bbox(b: &BoundingBox) -> Self {
        Polygon::new(vec![
            GeoPoint::new(b.min_lat, b.min_lon),
            GeoPoint::new(b.min_lat, b.max_lon),
            GeoPoint::new(b.max_lat, b.max_lon),
            GeoPoint::new(b.max_lat, b.min_lon),
        ])
    }

    /// Even-odd (ray-casting) point-in-polygon test; boundary points may
    /// fall on either side, which is acceptable for map binning.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let v = &self.vertices;
        let n = v.len();
        if n < 3 {
            return false;
        }
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = (v[i].lon, v[i].lat);
            let (xj, yj) = (v[j].lon, v[j].lat);
            if ((yi > p.lat) != (yj > p.lat)) && (p.lon < (xj - xi) * (p.lat - yi) / (yj - yi) + xi)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// The tight bounding box of the polygon.
    pub fn bbox(&self) -> Option<BoundingBox> {
        BoundingBox::from_points(&self.vertices)
    }

    /// The vertex centroid (adequate for label placement on city maps).
    pub fn centroid(&self) -> Option<GeoPoint> {
        GeoPoint::centroid(&self.vertices)
    }
}

/// A named administrative region at some granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region name (e.g. `"Circoscrizione 1"`, `"San Salvario"`).
    pub name: String,
    /// Granularity level of the region.
    pub level: Granularity,
    /// Name of the parent region (district of a neighbourhood, city of a
    /// district); `None` for the city itself.
    pub parent: Option<String>,
    /// Region boundary.
    pub polygon: Polygon,
}

/// The city → districts → neighbourhoods hierarchy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionHierarchy {
    /// City name.
    pub city: String,
    /// City boundary.
    pub city_polygon: Option<Polygon>,
    /// District regions.
    pub districts: Vec<Region>,
    /// Neighbourhood regions.
    pub neighbourhoods: Vec<Region>,
}

impl RegionHierarchy {
    /// An empty hierarchy for `city`.
    pub fn new(city: &str) -> Self {
        RegionHierarchy {
            city: city.to_owned(),
            ..RegionHierarchy::default()
        }
    }

    /// The regions at `level` (`City` yields an empty slice — the city is
    /// implicit).
    pub fn regions_at(&self, level: Granularity) -> &[Region] {
        match level {
            Granularity::District => &self.districts,
            Granularity::Neighbourhood => &self.neighbourhoods,
            _ => &[],
        }
    }

    /// The district containing `p`, if any.
    pub fn district_of(&self, p: &GeoPoint) -> Option<&Region> {
        self.districts.iter().find(|r| r.polygon.contains(p))
    }

    /// The neighbourhood containing `p`, if any.
    pub fn neighbourhood_of(&self, p: &GeoPoint) -> Option<&Region> {
        self.neighbourhoods.iter().find(|r| r.polygon.contains(p))
    }

    /// The region name `p` belongs to at `level` (`City` → the city name,
    /// `HousingUnit` → `None`: units aren't regions).
    pub fn assign(&self, p: &GeoPoint, level: Granularity) -> Option<String> {
        match level {
            Granularity::City => Some(self.city.clone()),
            Granularity::District => self.district_of(p).map(|r| r.name.clone()),
            Granularity::Neighbourhood => self.neighbourhood_of(p).map(|r| r.name.clone()),
            Granularity::HousingUnit => None,
        }
    }

    /// A region by name, searching both levels.
    pub fn by_name(&self, name: &str) -> Option<&Region> {
        self.districts
            .iter()
            .chain(&self.neighbourhoods)
            .find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(lat0: f64, lon0: f64, size: f64) -> Polygon {
        Polygon::from_bbox(&BoundingBox::new(lat0, lon0, lat0 + size, lon0 + size))
    }

    #[test]
    fn square_containment() {
        let p = square(45.0, 7.6, 0.1);
        assert!(p.contains(&GeoPoint::new(45.05, 7.65)));
        assert!(!p.contains(&GeoPoint::new(45.15, 7.65)));
        assert!(!p.contains(&GeoPoint::new(45.05, 7.75)));
    }

    #[test]
    fn concave_polygon() {
        // An L-shape: the notch must be outside.
        let l = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(0.0, 2.0),
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(2.0, 1.0),
            GeoPoint::new(2.0, 0.0),
        ]);
        assert!(l.contains(&GeoPoint::new(0.5, 0.5)));
        assert!(l.contains(&GeoPoint::new(0.5, 1.5)));
        assert!(l.contains(&GeoPoint::new(1.5, 0.5)));
        assert!(!l.contains(&GeoPoint::new(1.5, 1.5)), "the notch");
    }

    #[test]
    fn bbox_and_centroid() {
        let p = square(45.0, 7.6, 0.2);
        let b = p.bbox().unwrap();
        assert_eq!(b.min_lat, 45.0);
        assert_eq!(b.max_lon, 7.8);
        let c = p.centroid().unwrap();
        assert!((c.lat - 45.1).abs() < 1e-12);
        assert!((c.lon - 7.7).abs() < 1e-12);
    }

    fn hierarchy() -> RegionHierarchy {
        let mut h = RegionHierarchy::new("Torino");
        h.districts.push(Region {
            name: "D1".into(),
            level: Granularity::District,
            parent: Some("Torino".into()),
            polygon: square(45.0, 7.6, 0.1),
        });
        h.districts.push(Region {
            name: "D2".into(),
            level: Granularity::District,
            parent: Some("Torino".into()),
            polygon: square(45.0, 7.7, 0.1),
        });
        h.neighbourhoods.push(Region {
            name: "N1a".into(),
            level: Granularity::Neighbourhood,
            parent: Some("D1".into()),
            polygon: square(45.0, 7.6, 0.05),
        });
        h.neighbourhoods.push(Region {
            name: "N1b".into(),
            level: Granularity::Neighbourhood,
            parent: Some("D1".into()),
            polygon: square(45.05, 7.6, 0.05),
        });
        h
    }

    #[test]
    fn assignment_at_all_levels() {
        let h = hierarchy();
        let p = GeoPoint::new(45.02, 7.62);
        assert_eq!(h.assign(&p, Granularity::City).as_deref(), Some("Torino"));
        assert_eq!(h.assign(&p, Granularity::District).as_deref(), Some("D1"));
        assert_eq!(
            h.assign(&p, Granularity::Neighbourhood).as_deref(),
            Some("N1a")
        );
        assert_eq!(h.assign(&p, Granularity::HousingUnit), None);
    }

    #[test]
    fn point_outside_every_region() {
        let h = hierarchy();
        let p = GeoPoint::new(44.0, 7.0);
        assert_eq!(h.district_of(&p), None);
        assert_eq!(h.assign(&p, Granularity::District), None);
    }

    #[test]
    fn second_district_is_found() {
        let h = hierarchy();
        let p = GeoPoint::new(45.05, 7.75);
        assert_eq!(h.district_of(&p).unwrap().name, "D2");
        assert_eq!(h.neighbourhood_of(&p), None);
    }

    #[test]
    fn regions_at_levels() {
        let h = hierarchy();
        assert_eq!(h.regions_at(Granularity::District).len(), 2);
        assert_eq!(h.regions_at(Granularity::Neighbourhood).len(), 2);
        assert!(h.regions_at(Granularity::City).is_empty());
        assert!(h.regions_at(Granularity::HousingUnit).is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let h = hierarchy();
        assert_eq!(h.by_name("D2").unwrap().level, Granularity::District);
        assert_eq!(h.by_name("N1b").unwrap().parent.as_deref(), Some("D1"));
        assert!(h.by_name("missing").is_none());
    }
}
