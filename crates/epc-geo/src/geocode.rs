//! The geocoding fallback of §2.1.1.
//!
//! "When the association to a referenced address is not possible … a
//! geocoding request is sent via the Google Geocoding APIs … INDICE exploits
//! the Google Geocoding service only when the association cannot be resolved
//! through the referenced street map due to a limit on the number of free
//! requests."
//!
//! The paper's external dependency is abstracted behind the [`Geocoder`]
//! trait; [`QuotaGeocoder`] enforces the request budget; and
//! [`SimulatedGeocoder`] is the deterministic stand-in used in this
//! reproduction (see DESIGN.md, substitution table).
//!
//! For fault tolerance, [`Geocoder::try_geocode`] distinguishes permanent
//! misses ([`GeocodeFailure::NotFound`]) from transient provider failures
//! ([`GeocodeFailure::Transient`]), and [`RetryGeocoder`] retries the
//! latter up to a budget with a seedable, fully deterministic
//! [`Backoff`] schedule.

use crate::address::Address;
use crate::point::GeoPoint;
use crate::streetmap::StreetMap;
use std::cell::Cell;

/// A successful geocoding response.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocodeResult {
    /// Canonical street name.
    pub street: String,
    /// Canonical house number (may be interpolated).
    pub house_number: String,
    /// ZIP code.
    pub zip: String,
    /// Geolocation.
    pub point: GeoPoint,
    /// District, when the provider returns administrative levels.
    pub district: Option<String>,
    /// Neighbourhood, when available.
    pub neighbourhood: Option<String>,
}

/// The kind of a transient geocoding failure — the provider was reached
/// (or should have been) but did not produce an answer this time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// The provider rejected the request for quota/rate reasons.
    Quota,
    /// The request timed out.
    Timeout,
}

impl std::fmt::Display for TransientKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransientKind::Quota => write!(f, "quota"),
            TransientKind::Timeout => write!(f, "timeout"),
        }
    }
}

/// Why a geocode attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeocodeFailure {
    /// The address does not resolve — retrying cannot help.
    NotFound,
    /// A transient provider failure — a retry may succeed.
    Transient(TransientKind),
}

impl GeocodeFailure {
    /// `true` for failures worth retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, GeocodeFailure::Transient(_))
    }
}

/// A textual-address → structured-address service.
pub trait Geocoder {
    /// Attempts to geocode `query`. `None` means the service could not
    /// resolve the address (or refused the request).
    fn geocode(&self, query: &Address) -> Option<GeocodeResult>;

    /// Number of requests issued so far (successful or not).
    fn requests_made(&self) -> usize;

    /// Like [`Geocoder::geocode`], but distinguishing permanent misses
    /// from transient failures. The default maps every miss to
    /// [`GeocodeFailure::NotFound`]; wrappers that can observe transient
    /// conditions override this.
    fn try_geocode(&self, query: &Address) -> Result<GeocodeResult, GeocodeFailure> {
        self.geocode(query).ok_or(GeocodeFailure::NotFound)
    }

    /// Number of *retry* attempts this geocoder performed beyond first
    /// tries (only [`RetryGeocoder`] reports a non-zero value).
    fn retries_made(&self) -> usize {
        0
    }
}

/// FNV-1a hash of a query's street + house number; the deterministic key
/// used by failure draws and backoff jitter.
pub fn query_hash(query: &Address) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in query
        .street
        .bytes()
        .chain(query.house_number.as_deref().unwrap_or("").bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Wraps a geocoder with a hard request quota (the free-tier limit the
/// paper works around). Requests beyond the quota return `None` without
/// reaching the inner service.
pub struct QuotaGeocoder<G> {
    inner: G,
    quota: usize,
    used: Cell<usize>,
}

impl<G: Geocoder> QuotaGeocoder<G> {
    /// Wraps `inner` with a budget of `quota` requests.
    pub fn new(inner: G, quota: usize) -> Self {
        QuotaGeocoder {
            inner,
            quota,
            used: Cell::new(0),
        }
    }

    /// Remaining request budget.
    pub fn remaining(&self) -> usize {
        self.quota.saturating_sub(self.used.get())
    }

    /// `true` when the quota is exhausted.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

impl<G: Geocoder> Geocoder for QuotaGeocoder<G> {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        if self.exhausted() {
            return None;
        }
        self.used.set(self.used.get() + 1);
        self.inner.geocode(query)
    }

    fn requests_made(&self) -> usize {
        self.used.get()
    }

    fn try_geocode(&self, query: &Address) -> Result<GeocodeResult, GeocodeFailure> {
        // An exhausted *run budget* is permanent within the run: the free
        // tier will not replenish while the pipeline executes, so it maps
        // to `NotFound` rather than a retriable failure.
        if self.exhausted() {
            return Err(GeocodeFailure::NotFound);
        }
        self.used.set(self.used.get() + 1);
        self.inner.try_geocode(query)
    }

    fn retries_made(&self) -> usize {
        self.inner.retries_made()
    }
}

/// A deterministic, seedable exponential-backoff schedule with jitter.
///
/// Delays are a pure function of `(seed, key, attempt)` — no clocks, no
/// RNG state — so a retried run reproduces the exact same schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Base delay of the first retry, in milliseconds. `0` disables
    /// sleeping entirely (the schedule is still computed and reported).
    pub base_ms: u64,
    /// Multiplier applied per attempt.
    pub factor: u64,
    /// Upper bound on any single delay.
    pub max_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for Backoff {
    /// 0ms base: schedules are computed (and testable) but never slept —
    /// the right default for an offline reproduction.
    fn default() -> Self {
        Backoff {
            base_ms: 0,
            factor: 2,
            max_ms: 10_000,
            seed: 0x5eed,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (1-based) for `key`.
    ///
    /// Exponential growth capped at `max_ms`, with deterministic jitter in
    /// `[half, full]` of the uncapped delay.
    pub fn delay_ms(&self, key: u64, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = self
            .base_ms
            .saturating_mul(self.factor.saturating_pow(attempt.saturating_sub(1)))
            .min(self.max_ms);
        let h = splitmix64(
            self.seed
                .wrapping_add(key)
                .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(attempt as u64)),
        );
        let half = exp / 2;
        half + h % (exp - half + 1)
    }

    /// The full deterministic schedule for `key` over `retries` retries.
    pub fn schedule(&self, key: u64, retries: u32) -> Vec<u64> {
        (1..=retries).map(|a| self.delay_ms(key, a)).collect()
    }
}

/// SplitMix64 — the avalanche mixer behind every deterministic draw in
/// the fault-tolerance layer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Environment variable overriding the retry budget of
/// [`RetryGeocoder::from_env`].
pub const GEOCODE_RETRIES_ENV_VAR: &str = "INDICE_GEOCODE_RETRIES";

/// Default retry budget when [`GEOCODE_RETRIES_ENV_VAR`] is unset.
pub const DEFAULT_GEOCODE_RETRIES: u32 = 3;

/// Reads the retry budget from [`GEOCODE_RETRIES_ENV_VAR`] (default
/// [`DEFAULT_GEOCODE_RETRIES`]; unparsable values fall back too).
pub fn geocode_retries_from_env() -> u32 {
    match std::env::var(GEOCODE_RETRIES_ENV_VAR) {
        Ok(v) => v.trim().parse().unwrap_or(DEFAULT_GEOCODE_RETRIES),
        Err(_) => DEFAULT_GEOCODE_RETRIES,
    }
}

/// Strictly validates an `INDICE_GEOCODE_RETRIES` value: `None` (unset)
/// is [`DEFAULT_GEOCODE_RETRIES`], anything set must parse as a
/// non-negative integer. Pure, so rejection paths are unit-testable.
pub fn parse_geocode_retries(raw: Option<&str>) -> Result<u32, String> {
    let Some(raw) = raw else {
        return Ok(DEFAULT_GEOCODE_RETRIES);
    };
    raw.trim().parse().map_err(|_| {
        format!("{GEOCODE_RETRIES_ENV_VAR} must be a non-negative integer, got {raw:?}")
    })
}

/// Like [`geocode_retries_from_env`], but malformed values are an error
/// instead of a silent fallback to the default.
pub fn try_geocode_retries_from_env() -> Result<u32, String> {
    let raw = std::env::var(GEOCODE_RETRIES_ENV_VAR).ok();
    parse_geocode_retries(raw.as_deref())
}

/// Retries transient failures of an inner geocoder up to a budget, with a
/// deterministic [`Backoff`] schedule between attempts.
///
/// Permanent misses ([`GeocodeFailure::NotFound`]) are returned
/// immediately — retrying an address that does not exist is wasted quota.
/// When the budget is exhausted the last transient failure is surfaced so
/// the caller can degrade (e.g. fall back to a district centroid).
pub struct RetryGeocoder<G> {
    inner: G,
    retries: u32,
    backoff: Backoff,
    retries_made: Cell<usize>,
}

impl<G: Geocoder> RetryGeocoder<G> {
    /// Wraps `inner` with `retries` retries per query under `backoff`.
    pub fn new(inner: G, retries: u32, backoff: Backoff) -> Self {
        RetryGeocoder {
            inner,
            retries,
            backoff,
            retries_made: Cell::new(0),
        }
    }

    /// Wraps `inner` with the retry budget from the environment
    /// (`INDICE_GEOCODE_RETRIES`, default 3) and the default backoff.
    pub fn from_env(inner: G) -> Self {
        RetryGeocoder::new(inner, geocode_retries_from_env(), Backoff::default())
    }

    /// The configured retry budget.
    pub fn retry_budget(&self) -> u32 {
        self.retries
    }

    /// The backoff schedule generator.
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }
}

impl<G: Geocoder> Geocoder for RetryGeocoder<G> {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        self.try_geocode(query).ok()
    }

    fn requests_made(&self) -> usize {
        self.inner.requests_made()
    }

    fn try_geocode(&self, query: &Address) -> Result<GeocodeResult, GeocodeFailure> {
        let key = query_hash(query);
        let mut last = GeocodeFailure::NotFound;
        for attempt in 0..=self.retries {
            if attempt > 0 {
                self.retries_made.set(self.retries_made.get() + 1);
                let delay = self.backoff.delay_ms(key, attempt);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
            match self.inner.try_geocode(query) {
                Ok(res) => return Ok(res),
                Err(GeocodeFailure::NotFound) => return Err(GeocodeFailure::NotFound),
                Err(f @ GeocodeFailure::Transient(_)) => last = f,
            }
        }
        Err(last)
    }

    fn retries_made(&self) -> usize {
        self.retries_made.get()
    }
}

/// Deterministic geocoder simulator backed by a ground-truth street map.
///
/// It resolves addresses the way a production geocoder would — tolerant
/// fuzzy matching against its own (complete) reference data — but with a
/// configurable failure rate driven by a hash of the query, so runs are
/// reproducible without an RNG.
pub struct SimulatedGeocoder {
    truth: StreetMap,
    /// Minimum similarity the simulator accepts (it is *more* tolerant
    /// than the local reference-map step, like a production service).
    min_similarity: f64,
    /// Fraction of queries that fail spuriously, in `[0, 1]`.
    failure_rate: f64,
    requests: Cell<usize>,
}

impl SimulatedGeocoder {
    /// Creates a simulator over ground-truth data.
    pub fn new(truth: StreetMap, min_similarity: f64, failure_rate: f64) -> Self {
        SimulatedGeocoder {
            truth,
            min_similarity,
            failure_rate,
            requests: Cell::new(0),
        }
    }
}

impl Geocoder for SimulatedGeocoder {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        self.requests.set(self.requests.get() + 1);
        // Deterministic spurious failure.
        let draw = (query_hash(query) % 10_000) as f64 / 10_000.0;
        if draw < self.failure_rate {
            return None;
        }
        let hit = self.truth.best_match(&query.street, self.min_similarity)?;
        let entry = self
            .truth
            .lookup(&hit.street_key, query.house_number.as_deref())?;
        Some(GeocodeResult {
            street: entry.street.clone(),
            house_number: entry.house_number.clone(),
            zip: entry.zip.clone(),
            point: entry.point,
            district: Some(entry.district.clone()),
            neighbourhood: Some(entry.neighbourhood.clone()),
        })
    }

    fn requests_made(&self) -> usize {
        self.requests.get()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::streetmap::StreetEntry;

    /// A scripted geocoder whose per-query outcomes are predetermined:
    /// fails transiently for the first `transient_failures` calls, then
    /// delegates to `inner`.
    struct FlakyGeocoder<G> {
        inner: G,
        transient_failures: usize,
        kind: TransientKind,
        calls: Cell<usize>,
    }

    impl<G: Geocoder> Geocoder for FlakyGeocoder<G> {
        fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
            self.try_geocode(query).ok()
        }

        fn requests_made(&self) -> usize {
            self.calls.get()
        }

        fn try_geocode(&self, query: &Address) -> Result<GeocodeResult, GeocodeFailure> {
            let n = self.calls.get();
            self.calls.set(n + 1);
            if n < self.transient_failures {
                return Err(GeocodeFailure::Transient(self.kind));
            }
            self.inner.try_geocode(query)
        }
    }

    fn truth() -> StreetMap {
        StreetMap::from_entries(vec![
            StreetEntry {
                street: "Via Roma".into(),
                house_number: "10".into(),
                zip: "10121".into(),
                point: GeoPoint::new(45.07, 7.68),
                district: "Centro".into(),
                neighbourhood: "Centro Storico".into(),
            },
            StreetEntry {
                street: "Corso Francia".into(),
                house_number: "22".into(),
                zip: "10143".into(),
                point: GeoPoint::new(45.078, 7.64),
                district: "Ovest".into(),
                neighbourhood: "Parella".into(),
            },
        ])
    }

    #[test]
    fn simulator_resolves_noisy_addresses() {
        let g = SimulatedGeocoder::new(truth(), 0.6, 0.0);
        let res = g
            .geocode(&Address::new("via rooma", Some("10"), None))
            .expect("should resolve");
        assert_eq!(res.street, "Via Roma");
        assert_eq!(res.zip, "10121");
        assert_eq!(res.district.as_deref(), Some("Centro"));
        assert_eq!(g.requests_made(), 1);
    }

    #[test]
    fn simulator_fails_on_garbage() {
        let g = SimulatedGeocoder::new(truth(), 0.6, 0.0);
        assert!(g.geocode(&Address::new("qwertyuiop", None, None)).is_none());
        assert_eq!(g.requests_made(), 1, "failed requests still count");
    }

    #[test]
    fn simulator_failure_rate_is_deterministic() {
        let g1 = SimulatedGeocoder::new(truth(), 0.6, 0.5);
        let g2 = SimulatedGeocoder::new(truth(), 0.6, 0.5);
        let queries: Vec<Address> = (0..30)
            .map(|i| Address::new(&format!("via roma {i}"), Some("10"), None))
            .collect();
        let r1: Vec<bool> = queries.iter().map(|q| g1.geocode(q).is_some()).collect();
        let r2: Vec<bool> = queries.iter().map(|q| g2.geocode(q).is_some()).collect();
        assert_eq!(r1, r2, "same inputs → same outcomes");
        assert!(r1.iter().any(|&b| b) || r1.iter().any(|&b| !b));
    }

    #[test]
    fn quota_blocks_after_budget() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 2);
        let q = Address::new("via roma", Some("10"), None);
        assert!(g.geocode(&q).is_some());
        assert!(g.geocode(&q).is_some());
        assert!(g.exhausted());
        assert!(g.geocode(&q).is_none(), "third request must be refused");
        assert_eq!(g.requests_made(), 2, "refused requests don't count");
    }

    #[test]
    fn quota_remaining_counts_down() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 3);
        assert_eq!(g.remaining(), 3);
        let _ = g.geocode(&Address::new("via roma", None, None));
        assert_eq!(g.remaining(), 2);
    }

    #[test]
    fn zero_quota_never_calls_inner() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 0);
        assert!(g.geocode(&Address::new("via roma", None, None)).is_none());
        assert_eq!(g.requests_made(), 0);
    }

    #[test]
    fn try_geocode_distinguishes_miss_from_quota() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 1);
        // Permanent miss: the street does not exist.
        assert_eq!(
            g.try_geocode(&Address::new("qwertyuiop", None, None)),
            Err(GeocodeFailure::NotFound)
        );
        // Quota exhausted: also permanent within the run.
        assert_eq!(
            g.try_geocode(&Address::new("via roma", Some("10"), None)),
            Err(GeocodeFailure::NotFound)
        );
        assert_eq!(g.requests_made(), 1);
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let flaky = FlakyGeocoder {
            inner: SimulatedGeocoder::new(truth(), 0.6, 0.0),
            transient_failures: 2,
            kind: TransientKind::Timeout,
            calls: Cell::new(0),
        };
        let g = RetryGeocoder::new(flaky, 3, Backoff::default());
        let res = g
            .try_geocode(&Address::new("via roma", Some("10"), None))
            .expect("third attempt succeeds");
        assert_eq!(res.street, "Via Roma");
        assert_eq!(g.retries_made(), 2);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_transient_failure() {
        let flaky = FlakyGeocoder {
            inner: SimulatedGeocoder::new(truth(), 0.6, 0.0),
            transient_failures: 100,
            kind: TransientKind::Quota,
            calls: Cell::new(0),
        };
        let g = RetryGeocoder::new(flaky, 2, Backoff::default());
        assert_eq!(
            g.try_geocode(&Address::new("via roma", Some("10"), None)),
            Err(GeocodeFailure::Transient(TransientKind::Quota))
        );
        assert_eq!(g.retries_made(), 2, "budget respected");
    }

    #[test]
    fn retry_does_not_waste_attempts_on_permanent_misses() {
        let g = RetryGeocoder::new(
            SimulatedGeocoder::new(truth(), 0.6, 0.0),
            5,
            Backoff::default(),
        );
        assert_eq!(
            g.try_geocode(&Address::new("qwertyuiop", None, None)),
            Err(GeocodeFailure::NotFound)
        );
        assert_eq!(g.retries_made(), 0);
        assert_eq!(g.requests_made(), 1);
    }

    #[test]
    fn strict_retry_parsing_rejects_malformed_values() {
        assert_eq!(parse_geocode_retries(None), Ok(DEFAULT_GEOCODE_RETRIES));
        assert_eq!(parse_geocode_retries(Some("0")), Ok(0));
        assert_eq!(parse_geocode_retries(Some(" 12 ")), Ok(12));
        for bad in ["-1", "three", "", "1.5"] {
            let err = parse_geocode_retries(Some(bad)).unwrap_err();
            assert!(err.contains(GEOCODE_RETRIES_ENV_VAR), "{err}");
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let b = Backoff {
            base_ms: 100,
            factor: 2,
            max_ms: 1_000,
            seed: 7,
        };
        let key = query_hash(&Address::new("via roma", Some("10"), None));
        let s1 = b.schedule(key, 6);
        let s2 = b.schedule(key, 6);
        assert_eq!(s1, s2, "same seed and key → same schedule");
        for (i, &d) in s1.iter().enumerate() {
            let uncapped = (100u64 * 2u64.pow(i as u32)).min(1_000);
            assert!(d >= uncapped / 2 && d <= uncapped, "delay {d} at retry {i}");
        }
        // A different seed gives a different schedule (with overwhelming
        // probability on a 6-delay vector).
        let other = Backoff { seed: 8, ..b };
        assert_ne!(other.schedule(key, 6), s1);
        // Zero base → never sleeps.
        assert_eq!(Backoff::default().schedule(key, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn retry_env_budget_parses_with_fallback() {
        // Plain parse checks (the env var itself is process-global; tests
        // only exercise the parsing contract via a scoped set/unset).
        std::env::set_var(GEOCODE_RETRIES_ENV_VAR, "7");
        assert_eq!(geocode_retries_from_env(), 7);
        assert_eq!(try_geocode_retries_from_env(), Ok(7));
        std::env::set_var(GEOCODE_RETRIES_ENV_VAR, "nope");
        assert_eq!(geocode_retries_from_env(), DEFAULT_GEOCODE_RETRIES);
        assert!(try_geocode_retries_from_env().is_err());
        std::env::remove_var(GEOCODE_RETRIES_ENV_VAR);
        assert_eq!(geocode_retries_from_env(), DEFAULT_GEOCODE_RETRIES);
        assert_eq!(try_geocode_retries_from_env(), Ok(DEFAULT_GEOCODE_RETRIES));
    }
}
