//! The geocoding fallback of §2.1.1.
//!
//! "When the association to a referenced address is not possible … a
//! geocoding request is sent via the Google Geocoding APIs … INDICE exploits
//! the Google Geocoding service only when the association cannot be resolved
//! through the referenced street map due to a limit on the number of free
//! requests."
//!
//! The paper's external dependency is abstracted behind the [`Geocoder`]
//! trait; [`QuotaGeocoder`] enforces the request budget; and
//! [`SimulatedGeocoder`] is the deterministic stand-in used in this
//! reproduction (see DESIGN.md, substitution table).

use crate::address::Address;
use crate::point::GeoPoint;
use crate::streetmap::StreetMap;
use std::cell::Cell;

/// A successful geocoding response.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocodeResult {
    /// Canonical street name.
    pub street: String,
    /// Canonical house number (may be interpolated).
    pub house_number: String,
    /// ZIP code.
    pub zip: String,
    /// Geolocation.
    pub point: GeoPoint,
    /// District, when the provider returns administrative levels.
    pub district: Option<String>,
    /// Neighbourhood, when available.
    pub neighbourhood: Option<String>,
}

/// A textual-address → structured-address service.
pub trait Geocoder {
    /// Attempts to geocode `query`. `None` means the service could not
    /// resolve the address (or refused the request).
    fn geocode(&self, query: &Address) -> Option<GeocodeResult>;

    /// Number of requests issued so far (successful or not).
    fn requests_made(&self) -> usize;
}

/// Wraps a geocoder with a hard request quota (the free-tier limit the
/// paper works around). Requests beyond the quota return `None` without
/// reaching the inner service.
pub struct QuotaGeocoder<G> {
    inner: G,
    quota: usize,
    used: Cell<usize>,
}

impl<G: Geocoder> QuotaGeocoder<G> {
    /// Wraps `inner` with a budget of `quota` requests.
    pub fn new(inner: G, quota: usize) -> Self {
        QuotaGeocoder {
            inner,
            quota,
            used: Cell::new(0),
        }
    }

    /// Remaining request budget.
    pub fn remaining(&self) -> usize {
        self.quota.saturating_sub(self.used.get())
    }

    /// `true` when the quota is exhausted.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

impl<G: Geocoder> Geocoder for QuotaGeocoder<G> {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        if self.exhausted() {
            return None;
        }
        self.used.set(self.used.get() + 1);
        self.inner.geocode(query)
    }

    fn requests_made(&self) -> usize {
        self.used.get()
    }
}

/// Deterministic geocoder simulator backed by a ground-truth street map.
///
/// It resolves addresses the way a production geocoder would — tolerant
/// fuzzy matching against its own (complete) reference data — but with a
/// configurable failure rate driven by a hash of the query, so runs are
/// reproducible without an RNG.
pub struct SimulatedGeocoder {
    truth: StreetMap,
    /// Minimum similarity the simulator accepts (it is *more* tolerant
    /// than the local reference-map step, like a production service).
    min_similarity: f64,
    /// Fraction of queries that fail spuriously, in `[0, 1]`.
    failure_rate: f64,
    requests: Cell<usize>,
}

impl SimulatedGeocoder {
    /// Creates a simulator over ground-truth data.
    pub fn new(truth: StreetMap, min_similarity: f64, failure_rate: f64) -> Self {
        SimulatedGeocoder {
            truth,
            min_similarity,
            failure_rate,
            requests: Cell::new(0),
        }
    }

    /// FNV-1a hash of the query used for the deterministic failure draw.
    fn query_hash(query: &Address) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in query
            .street
            .bytes()
            .chain(query.house_number.as_deref().unwrap_or("").bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl Geocoder for SimulatedGeocoder {
    fn geocode(&self, query: &Address) -> Option<GeocodeResult> {
        self.requests.set(self.requests.get() + 1);
        // Deterministic spurious failure.
        let draw = (Self::query_hash(query) % 10_000) as f64 / 10_000.0;
        if draw < self.failure_rate {
            return None;
        }
        let hit = self.truth.best_match(&query.street, self.min_similarity)?;
        let entry = self
            .truth
            .lookup(&hit.street_key, query.house_number.as_deref())?;
        Some(GeocodeResult {
            street: entry.street.clone(),
            house_number: entry.house_number.clone(),
            zip: entry.zip.clone(),
            point: entry.point,
            district: Some(entry.district.clone()),
            neighbourhood: Some(entry.neighbourhood.clone()),
        })
    }

    fn requests_made(&self) -> usize {
        self.requests.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streetmap::StreetEntry;

    fn truth() -> StreetMap {
        StreetMap::from_entries(vec![
            StreetEntry {
                street: "Via Roma".into(),
                house_number: "10".into(),
                zip: "10121".into(),
                point: GeoPoint::new(45.07, 7.68),
                district: "Centro".into(),
                neighbourhood: "Centro Storico".into(),
            },
            StreetEntry {
                street: "Corso Francia".into(),
                house_number: "22".into(),
                zip: "10143".into(),
                point: GeoPoint::new(45.078, 7.64),
                district: "Ovest".into(),
                neighbourhood: "Parella".into(),
            },
        ])
    }

    #[test]
    fn simulator_resolves_noisy_addresses() {
        let g = SimulatedGeocoder::new(truth(), 0.6, 0.0);
        let res = g
            .geocode(&Address::new("via rooma", Some("10"), None))
            .expect("should resolve");
        assert_eq!(res.street, "Via Roma");
        assert_eq!(res.zip, "10121");
        assert_eq!(res.district.as_deref(), Some("Centro"));
        assert_eq!(g.requests_made(), 1);
    }

    #[test]
    fn simulator_fails_on_garbage() {
        let g = SimulatedGeocoder::new(truth(), 0.6, 0.0);
        assert!(g.geocode(&Address::new("qwertyuiop", None, None)).is_none());
        assert_eq!(g.requests_made(), 1, "failed requests still count");
    }

    #[test]
    fn simulator_failure_rate_is_deterministic() {
        let g1 = SimulatedGeocoder::new(truth(), 0.6, 0.5);
        let g2 = SimulatedGeocoder::new(truth(), 0.6, 0.5);
        let queries: Vec<Address> = (0..30)
            .map(|i| Address::new(&format!("via roma {i}"), Some("10"), None))
            .collect();
        let r1: Vec<bool> = queries.iter().map(|q| g1.geocode(q).is_some()).collect();
        let r2: Vec<bool> = queries.iter().map(|q| g2.geocode(q).is_some()).collect();
        assert_eq!(r1, r2, "same inputs → same outcomes");
        assert!(r1.iter().any(|&b| b) || r1.iter().any(|&b| !b));
    }

    #[test]
    fn quota_blocks_after_budget() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 2);
        let q = Address::new("via roma", Some("10"), None);
        assert!(g.geocode(&q).is_some());
        assert!(g.geocode(&q).is_some());
        assert!(g.exhausted());
        assert!(g.geocode(&q).is_none(), "third request must be refused");
        assert_eq!(g.requests_made(), 2, "refused requests don't count");
    }

    #[test]
    fn quota_remaining_counts_down() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 3);
        assert_eq!(g.remaining(), 3);
        let _ = g.geocode(&Address::new("via roma", None, None));
        assert_eq!(g.remaining(), 2);
    }

    #[test]
    fn zero_quota_never_calls_inner() {
        let g = QuotaGeocoder::new(SimulatedGeocoder::new(truth(), 0.6, 0.0), 0);
        assert!(g.geocode(&Address::new("via roma", None, None)).is_none());
        assert_eq!(g.requests_made(), 0);
    }
}
