//! Levenshtein edit distance and the normalized similarity of §2.1.1.
//!
//! "For each couple of addresses Levenshtein distance is computed … The
//! similarity computed from Levenshtein distance takes values in the range
//! [0, 1], where 0 indicates total dissimilarity and 1 equality of the
//! compared strings." The cleaning algorithm accepts a referenced address
//! when `similarity ≥ φ` for a user-defined threshold φ.

/// Levenshtein edit distance (unit costs) between two strings, computed on
/// Unicode scalar values with the classic two-row dynamic program —
/// `O(|a|·|b|)` time, `O(min(|a|,|b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Iterate over the longer string, keep rows sized by the shorter one.
    let (outer, inner) = if a_chars.len() >= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if inner.is_empty() {
        return outer.len();
    }
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut curr: Vec<usize> = vec![0; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            curr[j + 1] = (prev[j + 1] + 1) // deletion
                .min(curr[j] + 1) // insertion
                .min(prev[j] + cost); // substitution
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[inner.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 − distance / max(|a|, |b|)`; two empty strings are fully similar.
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Distance with an early-exit upper bound: returns `None` as soon as the
/// distance provably exceeds `bound`. Useful when scanning a large
/// referenced street map for a best match.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    if a_chars.len().abs_diff(b_chars.len()) > bound {
        return None;
    }
    let (outer, inner) = if a_chars.len() >= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if inner.is_empty() {
        return (outer.len() <= bound).then_some(outer.len());
    }
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut curr: Vec<usize> = vec![0; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        let mut row_min = curr[0];
        for (j, &ic) in inner.iter().enumerate() {
            let cost = usize::from(oc != ic);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
            row_min = row_min.min(curr[j + 1]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[inner.len()];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_is_per_scalar() {
        // Accented characters count as single edits.
        assert_eq!(levenshtein("città", "citta"), 1);
        assert_eq!(levenshtein("über", "uber"), 1);
    }

    #[test]
    fn symmetry() {
        let pairs = [("via roma", "via torino"), ("abc", "ya"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((similarity(a, b) - similarity(b, a)).abs() < 1e-15);
        }
    }

    #[test]
    fn similarity_bounds_and_anchors() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
        let s = similarity("via garibaldi", "via garibaldo");
        assert!(s > 0.9 && s < 1.0);
    }

    #[test]
    fn typo_keeps_similarity_high() {
        // The address-cleaning use case: one or two typos in a street name.
        let clean = "corso vittorio emanuele ii";
        let noisy = "corso vitorio emanuele ii";
        assert!(similarity(clean, noisy) >= 0.9);
    }

    #[test]
    fn bounded_matches_unbounded_when_within() {
        let pairs = [
            ("kitten", "sitting"),
            ("via po", "via pio"),
            ("", ""),
            ("abcdef", "abcdef"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d));
            assert_eq!(levenshtein_bounded(a, b, d + 5), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_early_exit_on_length_gap() {
        assert_eq!(levenshtein_bounded("ab", "abcdefghij", 3), None);
        assert_eq!(levenshtein_bounded("abc", "", 2), None);
        assert_eq!(levenshtein_bounded("abc", "", 3), Some(3));
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let words = ["via roma", "via rома", "corso francia", "c.so francia", ""];
        for a in words {
            for b in words {
                for c in words {
                    let ab = levenshtein(a, b);
                    let bc = levenshtein(b, c);
                    let ac = levenshtein(a, c);
                    assert!(ac <= ab + bc, "{a:?} {b:?} {c:?}");
                }
            }
        }
    }
}
