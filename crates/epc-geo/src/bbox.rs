//! Axis-aligned geographic bounding boxes.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in (lat, lon) space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum latitude (south edge).
    pub min_lat: f64,
    /// Minimum longitude (west edge).
    pub min_lon: f64,
    /// Maximum latitude (north edge).
    pub max_lat: f64,
    /// Maximum longitude (east edge).
    pub max_lon: f64,
}

impl BoundingBox {
    /// A box spanning the given corners.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Self {
        debug_assert!(min_lat <= max_lat && min_lon <= max_lon);
        BoundingBox {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        }
    }

    /// The tight box around a non-empty point set; `None` when empty.
    pub fn from_points(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut b = BoundingBox {
            min_lat: first.lat,
            min_lon: first.lon,
            max_lat: first.lat,
            max_lon: first.lon,
        };
        for p in &points[1..] {
            b.expand_to(p);
        }
        Some(b)
    }

    /// Grows the box to include `p`.
    pub fn expand_to(&mut self, p: &GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lat = self.max_lat.max(p.lat);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// `true` when `p` lies inside the box (edges inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// `true` when the two boxes overlap (edges inclusive).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }

    /// The box center.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min_lat + self.max_lat) / 2.0,
            lon: (self.min_lon + self.max_lon) / 2.0,
        }
    }

    /// Height in latitude degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Width in longitude degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// A copy grown by `margin` degrees on every side (useful to give maps
    /// a visual border).
    pub fn with_margin(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min_lat: self.min_lat - margin,
            min_lon: self.min_lon - margin,
            max_lat: self.max_lat + margin,
            max_lon: self.max_lon + margin,
        }
    }

    /// Splits the box into four equal quadrants (SW, SE, NW, NE) — the
    /// subdivision step of the quadtree.
    pub fn quadrants(&self) -> [BoundingBox; 4] {
        let c = self.center();
        [
            BoundingBox::new(self.min_lat, self.min_lon, c.lat, c.lon), // SW
            BoundingBox::new(self.min_lat, c.lon, c.lat, self.max_lon), // SE
            BoundingBox::new(c.lat, self.min_lon, self.max_lat, c.lon), // NW
            BoundingBox::new(c.lat, c.lon, self.max_lat, self.max_lon), // NE
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_box() -> BoundingBox {
        BoundingBox::new(45.0, 7.6, 45.1, 7.8)
    }

    #[test]
    fn contains_and_edges() {
        let b = sample_box();
        assert!(b.contains(&GeoPoint::new(45.05, 7.7)));
        assert!(b.contains(&GeoPoint::new(45.0, 7.6)), "edges inclusive");
        assert!(b.contains(&GeoPoint::new(45.1, 7.8)));
        assert!(!b.contains(&GeoPoint::new(44.99, 7.7)));
        assert!(!b.contains(&GeoPoint::new(45.05, 7.81)));
    }

    #[test]
    fn from_points_is_tight() {
        let pts = vec![
            GeoPoint::new(45.01, 7.65),
            GeoPoint::new(45.09, 7.71),
            GeoPoint::new(45.05, 7.60),
        ];
        let b = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(b.min_lat, 45.01);
        assert_eq!(b.max_lat, 45.09);
        assert_eq!(b.min_lon, 7.60);
        assert_eq!(b.max_lon, 7.71);
        assert_eq!(BoundingBox::from_points(&[]), None);
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn intersection_cases() {
        let b = sample_box();
        let overlapping = BoundingBox::new(45.05, 7.7, 45.2, 7.9);
        let disjoint = BoundingBox::new(46.0, 8.0, 46.1, 8.1);
        let touching = BoundingBox::new(45.1, 7.8, 45.2, 7.9);
        assert!(b.intersects(&overlapping));
        assert!(overlapping.intersects(&b));
        assert!(!b.intersects(&disjoint));
        assert!(b.intersects(&touching), "shared edge counts");
    }

    #[test]
    fn center_and_spans() {
        let b = sample_box();
        let c = b.center();
        assert!((c.lat - 45.05).abs() < 1e-12);
        assert!((c.lon - 7.7).abs() < 1e-12);
        assert!((b.lat_span() - 0.1).abs() < 1e-12);
        assert!((b.lon_span() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn margin_grows_box() {
        let b = sample_box().with_margin(0.01);
        assert!(b.contains(&GeoPoint::new(44.995, 7.595)));
    }

    #[test]
    fn quadrants_tile_the_box() {
        let b = sample_box();
        let quads = b.quadrants();
        let c = b.center();
        // Every quadrant is inside the parent and they share the center.
        for q in &quads {
            assert!(b.intersects(q));
            assert!(q.contains(&c) || (q.max_lat >= c.lat && q.max_lon >= c.lon));
        }
        // A point strictly inside exactly lands in ≥1 quadrant.
        let p = GeoPoint::new(45.02, 7.75);
        assert!(quads.iter().any(|q| q.contains(&p)));
        // Quadrant areas sum to the parent area.
        let area: f64 = quads.iter().map(|q| q.lat_span() * q.lon_span()).sum();
        assert!((area - b.lat_span() * b.lon_span()).abs() < 1e-12);
    }
}
