//! The referenced street map of §2.1.1.
//!
//! "The referenced street map should contain all the detailed information on
//! streets, including street names, house numbers, ZIP Code and geolocation."
//! INDICE matches each noisy EPC address against this map with Levenshtein
//! similarity, and uses the matched entry to repair ZIP code, house number,
//! latitude and longitude.

use crate::address::{normalize_house_number, normalize_street};
use crate::levenshtein::{levenshtein_bounded, similarity};
use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One civic-number entry of the referenced street map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreetEntry {
    /// Canonical street name (already clean).
    pub street: String,
    /// Canonical house number (`"12"`, `"12/B"`, …).
    pub house_number: String,
    /// ZIP code of the entry.
    pub zip: String,
    /// Geolocation of the entrance.
    pub point: GeoPoint,
    /// District the entry belongs to.
    pub district: String,
    /// Neighbourhood the entry belongs to.
    pub neighbourhood: String,
}

/// The referenced street map: entries indexed by normalized street name.
#[derive(Debug, Clone, Default)]
pub struct StreetMap {
    entries: Vec<StreetEntry>,
    /// normalized street name → indices into `entries`
    by_street: HashMap<String, Vec<usize>>,
    /// distinct normalized street names (kept for fuzzy scans)
    street_names: Vec<String>,
}

/// A fuzzy street-name match.
#[derive(Debug, Clone, PartialEq)]
pub struct StreetMatch {
    /// The normalized street name matched.
    pub street_key: String,
    /// The Levenshtein similarity achieved, in `[0, 1]`.
    pub similarity: f64,
}

impl StreetMap {
    /// An empty map.
    pub fn new() -> Self {
        StreetMap::default()
    }

    /// Builds a map from entries.
    pub fn from_entries(entries: Vec<StreetEntry>) -> Self {
        let mut map = StreetMap::new();
        for e in entries {
            map.insert(e);
        }
        map
    }

    /// Adds one entry.
    pub fn insert(&mut self, entry: StreetEntry) {
        let key = normalize_street(&entry.street);
        let idx = self.entries.len();
        self.entries.push(entry);
        match self.by_street.get_mut(&key) {
            Some(v) => v.push(idx),
            None => {
                self.by_street.insert(key.clone(), vec![idx]);
                self.street_names.push(key);
            }
        }
    }

    /// Total number of civic-number entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct streets.
    pub fn n_streets(&self) -> usize {
        self.street_names.len()
    }

    /// All entries (for iteration / serialization).
    pub fn entries(&self) -> &[StreetEntry] {
        &self.entries
    }

    /// `true` when the normalized street name exists verbatim.
    pub fn contains_street(&self, street: &str) -> bool {
        self.by_street.contains_key(&normalize_street(street))
    }

    /// The best fuzzy match for a (raw) street name, or `None` when no
    /// street reaches `min_similarity`. Exact normalized matches short-
    /// circuit; otherwise every distinct street name is scanned with a
    /// bounded Levenshtein (the bound derived from `min_similarity`).
    pub fn best_match(&self, raw_street: &str, min_similarity: f64) -> Option<StreetMatch> {
        let query = normalize_street(raw_street);
        if query.is_empty() {
            return None;
        }
        if self.by_street.contains_key(&query) {
            return Some(StreetMatch {
                street_key: query,
                similarity: 1.0,
            });
        }
        let q_len = query.chars().count();
        let mut best: Option<StreetMatch> = None;
        for name in &self.street_names {
            let n_len = name.chars().count();
            let max_len = q_len.max(n_len);
            // similarity ≥ s  ⇔  distance ≤ (1 − s)·max_len
            let bound = ((1.0 - min_similarity) * max_len as f64).floor() as usize;
            if let Some(d) = levenshtein_bounded(&query, name, bound) {
                let sim = 1.0 - d as f64 / max_len as f64;
                let better = best
                    .as_ref()
                    .map(|b| sim > b.similarity)
                    .unwrap_or(sim >= min_similarity);
                if better && sim >= min_similarity {
                    best = Some(StreetMatch {
                        street_key: name.clone(),
                        similarity: sim,
                    });
                    if sim == 1.0 {
                        break;
                    }
                }
            }
        }
        best
    }

    /// Looks up the entry for `(street_key, house_number)`; when the exact
    /// civic number is absent, falls back to the numerically closest civic
    /// number on the street (how geocoders interpolate unknown numbers).
    /// `street_key` must be a normalized street name (e.g. from
    /// [`StreetMap::best_match`]).
    pub fn lookup(&self, street_key: &str, house_number: Option<&str>) -> Option<&StreetEntry> {
        let idxs = self.by_street.get(street_key)?;
        let street_entries = || idxs.iter().filter_map(|&i| self.entries.get(i));
        let hn = house_number.map(normalize_house_number);
        if let Some(hn) = &hn {
            // Exact civic match first.
            if let Some(e) =
                street_entries().find(|e| normalize_house_number(&e.house_number) == *hn)
            {
                return Some(e);
            }
            // Closest numeric civic number.
            if let Some(target) = leading_number(hn) {
                let best = street_entries().min_by_key(|e| {
                    leading_number(&e.house_number)
                        .map(|n| n.abs_diff(target))
                        .unwrap_or(u64::MAX)
                });
                if let Some(e) = best {
                    return Some(e);
                }
            }
        }
        // No (usable) house number: return the first entry of the street.
        idxs.first().and_then(|&i| self.entries.get(i))
    }

    /// The exact-similarity scan used by diagnostics: similarity of `raw`
    /// against every distinct street, sorted descending. Expensive; only
    /// for tests and reports.
    pub fn similarity_profile(&self, raw_street: &str) -> Vec<(String, f64)> {
        let query = normalize_street(raw_street);
        let mut v: Vec<(String, f64)> = self
            .street_names
            .iter()
            .map(|n| (n.clone(), similarity(&query, n)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

impl StreetMap {
    /// Serializes the map to a semicolon-separated text format (one entry
    /// per line: `street;house;zip;lat;lon;district;neighbourhood`).
    ///
    /// Fields containing `;` or newlines are rejected with an error — real
    /// odonyms never contain either.
    pub fn to_text(&self) -> Result<String, String> {
        let mut out = String::from("street;house_number;zip;lat;lon;district;neighbourhood\n");
        for e in &self.entries {
            for field in [
                &e.street,
                &e.house_number,
                &e.zip,
                &e.district,
                &e.neighbourhood,
            ] {
                if field.contains(';') || field.contains('\n') {
                    return Err(format!("field {field:?} contains a separator"));
                }
            }
            out.push_str(&format!(
                "{};{};{};{};{};{};{}\n",
                e.street,
                e.house_number,
                e.zip,
                e.point.lat,
                e.point.lon,
                e.district,
                e.neighbourhood
            ));
        }
        Ok(out)
    }

    /// Parses the [`StreetMap::to_text`] format.
    pub fn from_text(text: &str) -> Result<StreetMap, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty street map file")?;
        if !header.starts_with("street;") {
            return Err(format!("unexpected header {header:?}"));
        }
        let mut map = StreetMap::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(';').collect();
            let [street, house_number, zip, lat_s, lon_s, district, neighbourhood] =
                parts.as_slice()
            else {
                return Err(format!(
                    "line {}: expected 7 fields, got {}",
                    i + 2,
                    parts.len()
                ));
            };
            let lat: f64 = lat_s
                .parse()
                .map_err(|e| format!("line {}: bad latitude: {e}", i + 2))?;
            let lon: f64 = lon_s
                .parse()
                .map_err(|e| format!("line {}: bad longitude: {e}", i + 2))?;
            map.insert(StreetEntry {
                street: (*street).to_owned(),
                house_number: (*house_number).to_owned(),
                zip: (*zip).to_owned(),
                point: GeoPoint::new(lat, lon),
                district: (*district).to_owned(),
                neighbourhood: (*neighbourhood).to_owned(),
            });
        }
        Ok(map)
    }
}

/// Extracts the leading integer of a house number (`"12/B"` → 12).
fn leading_number(s: &str) -> Option<u64> {
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(street: &str, hn: &str, zip: &str, lat: f64, lon: f64) -> StreetEntry {
        StreetEntry {
            street: street.to_owned(),
            house_number: hn.to_owned(),
            zip: zip.to_owned(),
            point: GeoPoint::new(lat, lon),
            district: "D1".into(),
            neighbourhood: "N1".into(),
        }
    }

    fn sample_map() -> StreetMap {
        StreetMap::from_entries(vec![
            entry("Via Roma", "1", "10121", 45.07, 7.68),
            entry("Via Roma", "3", "10121", 45.0701, 7.6801),
            entry("Via Roma", "25", "10121", 45.0710, 7.6810),
            entry("Corso Francia", "10", "10143", 45.075, 7.65),
            entry("Corso Vittorio Emanuele II", "76", "10128", 45.062, 7.67),
            entry("Piazza Castello", "5", "10122", 45.0708, 7.6863),
        ])
    }

    #[test]
    fn sizes() {
        let m = sample_map();
        assert_eq!(m.len(), 6);
        assert_eq!(m.n_streets(), 4);
        assert!(!m.is_empty());
        assert!(StreetMap::new().is_empty());
    }

    #[test]
    fn exact_match_short_circuits() {
        let m = sample_map();
        let hit = m.best_match("VIA ROMA", 0.8).unwrap();
        assert_eq!(hit.street_key, "via roma");
        assert_eq!(hit.similarity, 1.0);
    }

    #[test]
    fn abbreviation_matches_exactly() {
        let m = sample_map();
        let hit = m.best_match("C.so Vittorio Emanuele II", 0.8).unwrap();
        assert_eq!(hit.street_key, "corso vittorio emanuele ii");
        assert_eq!(hit.similarity, 1.0);
    }

    #[test]
    fn typo_matches_fuzzily() {
        let m = sample_map();
        let hit = m.best_match("corso vitorio emanuele ii", 0.85).unwrap();
        assert_eq!(hit.street_key, "corso vittorio emanuele ii");
        assert!(hit.similarity >= 0.85 && hit.similarity < 1.0);
    }

    #[test]
    fn below_threshold_is_none() {
        let m = sample_map();
        assert!(m.best_match("via garibaldi", 0.8).is_none());
        assert!(m.best_match("", 0.5).is_none());
    }

    #[test]
    fn best_match_picks_the_closest_street() {
        let mut m = sample_map();
        m.insert(entry("Via Romita", "2", "10121", 45.08, 7.69));
        // "via romaa" (1 edit from "via roma", 2 from "via romita")
        let hit = m.best_match("via romaa", 0.7).unwrap();
        assert_eq!(hit.street_key, "via roma");
    }

    #[test]
    fn lookup_exact_civic() {
        let m = sample_map();
        let e = m.lookup("via roma", Some("3")).unwrap();
        assert_eq!(e.house_number, "3");
        assert_eq!(e.zip, "10121");
    }

    #[test]
    fn lookup_nearest_civic_fallback() {
        let m = sample_map();
        // 4 is closest to 3 (|4-3| = 1 < |4-1| = 3 < |4-25|).
        let e = m.lookup("via roma", Some("4")).unwrap();
        assert_eq!(e.house_number, "3");
        // 100 is closest to 25.
        let e = m.lookup("via roma", Some("100")).unwrap();
        assert_eq!(e.house_number, "25");
    }

    #[test]
    fn lookup_without_house_number() {
        let m = sample_map();
        let e = m.lookup("corso francia", None).unwrap();
        assert_eq!(e.street, "Corso Francia");
        assert!(m.lookup("via inesistente", None).is_none());
    }

    #[test]
    fn lookup_suffix_civic_normalization() {
        let mut m = sample_map();
        m.insert(entry("Via Po", "12/B", "10124", 45.068, 7.695));
        let e = m.lookup("via po", Some("12 /b")).unwrap();
        assert_eq!(e.house_number, "12/B");
    }

    #[test]
    fn similarity_profile_is_sorted() {
        let m = sample_map();
        let profile = m.similarity_profile("via roma");
        assert_eq!(profile[0].0, "via roma");
        for w in profile.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn text_round_trip() {
        let m = sample_map();
        let text = m.to_text().unwrap();
        let back = StreetMap::from_text(&text).unwrap();
        assert_eq!(back.entries(), m.entries());
        assert_eq!(back.n_streets(), m.n_streets());
        // Fuzzy matching still works on the round-tripped map.
        assert!(back.best_match("via roma", 0.8).is_some());
    }

    #[test]
    fn text_rejects_separator_in_fields() {
        let mut m = StreetMap::new();
        m.insert(entry("Via; Evil", "1", "10121", 45.0, 7.6));
        assert!(m.to_text().is_err());
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(StreetMap::from_text("").is_err());
        assert!(StreetMap::from_text("wrong header\n").is_err());
        assert!(StreetMap::from_text(
            "street;house_number;zip;lat;lon;district;neighbourhood\nonly;three;fields\n"
        )
        .is_err());
        assert!(StreetMap::from_text(
            "street;house_number;zip;lat;lon;district;neighbourhood\nVia Roma;1;10121;abc;7.6;D;N\n"
        )
        .is_err());
    }

    #[test]
    fn contains_street_normalizes() {
        let m = sample_map();
        assert!(m.contains_street("VIA ROMA"));
        assert!(m.contains_street("P.za Castello"));
        assert!(!m.contains_street("via milano"));
    }
}
